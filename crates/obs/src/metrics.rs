//! The metrics registry: named counters and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Histogram`]) are cheap `Arc`-backed clones;
//! callers on hot paths register once and increment lock-free afterwards.
//! Families follow the Prometheus naming scheme (`mao_<subsystem>_<what>`
//! with a `_total` suffix for counters and a unit suffix like `_us` for
//! histograms); [`Metrics::render_prometheus`] emits the whole registry in
//! text exposition format.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::prom::PromText;

/// A label set: sorted `(key, value)` pairs. Kept sorted so the same labels
/// in any order address the same time series.
type Labels = Vec<(String, String)>;

/// A monotonic counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Vec<u64>,
    /// Cumulative-format storage is computed at render time; these are
    /// per-bucket (non-cumulative) hit counts, one per bound plus `+Inf`.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// Default bucket bounds for microsecond-scale durations: 100 µs to 10 s,
/// one decade per bucket.
pub const US_BUCKETS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending (the `+Inf` bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket hit counts (not cumulative), one per bound plus `+Inf`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let i = self
            .inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[i].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            counts: self
                .inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.inner.sum.load(Ordering::Relaxed),
            count: self.inner.count.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct Registry {
    /// Family → label set → handle. A family holds either counters or
    /// histograms, never both (the first registration wins the kind).
    counters: BTreeMap<String, BTreeMap<Labels, Counter>>,
    histograms: BTreeMap<String, BTreeMap<Labels, Histogram>>,
}

/// The thread-safe metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    registry: Mutex<Registry>,
}

fn sorted_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counter for `family` with no labels (registered on first use).
    pub fn counter(&self, family: &str) -> Counter {
        self.counter_with(family, &[])
    }

    /// The counter for `family` with the given labels.
    pub fn counter_with(&self, family: &str, labels: &[(&str, &str)]) -> Counter {
        let mut reg = self.registry.lock().unwrap();
        reg.counters
            .entry(family.to_string())
            .or_default()
            .entry(sorted_labels(labels))
            .or_default()
            .clone()
    }

    /// The histogram for `family` with no labels; `bounds` applies only on
    /// first registration.
    pub fn histogram(&self, family: &str, bounds: &[u64]) -> Histogram {
        let mut reg = self.registry.lock().unwrap();
        reg.histograms
            .entry(family.to_string())
            .or_default()
            .entry(Vec::new())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Current value of an unlabeled counter (0 when never registered).
    pub fn counter_value(&self, family: &str) -> u64 {
        let reg = self.registry.lock().unwrap();
        reg.counters
            .get(family)
            .and_then(|series| series.get(&Vec::new()))
            .map(Counter::get)
            .unwrap_or(0)
    }

    /// Render every registered family as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        let mut out = PromText::new();
        self.render_into(&mut out);
        out.finish()
    }

    /// Render into an existing builder (lets callers append scrape-time
    /// families afterwards).
    pub fn render_into(&self, out: &mut PromText) {
        let reg = self.registry.lock().unwrap();
        for (family, series) in &reg.counters {
            out.type_line(family, "counter");
            for (labels, counter) in series {
                out.sample(family, labels, counter.get());
            }
        }
        for (family, series) in &reg.histograms {
            out.type_line(family, "histogram");
            for (labels, histogram) in series {
                let snap = histogram.snapshot();
                let mut cumulative = 0u64;
                for (i, n) in snap.counts.iter().enumerate() {
                    cumulative += n;
                    let le = match snap.bounds.get(i) {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_string(),
                    };
                    let mut with_le = labels.clone();
                    with_le.push(("le".to_string(), le));
                    out.sample(&format!("{family}_bucket"), &with_le, cumulative);
                }
                out.sample(&format!("{family}_sum"), labels, snap.sum);
                out.sample(&format!("{family}_count"), labels, snap.count);
            }
        }
    }

    /// Deterministic `family{labels} value` lines for every *counter* in the
    /// registry (histograms carry wall-clock content and are excluded).
    /// Two runs of the same deterministic workload must produce identical
    /// output — the `--jobs` determinism test diffs exactly this.
    pub fn counter_lines(&self) -> String {
        let mut out = PromText::new();
        let reg = self.registry.lock().unwrap();
        for (family, series) in &reg.counters {
            for (labels, counter) in series {
                out.sample(family, labels, counter.get());
            }
        }
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom;

    #[test]
    fn counters_register_once_and_accumulate() {
        let m = Metrics::new();
        let a = m.counter("mao_things_total");
        let b = m.counter("mao_things_total");
        a.inc();
        b.add(2);
        assert_eq!(m.counter_value("mao_things_total"), 3);
        assert_eq!(a.get(), 3, "handles share one cell");
    }

    #[test]
    fn labeled_counters_are_distinct_series() {
        let m = Metrics::new();
        m.counter_with("mao_pass_total", &[("pass", "REDTEST")])
            .inc();
        m.counter_with("mao_pass_total", &[("pass", "DCE")]).add(2);
        let text = m.render_prometheus();
        assert!(text.contains("mao_pass_total{pass=\"DCE\"} 2"), "{text}");
        assert!(
            text.contains("mao_pass_total{pass=\"REDTEST\"} 1"),
            "{text}"
        );
        // One TYPE line per family, not per series.
        assert_eq!(text.matches("# TYPE mao_pass_total counter").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let m = Metrics::new();
        let h = m.histogram("mao_wait_us", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 1, 1]);
        assert_eq!(snap.sum, 555);
        assert_eq!(snap.count, 3);
        let text = m.render_prometheus();
        assert!(text.contains("mao_wait_us_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("mao_wait_us_bucket{le=\"100\"} 2"), "{text}");
        assert!(text.contains("mao_wait_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("mao_wait_us_sum 555"), "{text}");
        assert!(text.contains("mao_wait_us_count 3"), "{text}");
    }

    #[test]
    fn render_is_valid_prometheus_text() {
        let m = Metrics::new();
        m.counter("mao_requests_total").inc();
        m.counter_with("mao_pass_us_total", &[("pass", "A\"B\\C")])
            .add(7);
        m.histogram("mao_service_us", US_BUCKETS).observe(1234);
        prom::validate(&m.render_prometheus()).expect("valid exposition");
    }

    #[test]
    fn counter_lines_exclude_histograms() {
        let m = Metrics::new();
        m.counter("mao_a_total").inc();
        m.histogram("mao_h_us", &[1]).observe(9);
        let lines = m.counter_lines();
        assert!(lines.contains("mao_a_total 1"));
        assert!(!lines.contains("mao_h_us"), "{lines}");
    }
}
