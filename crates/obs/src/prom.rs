//! Prometheus text exposition: a line builder and a grammar validator.
//!
//! The builder keeps label values escaped and families grouped under one
//! `# TYPE` line; the validator is the test- and CI-side check that what the
//! daemon's `metrics` endpoint serves actually parses as exposition format.

use std::fmt::Display;
use std::fmt::Write as _;

/// Incremental Prometheus text builder.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl PromText {
    /// Empty builder.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emit a `# TYPE family kind` header.
    pub fn type_line(&mut self, family: &str, kind: &str) {
        let _ = writeln!(self.buf, "# TYPE {family} {kind}");
    }

    /// Emit one `name{labels} value` sample line.
    pub fn sample(&mut self, name: &str, labels: &[(String, String)], value: impl Display) {
        if labels.is_empty() {
            let _ = writeln!(self.buf, "{name} {value}");
        } else {
            let rendered: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect();
            let _ = writeln!(self.buf, "{name}{{{}}} {value}", rendered.join(","));
        }
    }

    /// Emit a gauge family with a single unlabeled sample — the shape every
    /// scrape-time value (uptime, in-flight, cache length) uses.
    pub fn gauge(&mut self, family: &str, value: impl Display) {
        self.type_line(family, "gauge");
        self.sample(family, &[], value);
    }

    /// Emit a counter family from `(labels, value)` pairs — for scrape-time
    /// sources that keep their own counters (relaxation totals).
    pub fn counter_family(&mut self, family: &str, samples: &[(&[(String, String)], u64)]) {
        self.type_line(family, "counter");
        for (labels, value) in samples {
            self.sample(family, labels, value);
        }
    }

    /// The accumulated text.
    pub fn finish(self) -> String {
        self.buf
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse one `{k="v",...}` label block; returns the remainder after `}`.
fn validate_labels(s: &str) -> Result<&str, String> {
    let mut rest = s.strip_prefix('{').expect("caller checked");
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{rest}`"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("bad label name `{name}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label value must be quoted after `{name}`"))?;
        // Scan the quoted value honoring backslash escapes.
        let mut chars = rest.char_indices();
        let end = loop {
            match chars.next() {
                Some((_, '\\')) => {
                    chars.next();
                }
                Some((i, '"')) => break i,
                Some(_) => {}
                None => return Err("unterminated label value".to_string()),
            }
        };
        rest = &rest[end + 1..];
        match rest.chars().next() {
            Some(',') => rest = &rest[1..],
            Some('}') => return Ok(&rest[1..]),
            other => return Err(format!("expected `,` or `}}` after label, got {other:?}")),
        }
    }
}

/// Check `text` against the Prometheus text exposition grammar: every line
/// is a comment (`# TYPE` / `# HELP`), blank, or `name[{labels}] value`,
/// and every sample's family was declared by a preceding `# TYPE` line.
pub fn validate(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let family = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without a family"))?;
                    if !valid_metric_name(family) {
                        return Err(format!("line {lineno}: bad family name `{family}`"));
                    }
                    match parts.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        other => {
                            return Err(format!("line {lineno}: bad TYPE kind {other:?}"));
                        }
                    }
                    if typed.contains(&family.to_string()) {
                        return Err(format!("line {lineno}: family `{family}` typed twice"));
                    }
                    typed.push(family.to_string());
                }
                Some("HELP") => {}
                other => return Err(format!("line {lineno}: unknown comment {other:?}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(|c: char| c == '{' || c == ' ')
            .ok_or_else(|| format!("line {lineno}: no value on sample line"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name `{name}`"));
        }
        let rest = if line[name_end..].starts_with('{') {
            validate_labels(&line[name_end..]).map_err(|e| format!("line {lineno}: {e}"))?
        } else {
            &line[name_end..]
        };
        let value = rest.trim();
        let numeric = value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !numeric {
            return Err(format!("line {lineno}: bad sample value `{value}`"));
        }
        // The family is the name minus a histogram sample suffix.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(&f.to_string()))
            .unwrap_or(name);
        if !typed.contains(&family.to_string()) {
            return Err(format!(
                "line {lineno}: sample `{name}` before its # TYPE line"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_validates() {
        let mut out = PromText::new();
        out.type_line("mao_requests_total", "counter");
        out.sample("mao_requests_total", &[], 3u64);
        out.gauge("mao_uptime_seconds", 1.5);
        out.counter_family(
            "mao_relax_layouts_total",
            &[(&[("kind".to_string(), "full".to_string())][..], 9)],
        );
        let text = out.finish();
        validate(&text).expect("valid");
        assert!(text.contains("mao_relax_layouts_total{kind=\"full\"} 9"));
    }

    #[test]
    fn escaping_survives_validation() {
        let mut out = PromText::new();
        out.type_line("m", "counter");
        out.sample("m", &[("k".to_string(), "a\"b\\c\nd".to_string())], 1u64);
        validate(&out.finish()).expect("escaped value is valid");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(validate("garbage here\n").is_err());
        assert!(validate("# TYPE m frobnitz\nm 1\n").is_err());
        assert!(validate("m 1\n").is_err(), "sample before TYPE");
        assert!(validate("# TYPE m counter\nm notanumber\n").is_err());
        assert!(validate("# TYPE m counter\nm{k=unquoted} 1\n").is_err());
        assert!(validate("# TYPE m counter\n# TYPE m counter\n").is_err());
    }

    #[test]
    fn accepts_histogram_shape() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"10\"} 1\n\
                    h_bucket{le=\"+Inf\"} 2\n\
                    h_sum 12\n\
                    h_count 2\n";
        validate(text).expect("histogram sample lines belong to the family");
    }
}
