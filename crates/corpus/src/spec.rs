//! Synthetic SPEC-like benchmark suite.
//!
//! The paper evaluates on SPEC CPU 2000/2006; we cannot ship SPEC, so each
//! benchmark here is a synthetic program with the *mechanism* the paper
//! attributes to it (see DESIGN.md's substitution table):
//!
//! | benchmark | mechanism |
//! |---|---|
//! | 252.eon | fragile alignment: short low-trip loops whose luck breaks when bytes move (NOPIN/NOPKILL/REDTEST/LOOP16 all regress it) |
//! | 175.vpr, 176.gcc, 300.twolf | high-trip short loops crossing a 16-byte line (LOOP16 helps on the Intel profile) |
//! | 181.mcf, 186.crafty | high-trip loops crossing a 32-byte window: stream on Intel's 4-line LSD regardless, but need alignment on the AMD profile (LOOP16 helps on AMD only) |
//! | 454.calculix, 447.dealII | hot loop fits the AMD loop buffer only after REDMOV/REDTEST shrink it; NOPKILL removes the alignment that keeps it streaming |
//! | 410.bwaves, 434.zeusmp, 483.xalancbmk, 429.mcf, 464.h264ref | §III.F fan-out blocks in program order that loses the forwarding race (SCHED helps ~1–2%) |
//! | others | neutral filler with §III.B pattern counts |
//!
//! Every hot function is placed *before* the filler in the file so its
//! internal layout is independent of filler size, and is covered by layout
//! assertions in the tests.

use std::fmt::Write as _;

use crate::compiler::{generate, GeneratorConfig};
use crate::kernels::Workload;

/// Rename a kernel function and its local labels so several instances can
/// coexist in one file.
fn instantiate(asm: &str, old_name: &str, new_name: &str, tag: &str) -> String {
    asm.replace(".L", &format!(".L{tag}_"))
        .replace(old_name, new_name)
}

/// Emit the standard function wrapper.
fn func(out: &mut String, name: &str, body: &str) {
    let _ = writeln!(out, "\t.globl\t{name}");
    let _ = writeln!(out, "\t.type\t{name}, @function");
    let _ = writeln!(out, "{name}:");
    out.push_str(body);
    let _ = writeln!(out, "\t.size\t{name}, .-{name}");
}

/// Emit a cheap, predictable dilution loop (independent adds): `iters`
/// iterations at roughly two cycles each. Placed inside a hot function's
/// outer loop, it sets the fraction of time the sensitive code accounts
/// for — the knob that scales kernel-level effects down to the
/// benchmark-level percentages the paper reports.
fn dilution(s: &mut String, tag: &str, iters: u64) {
    if iters == 0 {
        return;
    }
    // The body is bound by the 3-cycle imul dependency chain, which makes
    // its cost per iteration independent of code placement — the dilution
    // instrument itself must not react to the alignment shifts the
    // experiments introduce.
    let _ = writeln!(s, "\tmovl ${iters}, %ebx");
    let _ = writeln!(s, ".Ldil_{tag}:");
    let _ = writeln!(s, "\timull $3, %r8d, %r8d");
    let _ = writeln!(s, "\tsubl $1, %ebx");
    let _ = writeln!(s, "\tjne .Ldil_{tag}");
}

/// The 252.eon-like fragile hot function.
///
/// Layout (function start is 64-byte aligned by a `.p2align 6`):
/// * loop A: 14 bytes, kept on a 16-byte line by a compiler `.p2align 4`
///   (NOPKILL removes it → A crosses → regression);
/// * a redundant `subl/testl` pair whose `testl` REDTEST deletes — the
///   2-byte shrink slides loop B off its lucky line (REDTEST regression);
/// * loop B: 20 bytes spanning exactly two lines at [32..52) (3 lines when
///   shifted);
/// * loop C: 14 bytes, trip count 2, crossing a line — LOOP16 "fixes" it,
///   but the alignment NOPs it inserts run on the hot outer path and cost
///   more than the low-trip loop gains (LOOP16 regression).
fn eon_hot(tag: &str, outer: u64, dilute: u64) -> String {
    let mut s = String::new();
    // movl imm32,%ecx = 5 bytes -> .Louter at 5.
    let _ = writeln!(s, "\tmovl ${outer}, %ecx");
    let _ = writeln!(s, ".Leon_{tag}_outer:");
    // 5: xorq(3) -> 8, movl $8,%edx(5) -> 13.
    let _ = writeln!(s, "\txorq %rax, %rax");
    let _ = writeln!(s, "\tmovl $20, %edx");
    // Compiler-style alignment: pads 13 -> 16.
    let _ = writeln!(s, "\t.p2align 4,,15");
    let _ = writeln!(s, ".Leon_{tag}_a:"); // 16: loop A = movss(5)+addq(4)+subl(3)+jne(2) = 14B
    let _ = writeln!(s, "\tmovss %xmm0, (%rdi,%rax,4)");
    let _ = writeln!(s, "\taddq $1, %rax");
    let _ = writeln!(s, "\tsubl $1, %edx");
    let _ = writeln!(s, "\tjne .Leon_{tag}_a"); // ends at 30
                                                // Redundant pair: subl(3) + testl(2) -> 35, consumed by a cmov (4)
                                                // -> 39 (a flags consumer that is not a branch, so deleting the testl
                                                // shifts code without perturbing the predictor's bucket contents).
    let _ = writeln!(s, "\tsubl $1, %esi");
    let _ = writeln!(s, "\ttestl %esi, %esi");
    let _ = writeln!(s, "\tcmovne %r9d, %r10d");
    // 39: movl(5) -> 44, then pad 44 -> 49 with NOP bytes (NOT alignment
    // directives — "lucky" bytes the compiler happened to emit).
    let _ = writeln!(s, "\tmovl $40, %edx");
    let _ = writeln!(s, "\tnopl 0(%rax)"); // 4 -> 48
    let _ = writeln!(s, "\tnop"); // 1 -> 49
                                  // Loop B: 18 bytes at [49,67): lines 3,4 (exactly two). REDTEST's
                                  // 2-byte shrink moves it to [47,65): three lines.
                                  // B is fetch-bound: independent work only, so the extra decode line
                                  // REDTEST's shift causes is the binding constraint.
    let _ = writeln!(s, ".Leon_{tag}_b:");
    let _ = writeln!(s, "\tmovss (%rdi,%rax,4), %xmm1");
    let _ = writeln!(s, "\txorps %xmm1, %xmm3");
    let _ = writeln!(s, "\taddq $2, %rax");
    let _ = writeln!(s, "\tsubq $1, %rdx");
    let _ = writeln!(s, "\tjne .Leon_{tag}_b");
    // Loop C: trip count 1, crossing a 16-byte line: LOOP16's fix inserts
    // executed padding on the hot outer path that costs more than the
    // single-trip loop gains. The 14-byte spacer moves C1's branch out of
    // loop B's PC>>5 predictor bucket (their taken/not-taken behaviours
    // differ, so sharing an entry would poison the baseline).
    let _ = writeln!(s, "\taddq $0x44444444, %r13");
    let _ = writeln!(s, "\taddq $0x55555555, %r13");
    let _ = writeln!(s, "\tmovl $1, %edx");
    let _ = writeln!(s, ".Leon_{tag}_c:");
    let _ = writeln!(s, "\tmovss %xmm2, (%rsi,%rax,4)");
    let _ = writeln!(s, "\taddq $1, %rax");
    let _ = writeln!(s, "\tsubl $1, %edx");
    let _ = writeln!(s, "\tjne .Leon_{tag}_c");
    // More single-trip crossing loops: more LOOP16 bait whose alignment
    // padding runs on the hot path. The 3-byte spacers keep each loop on a
    // line-crossing offset (the stride would otherwise alternate).
    for c in ["c2", "c3", "c4", "c5"] {
        if c == "c4" || c == "c5" {
            let _ = writeln!(s, "\tmovq %r8, %r9");
        }
        let _ = writeln!(s, "\tmovl $1, %edx");
        let _ = writeln!(s, ".Leon_{tag}_{c}:");
        let _ = writeln!(s, "\tmovss %xmm2, (%rsi,%rax,4)");
        let _ = writeln!(s, "\taddq $1, %rax");
        let _ = writeln!(s, "\tsubl $1, %edx");
        let _ = writeln!(s, "\tjne .Leon_{tag}_{c}");
    }
    // Loop D: 14 bytes at [194,208) — luckily inside one decode line.
    // LOOP16's padding for the C loops shifts it onto a crossing offset,
    // and the pass cannot know: candidates were chosen against the
    // *original* layout (the §II phase-ordering hazard). NOPKILL's pad
    // removal shifts it onto a crossing offset too.
    let _ = writeln!(s, "\taddq $0x66666666, %r13"); // 7 -> 189
    let _ = writeln!(s, "\taddq $0x77777777, %r13"); // 7 -> 196
    let _ = writeln!(s, "\tmovq %r8, %r9"); // 3 -> 199
    let _ = writeln!(s, "\tmovq %r8, %r9"); // 3 -> 202
    let _ = writeln!(s, "\tmovq %r8, %r9"); // 3 -> 205
    let _ = writeln!(s, "\tmovl $15, %edx"); // 5 -> 210
    let _ = writeln!(s, ".Leon_{tag}_d:");
    let _ = writeln!(s, "\tmovss %xmm1, (%rsi,%rax,4)");
    let _ = writeln!(s, "\taddq $1, %rax");
    let _ = writeln!(s, "\tsubl $1, %edx");
    let _ = writeln!(s, "\tjne .Leon_{tag}_d"); // D = [210,224)
                                                // Loop E: 34 bytes, byte-dense — the AMD-profile analogue of D. At its
                                                // baseline offset it spans two 32-byte fetch windows; LOOP16's padding
                                                // pushes it to an offset ≡ 31 (mod 32) where it needs three.
    let _ = writeln!(s, "\taddq $0x12121212, %r13"); // 7 -> 231
    let _ = writeln!(s, "\tmovq %r8, %r9"); // 3 -> 234
    let _ = writeln!(s, "\tmovq %r8, %r9"); // 3 -> 237
    let _ = writeln!(s, "\tmovl $7, %esi"); // 5 -> 242
    let _ = writeln!(s, "\tmovl $25, %edx"); // 5 -> 247
    let _ = writeln!(s, ".Leon_{tag}_e:");
    let _ = writeln!(s, "\taddq $0x21212121, %r13"); // 7
    let _ = writeln!(s, "\taddl $0x01010101, %r8d"); // 7 -> 14
    let _ = writeln!(s, "\taddl $0x02020202, %r9d"); // 7 -> 21
    let _ = writeln!(s, "\taddl $0x03030303, %r10d"); // 7 -> 28
    let _ = writeln!(s, "\tsubq $1, %rdx"); // 4 -> 32
    let _ = writeln!(s, "\tjne .Leon_{tag}_e"); // 2 -> 34
    dilution(&mut s, &format!("eon{tag}"), dilute);
    let _ = writeln!(s, "\tsubl $1, %ecx");
    let _ = writeln!(s, "\tjne .Leon_{tag}_outer");
    let _ = writeln!(s, "\tret");
    s
}

/// High-trip short loop crossing a 16-byte decode line, no alignment
/// directives present (vpr/gcc/twolf): LOOP16 fixes it on the Intel
/// profile; on the 32-byte-window AMD profile it was never split.
/// Entry to the loop is 10 bytes, so the 15-byte loop sits at [10,25):
/// two 16-byte lines, one 32-byte window.
fn crossing16_hot(tag: &str, trips: u64, outer: u64, dilute: u64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "\tmovl ${outer}, %ecx"); // 5
    let _ = writeln!(s, ".Lx16_{tag}_outer:");
    let _ = writeln!(s, "\txorq %rax, %rax"); // 3 -> 8
    let _ = writeln!(s, "\tmovl ${trips}, %edx"); // 5 -> 13... use 2-byte pad
    let _ = writeln!(s, ".Lx16_{tag}_loop:"); // at 13: [13,28) crosses 16
    let _ = writeln!(s, "\tmovss %xmm0, (%rdi,%rax,4)");
    let _ = writeln!(s, "\taddq $1, %rax");
    let _ = writeln!(s, "\tsubl $1, %edx");
    let _ = writeln!(s, "\tjne .Lx16_{tag}_loop");
    dilution(&mut s, &format!("x16{tag}"), dilute);
    let _ = writeln!(s, "\tsubl $1, %ecx");
    let _ = writeln!(s, "\tjne .Lx16_{tag}_outer");
    let _ = writeln!(s, "\tret");
    s
}

/// High-trip loop crossing a 32-byte window (mcf/crafty): streams from the
/// Intel LSD regardless of placement (≤4 of its 16-byte lines), but on the
/// AMD profile only a loop inside one 32-byte window streams — LOOP16's
/// 16-byte alignment puts it there.
fn crossing32_hot(tag: &str, trips: u64, outer: u64, dilute: u64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "\tmovl ${outer}, %ecx"); // 5
    let _ = writeln!(s, ".Lx32_{tag}_outer:");
    let _ = writeln!(s, "\txorq %rax, %rax"); // -> 8
    let _ = writeln!(s, "\tmovl ${trips}, %edx"); // -> 13
    let _ = writeln!(s, "\tnopw 0(%rax,%rax,1)"); // 6 -> 19
    let _ = writeln!(s, "\tnopl 0(%rax)"); // 4 -> 23
    let _ = writeln!(s, "\tnopl (%rax)"); // 3 -> 26
                                          // Loop at 26: 15 bytes = [26,41): crosses the 32-byte boundary; also
                                          // lines 1,2 of 16 (fits Intel's 4-line LSD easily).
    let _ = writeln!(s, ".Lx32_{tag}_loop:");
    let _ = writeln!(s, "\tmovss %xmm0, (%rdi,%rax,4)");
    let _ = writeln!(s, "\taddq $1, %rax");
    let _ = writeln!(s, "\tsubl $1, %edx");
    let _ = writeln!(s, "\tjne .Lx32_{tag}_loop");
    dilution(&mut s, &format!("x32{tag}"), dilute);
    let _ = writeln!(s, "\tsubl $1, %ecx");
    let _ = writeln!(s, "\tjne .Lx32_{tag}_outer");
    let _ = writeln!(s, "\tret");
    s
}

/// The calculix/dealII hot loop: byte-dense, high-trip, 34 bytes — two
/// bytes too big for the AMD 32-byte loop buffer. It contains one redundant
/// load pair (REDMOV saves 2 bytes) and one redundant test (REDTEST saves
/// 2 bytes); either pass shrinks it to 32 and it streams. A compiler
/// `.p2align 5` keeps it window-aligned — NOPKILL removes that and the
/// loop straddles two windows (regression).
fn calculix_hot(tag: &str, trips: u64, outer: u64, dilute: u64, fragile: bool) -> String {
    // trips2: iterations of the alignment-protected loop; the paper's
    // NOPKILL regression is ~0.44x the REDMOV/REDTEST gains.
    let trips2 = (trips / 5).max(33);
    let mut s = String::new();
    let _ = writeln!(s, "\tmovl ${outer}, %ecx"); // 5
    let _ = writeln!(s, ".Lclx_{tag}_outer:");
    let _ = writeln!(s, "\tmovl ${trips}, %edx"); // 5 -> 10
                                                  // 14 bytes of non-NOP padding put loop 1 at raw offset 24 — harmless
                                                  // if the alignment below disappears (still two fetch windows), so
                                                  // NOPKILL's regression comes only from the protected loop 2.
    let _ = writeln!(s, "\taddq $0x11111111, %r13"); // 7 -> 17
    let _ = writeln!(s, "\taddq $0x22222222, %r13"); // 7 -> 24
    let _ = writeln!(s, "\t.p2align 5,,31"); // 24 -> 32
    let _ = writeln!(s, ".Lclx_{tag}_loop:");
    // 35-byte, 6-instruction body: REDMOV (-5 bytes) or REDTEST (-3 bytes)
    // shrink it to touch only two windows — one fetch cycle less per
    // iteration.
    let _ = writeln!(s, "\tmovabs $0x1122334455667788, %r8"); // 10
    let _ = writeln!(s, "\tmovq 0x80(%rsp), %r10"); // 8 -> 18
    let _ = writeln!(s, "\tmovq 0x80(%rsp), %r11"); // 8 -> 26 (REDMOV: -5)
    let _ = writeln!(s, "\tsubq $1, %rdx"); // 4 -> 30
    let _ = writeln!(s, "\ttestq %rdx, %rdx"); // 3 -> 33 (REDTEST: -3)
    let _ = writeln!(s, "\tjne .Lclx_{tag}_loop"); // 2 -> 35, ends 66
                                                   // Loop 2: 12 bytes, high-trip, kept inside one 32-byte window by a
                                                   // compiler `.p2align 5` — it streams from the AMD loop buffer. NOPKILL
                                                   // removes the alignment; at the raw offset (≡ 21 mod 32) the loop
                                                   // crosses a window boundary and stops streaming (the paper's -8.8%).
    if fragile {
        let _ = writeln!(s, "\tmovl ${trips2}, %edx"); // 5 -> 72
        let _ = writeln!(s, "\taddq $0x44444444, %r13"); // 7 -> 79
        let _ = writeln!(s, "\taddq $0x55555555, %r13"); // 7 -> 86
        let _ = writeln!(s, "\t.p2align 5,,31"); // 86 -> 96
        let _ = writeln!(s, ".Lclx_{tag}_loop2:");
        let _ = writeln!(s, "\taddl $0x01010101, %r9d"); // 7
        let _ = writeln!(s, "\tsubl $1, %edx"); // 3 -> 10
        let _ = writeln!(s, "\tjne .Lclx_{tag}_loop2"); // 2 -> 12
    }
    dilution(&mut s, &format!("clx{tag}"), dilute);
    let _ = writeln!(s, "\tsubl $1, %ecx");
    let _ = writeln!(s, "\tjne .Lclx_{tag}_outer");
    let _ = writeln!(s, "\tret");
    s
}

/// A §III.F fan-out block in forwarding-hostile program order, inside a hot
/// loop (SCHED reorders it so the critical consumer wins the bypass race).
fn sched_hot(tag: &str, iters: u64, dilute: u64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "\tmovl ${iters}, %eax");
    let _ = writeln!(s, ".Lsched_{tag}_loop:");
    let _ = writeln!(s, "\txorl %edi, %ebx");
    // Bad order: off-path consumers first claim the forwarding slots.
    let _ = writeln!(s, "\tsubl %ebx, %ecx");
    let _ = writeln!(s, "\tsubl %ebx, %edx");
    let _ = writeln!(s, "\tmovl %ebx, %edi");
    let _ = writeln!(s, "\tshrl $12, %edi");
    let _ = writeln!(s, "\txorl %edi, %edx");
    let _ = writeln!(s, "\tsubl $1, %eax");
    let _ = writeln!(s, "\tjne .Lsched_{tag}_loop");
    dilution(&mut s, &format!("sch{tag}"), dilute);
    let _ = writeln!(s, "\tmovl %edx, %eax");
    let _ = writeln!(s, "\tret");
    s
}

/// Neutral hot loop (no micro-architectural sensitivity): dilution and
/// baseline activity for the benchmarks the paper reports as flat.
fn neutral_hot(tag: &str, iters: u64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "\tmovl ${iters}, %ecx");
    let _ = writeln!(s, "\txorq %rax, %rax");
    let _ = writeln!(s, ".Lneutral_{tag}:");
    let _ = writeln!(s, "\taddq $3, %rax");
    let _ = writeln!(s, "\timulq $5, %rax, %rdx");
    let _ = writeln!(s, "\taddq %rdx, %rax");
    let _ = writeln!(s, "\tandq $0xffffff, %rax");
    let _ = writeln!(s, "\tsubl $1, %ecx");
    let _ = writeln!(s, "\tjne .Lneutral_{tag}");
    let _ = writeln!(s, "\tret");
    s
}

/// Composition recipe for one benchmark.
struct Recipe {
    name: &'static str,
    /// Hot function bodies (placed first, in order, each 64-byte aligned).
    hot: Vec<(String, String)>,
    /// Filler functions (planted §III.B patterns), called once per outer
    /// main iteration to dilute the kernel effects.
    filler_functions: usize,
    filler_slots: usize,
    /// Main-loop iterations (each calls every hot + filler function once).
    main_iters: u64,
}

fn build(recipe: Recipe) -> Workload {
    let mut asm = String::new();
    let _ = writeln!(asm, "\t.text");
    for (name, body) in &recipe.hot {
        let _ = writeln!(asm, "\t.p2align 6");
        func(&mut asm, name, body);
    }
    // main
    let mut main_body = String::new();
    let _ = writeln!(main_body, "\tmovl ${}, %r15d", recipe.main_iters);
    let _ = writeln!(main_body, ".Lmain_loop:");
    let _ = writeln!(main_body, "\tmovq $0x3000000, %rdi");
    let _ = writeln!(main_body, "\tmovq $0x5000000, %rsi");
    for (name, _) in &recipe.hot {
        let _ = writeln!(main_body, "\tcall {name}");
    }
    for f in 0..recipe.filler_functions {
        let _ = writeln!(main_body, "\tcall {}_fill_{f}", recipe.name_sanitized());
    }
    let _ = writeln!(main_body, "\tsubl $1, %r15d");
    let _ = writeln!(main_body, "\tjne .Lmain_loop");
    let _ = writeln!(main_body, "\txorl %eax, %eax");
    let _ = writeln!(main_body, "\tret");
    func(&mut asm, "main", &main_body);
    // Filler.
    if recipe.filler_functions > 0 {
        let cfg = GeneratorConfig {
            seed: 0xc0de ^ recipe.name.len() as u64,
            functions: recipe.filler_functions,
            slots_per_function: recipe.filler_slots,
            ..GeneratorConfig::core_library(1.0)
        };
        let filler = generate(&cfg)
            .asm
            .replace("synth_fn_", &format!("{}_fill_", recipe.name_sanitized()))
            .replace(".Lsf", &format!(".L{}sf", recipe.name_sanitized()));
        asm.push_str(&filler);
    }
    Workload::new(recipe.name, asm, "main")
}

impl Recipe {
    fn name_sanitized(&self) -> String {
        self.name.replace(['.', '-'], "_")
    }
}

/// Build one benchmark of the SPEC 2000 int-like suite by name.
pub fn spec2000_benchmark(name: &str) -> Option<Workload> {
    let r = match name {
        "164.gzip" => Recipe {
            name: "164.gzip",
            hot: vec![("gzip_hot".into(), neutral_hot("gz", 2000))],
            filler_functions: 4,
            filler_slots: 200,
            main_iters: 12,
        },
        "175.vpr" => Recipe {
            name: "175.vpr",
            hot: vec![("vpr_hot".into(), crossing16_hot("vpr", 12, 60, 186))],
            filler_functions: 5,
            filler_slots: 300,
            main_iters: 12,
        },
        "176.gcc" => Recipe {
            name: "176.gcc",
            hot: vec![
                ("gcc_hot".into(), crossing16_hot("gc1", 24, 50, 370)),
                ("gcc_hot2".into(), crossing16_hot("gc2", 20, 40, 370)),
            ],
            filler_functions: 20,
            filler_slots: 400,
            main_iters: 8,
        },
        "181.mcf" => Recipe {
            name: "181.mcf",
            hot: vec![("mcf_hot".into(), crossing32_hot("mcf", 600, 20, 4850))],
            filler_functions: 1,
            filler_slots: 150,
            main_iters: 8,
        },
        "186.crafty" => Recipe {
            name: "186.crafty",
            hot: vec![("crafty_hot".into(), crossing32_hot("cra", 600, 18, 4770))],
            filler_functions: 4,
            filler_slots: 300,
            main_iters: 8,
        },
        "197.parser" => Recipe {
            name: "197.parser",
            hot: vec![("parser_hot".into(), neutral_hot("pa", 2500))],
            filler_functions: 6,
            filler_slots: 250,
            main_iters: 10,
        },
        "252.eon" => Recipe {
            name: "252.eon",
            hot: vec![("eon_hot".into(), eon_hot("e", 400, 135))],
            filler_functions: 5,
            filler_slots: 350,
            main_iters: 12,
        },
        "253.perlbmk" => Recipe {
            name: "253.perlbmk",
            hot: vec![
                ("perl_hot".into(), eon_hot("p", 300, 270)),
                ("perl_hot2".into(), neutral_hot("pl", 1500)),
            ],
            filler_functions: 12,
            filler_slots: 350,
            main_iters: 10,
        },
        "254.gap" => Recipe {
            name: "254.gap",
            hot: vec![("gap_hot".into(), neutral_hot("ga", 2200))],
            filler_functions: 14,
            filler_slots: 350,
            main_iters: 9,
        },
        "255.vortex" => Recipe {
            name: "255.vortex",
            hot: vec![("vortex_hot".into(), sched_hot("vo", 600, 20000))],
            filler_functions: 10,
            filler_slots: 300,
            main_iters: 8,
        },
        "256.bzip2" => Recipe {
            name: "256.bzip2",
            hot: vec![("bzip2_hot".into(), crossing16_hot("bz", 16, 60, 360))],
            filler_functions: 2,
            filler_slots: 150,
            main_iters: 12,
        },
        "300.twolf" => Recipe {
            name: "300.twolf",
            hot: vec![("twolf_hot".into(), crossing16_hot("tw", 10, 60, 190))],
            filler_functions: 6,
            filler_slots: 300,
            main_iters: 12,
        },
        _ => return None,
    };
    Some(build(r))
}

/// The full SPEC 2000 int-like suite (Fig. 7's twelve benchmarks).
pub const SPEC2000_NAMES: [&str; 12] = [
    "164.gzip",
    "175.vpr",
    "176.gcc",
    "181.mcf",
    "186.crafty",
    "197.parser",
    "252.eon",
    "253.perlbmk",
    "254.gap",
    "255.vortex",
    "256.bzip2",
    "300.twolf",
];

/// Build the whole SPEC2000-like suite.
pub fn spec2000_int() -> Vec<Workload> {
    SPEC2000_NAMES
        .iter()
        .map(|n| spec2000_benchmark(n).expect("known benchmark"))
        .collect()
}

/// Build one benchmark of the SPEC 2006-like subset by name.
pub fn spec2006_benchmark(name: &str) -> Option<Workload> {
    let r = match name {
        "447.dealII" => Recipe {
            name: "447.dealII",
            hot: vec![(
                "dealii_hot".into(),
                calculix_hot("dea", 150, 25, 1350, true),
            )],
            filler_functions: 10,
            filler_slots: 350,
            main_iters: 8,
        },
        "454.calculix" => Recipe {
            name: "454.calculix",
            hot: vec![(
                "calculix_hot".into(),
                calculix_hot("clx", 200, 40, 40, true),
            )],
            filler_functions: 2,
            filler_slots: 200,
            main_iters: 10,
        },
        "410.bwaves" => Recipe {
            name: "410.bwaves",
            hot: vec![("bwaves_hot".into(), sched_hot("bw", 500, 18000))],
            filler_functions: 6,
            filler_slots: 300,
            main_iters: 8,
        },
        "434.zeusmp" => Recipe {
            name: "434.zeusmp",
            hot: vec![("zeusmp_hot".into(), sched_hot("zm", 450, 19000))],
            filler_functions: 6,
            filler_slots: 300,
            main_iters: 8,
        },
        "483.xalancbmk" => Recipe {
            name: "483.xalancbmk",
            hot: vec![("xalanc_hot".into(), sched_hot("xa", 480, 19500))],
            filler_functions: 8,
            filler_slots: 300,
            main_iters: 8,
        },
        "429.mcf" => Recipe {
            name: "429.mcf",
            hot: vec![("mcf06_hot".into(), sched_hot("m6", 550, 17500))],
            filler_functions: 4,
            filler_slots: 250,
            main_iters: 8,
        },
        "464.h264ref" => Recipe {
            name: "464.h264ref",
            hot: vec![("h264_hot".into(), sched_hot("h2", 650, 14000))],
            filler_functions: 5,
            filler_slots: 250,
            main_iters: 8,
        },
        _ => return None,
    };
    Some(build(r))
}

/// The SPEC 2006-like subset evaluated in §V.B.
pub const SPEC2006_NAMES: [&str; 7] = [
    "447.dealII",
    "454.calculix",
    "410.bwaves",
    "434.zeusmp",
    "483.xalancbmk",
    "429.mcf",
    "464.h264ref",
];

/// Build the whole SPEC2006-like subset.
pub fn spec2006_subset() -> Vec<Workload> {
    SPEC2006_NAMES
        .iter()
        .map(|n| spec2006_benchmark(n).expect("known benchmark"))
        .collect()
}

/// Re-export the instantiation helper for examples/benches that compose
/// kernels manually.
pub fn instantiate_kernel(w: &Workload, new_name: &str, tag: &str) -> String {
    instantiate(&w.asm, &w.entry, new_name, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build() {
        for name in SPEC2000_NAMES {
            let w = spec2000_benchmark(name).unwrap();
            assert!(w.asm.contains("main:"), "{name}");
            assert_eq!(w.entry, "main");
        }
        for name in SPEC2006_NAMES {
            let w = spec2006_benchmark(name).unwrap();
            assert!(w.asm.contains("main:"), "{name}");
        }
        assert!(spec2000_benchmark("999.unknown").is_none());
        assert!(spec2006_benchmark("999.unknown").is_none());
    }

    #[test]
    fn suite_sizes() {
        assert_eq!(spec2000_int().len(), 12);
        assert_eq!(spec2006_subset().len(), 7);
    }

    #[test]
    fn hot_functions_precede_filler() {
        let w = spec2000_benchmark("176.gcc").unwrap();
        let hot = w.asm.find("gcc_hot:").unwrap();
        let fill = w.asm.find("_fill_0:").unwrap();
        assert!(hot < fill);
    }

    #[test]
    fn instantiate_renames_labels_and_function() {
        let k = crate::kernels::hashing(true, 10);
        let inst = instantiate_kernel(&k, "hash2", "h2");
        assert!(inst.contains("hash2:"));
        assert!(inst.contains(".Lh2_5:"));
        assert!(!inst.contains("hash_kernel"));
    }
}

#[cfg(test)]
mod layout_tests {
    //! The benchmark mechanisms depend on exact byte placement; these tests
    //! pin the designed offsets so future edits cannot silently break the
    //! §V reproductions.

    use super::*;

    fn label_offsets(asm: &str, labels: &[&str]) -> Vec<u64> {
        let unit = mao::MaoUnit::parse(asm).expect("benchmark parses");
        let layout = mao::relax(&unit).expect("benchmark relaxes");
        labels
            .iter()
            .map(|l| {
                let id = unit.find_label(l).unwrap_or_else(|| panic!("label {l}"));
                layout.addr[id]
            })
            .collect()
    }

    #[test]
    fn eon_fragile_geometry() {
        let w = spec2000_benchmark("252.eon").expect("eon");
        let offs = label_offsets(
            &w.asm,
            &[
                ".Leon_e_a",
                ".Leon_e_b",
                ".Leon_e_c",
                ".Leon_e_d",
                ".Leon_e_e",
            ],
        );
        // Loop A aligned at 16 (one decode line for its 14 bytes).
        assert_eq!(offs[0], 16);
        assert_eq!(offs[0] % 16, 0);
        // Loop B at 49: [49,67) touches exactly two lines; a 2-byte shrink
        // upstream (REDTEST) makes it three.
        assert_eq!(offs[1], 49);
        // Loop C crosses a line (LOOP16 bait).
        let c = offs[2];
        assert_ne!(c / 16, (c + 13) / 16, "loop C must cross a line");
        // Loop D at 210 ≡ 2 (mod 16): one line; and within one AMD window.
        assert_eq!(offs[3], 210);
        assert_eq!(offs[3] % 16, 2);
        // Loop E at 247: spans two 32-byte windows ([224,256), [256,288)).
        assert_eq!(offs[4], 247);
        assert_eq!(offs[4] / 32, 7);
        assert_eq!((offs[4] + 34 - 1) / 32, 8);
    }

    #[test]
    fn crossing16_geometry() {
        let w = spec2000_benchmark("175.vpr").expect("vpr");
        let offs = label_offsets(&w.asm, &[".Lx16_vpr_loop"]);
        // 14-byte loop at 13: crosses a 16-byte line, inside one 32-byte
        // window (Intel-only effect).
        assert_eq!(offs[0], 13);
        assert_ne!(offs[0] / 16, (offs[0] + 13) / 16);
        assert_eq!(offs[0] / 32, (offs[0] + 13) / 32);
    }

    #[test]
    fn crossing32_geometry() {
        let w = spec2000_benchmark("181.mcf").expect("mcf");
        let offs = label_offsets(&w.asm, &[".Lx32_mcf_loop"]);
        // 14-byte loop at 26: crosses the 32-byte window boundary but spans
        // only two 16-byte lines (streams on Intel's 4-line LSD).
        assert_eq!(offs[0], 26);
        assert_ne!(offs[0] / 32, (offs[0] + 13) / 32);
        assert_eq!((offs[0] + 13) / 16 - offs[0] / 16, 1);
    }

    #[test]
    fn calculix_geometry() {
        let w = spec2006_benchmark("454.calculix").expect("calculix");
        let offs = label_offsets(&w.asm, &[".Lclx_clx_loop", ".Lclx_clx_loop2"]);
        // Loop 1 aligned to 32 by the compiler-style p2align; 35 bytes, so
        // it spans two windows until REDMOV/REDTEST shrink it under 32.
        assert_eq!(offs[0] % 32, 0);
        // Loop 2 inside a single window (it streams) only thanks to its
        // p2align — its raw offset would cross.
        assert_eq!(offs[1] % 32, 0);
    }

    #[test]
    fn hot_functions_are_64_byte_aligned() {
        for name in SPEC2000_NAMES {
            let w = spec2000_benchmark(name).expect("known");
            let unit = mao::MaoUnit::parse(&w.asm).expect("parses");
            let layout = mao::relax(&unit).expect("relaxes");
            for f in unit.functions() {
                if f.name == "main" || f.name.contains("_fill_") {
                    continue;
                }
                assert_eq!(
                    layout.addr[f.label_id] % 64,
                    0,
                    "{name}: hot function {} must be 64-byte aligned",
                    f.name
                );
            }
        }
    }
}
