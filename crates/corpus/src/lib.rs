//! Synthetic workloads for the MAO reproduction.
//!
//! The paper's evaluation uses corpora we cannot ship: a Google-internal
//! C++ core library (for the §III.B static pattern counts) and SPEC CPU
//! 2000/2006 (for §V). This crate provides seeded synthetic equivalents:
//!
//! * [`kernels`] — the paper's motivating code snippets as runnable
//!   assembly (Fig. 1 mcf loop, the 252.eon short loop, the §III.F hashing
//!   kernel, the Figs. 4/5 LSD loop, ...);
//! * [`compiler`] — a "compiler output" generator that plants the §III.B
//!   inefficiency patterns at calibrated rates with ground-truth counts;
//! * [`spec`] — SPEC-like benchmark programs whose hot code embodies the
//!   mechanism the paper attributes to each benchmark.

pub mod compiler;
pub mod kernels;
pub mod spec;

pub use compiler::{generate, Corpus, GeneratorConfig, PlantedCounts};
pub use kernels::Workload;
