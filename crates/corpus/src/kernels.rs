//! Hand-built assembly kernels reproducing the paper's motivating examples.
//!
//! Each kernel is a self-contained function in AT&T syntax, runnable on the
//! `mao-sim` simulator. The builders expose the knobs the corresponding
//! experiment varies (padding offsets, NOP insertion, iteration counts).

use std::fmt::Write as _;

/// A runnable workload: assembly text plus how to invoke it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Assembly text (AT&T).
    pub asm: String,
    /// Entry function.
    pub entry: String,
    /// Arguments (SysV registers, in order).
    pub args: Vec<u64>,
}

impl Workload {
    /// Construct with no arguments.
    pub fn new(name: &str, asm: String, entry: &str) -> Workload {
        Workload {
            name: name.to_string(),
            asm,
            entry: entry.to_string(),
            args: Vec::new(),
        }
    }
}

fn function_header(out: &mut String, name: &str) {
    let _ = writeln!(
        out,
        "\t.text\n\t.globl\t{name}\n\t.type\t{name}, @function\n{name}:"
    );
}

fn function_footer(out: &mut String, name: &str) {
    let _ = writeln!(out, "\t.size\t{name}, .-{name}");
}

/// The Figure 1 kernel: the twice-unrolled 181.mcf byte loop where a single
/// NOP before `.L5` speeds the loop up ~5% (a branch-predictor placement
/// effect). `with_nop` reproduces the two variants; `iters` scales runtime.
///
/// The loop copies sign-extended bytes `src[i] -> dst[i]` while comparing a
/// bound, with the back branch landing in a predictor bucket that (without
/// the NOP) aliases the function-entry branch.
pub fn mcf_fig1(with_nop: bool, iters: u64) -> Workload {
    let mut s = String::new();
    function_header(&mut s, "mcf_kernel");
    // rdi = src, rsi = dst, r9d = bound; loop unrolled twice as in Fig. 1.
    let _ = writeln!(s, "\tmovl ${iters}, %r9d");
    let _ = writeln!(s, "\txorq %r8, %r8");
    // A leading short-running conditional branch whose predictor slot the
    // unaligned back branch collides with.
    let _ = writeln!(s, "\ttestl %r9d, %r9d");
    let _ = writeln!(s, "\tje .Lout");
    let _ = writeln!(s, ".L3:");
    let _ = writeln!(s, "\tmovsbl 1(%rdi,%r8,4), %edx");
    let _ = writeln!(s, "\tmovsbl (%rdi,%r8,4), %eax");
    let _ = writeln!(s, "\taddl %eax, %edx");
    let _ = writeln!(s, "\tmovl %edx, (%rsi,%r8,4)");
    let _ = writeln!(s, "\taddq $1, %r8");
    if with_nop {
        let _ = writeln!(s, "\tnop");
    }
    let _ = writeln!(s, ".L5:");
    let _ = writeln!(s, "\tmovsbl 1(%rdi,%r8,4), %edx");
    let _ = writeln!(s, "\tmovsbl (%rdi,%r8,4), %eax");
    let _ = writeln!(s, "\taddl %eax, %edx");
    let _ = writeln!(s, "\tmovl %edx, (%rsi,%r8,4)");
    let _ = writeln!(s, "\taddq $1, %r8");
    let _ = writeln!(s, "\tcmpl %r8d, %r9d");
    let _ = writeln!(s, "\tjg .L3");
    let _ = writeln!(s, ".Lout:");
    let _ = writeln!(s, "\tmovq %r8, %rax");
    let _ = writeln!(s, "\tret");
    function_footer(&mut s, "mcf_kernel");
    let mut w = Workload::new(
        if with_nop { "mcf-fig1-nop" } else { "mcf-fig1" },
        s,
        "mcf_kernel",
    );
    // src buffer at 3 MiB, dst at 5 MiB inside the simulator's flat memory.
    w.args = vec![0x30_0000, 0x50_0000];
    w
}

/// The §III.C.e 252.eon short loop: `movss/add/cmp/jne`, 15 bytes, running
/// `inner` iterations (8 in the paper — below LSD lock-on) re-entered
/// `outer` times. `pad` shifts the loop start by that many 1-byte NOPs, so
/// callers can place it on or across a 16-byte boundary.
pub fn eon_short_loop(pad: usize, inner: u64, outer: u64) -> Workload {
    let mut s = String::new();
    function_header(&mut s, "eon_kernel");
    let _ = writeln!(s, "\tmovl ${outer}, %ecx");
    let _ = writeln!(s, ".Louter:");
    let _ = writeln!(s, "\txorq %rax, %rax");
    let _ = writeln!(s, "\tmovq ${inner}, %rdx");
    for _ in 0..pad {
        let _ = writeln!(s, "\tnop");
    }
    let _ = writeln!(s, ".Lloop:");
    let _ = writeln!(s, "\tmovss %xmm0, (%rdi,%rax,4)");
    let _ = writeln!(s, "\taddq $1, %rax");
    let _ = writeln!(s, "\tsubq $1, %rdx");
    let _ = writeln!(s, "\tjne .Lloop");
    let _ = writeln!(s, "\tsubl $1, %ecx");
    let _ = writeln!(s, "\tjne .Louter");
    let _ = writeln!(s, "\tret");
    function_footer(&mut s, "eon_kernel");
    let mut w = Workload::new("eon-short-loop", s, "eon_kernel");
    w.args = vec![0x30_0000];
    w
}

/// The §III.F hashing kernel: an `xorl` feeding three consumers, where the
/// consumer order determines whether the critical path wins the forwarding
/// bandwidth. `critical_first` emits the good schedule.
pub fn hashing(critical_first: bool, iters: u64) -> Workload {
    let mut s = String::new();
    function_header(&mut s, "hash_kernel");
    let _ = writeln!(s, "\tmovl ${iters}, %eax");
    let _ = writeln!(s, "\tmovl $0x9e3779b9, %ebx");
    let _ = writeln!(s, ".L5:");
    let _ = writeln!(s, "\txorl %edi, %ebx");
    if critical_first {
        let _ = writeln!(s, "\tmovl %ebx, %edi");
        let _ = writeln!(s, "\tshrl $12, %edi");
        let _ = writeln!(s, "\tsubl %ebx, %ecx");
        let _ = writeln!(s, "\tsubl %ebx, %edx");
    } else {
        let _ = writeln!(s, "\tsubl %ebx, %ecx");
        let _ = writeln!(s, "\tsubl %ebx, %edx");
        let _ = writeln!(s, "\tmovl %ebx, %edi");
        let _ = writeln!(s, "\tshrl $12, %edi");
    }
    let _ = writeln!(s, "\txorl %edi, %edx");
    let _ = writeln!(s, "\tsubl $1, %eax");
    let _ = writeln!(s, "\tjne .L5");
    let _ = writeln!(s, "\tmovl %edx, %eax");
    let _ = writeln!(s, "\tret");
    function_footer(&mut s, "hash_kernel");
    Workload::new(
        if critical_first {
            "hashing-good-schedule"
        } else {
            "hashing-bad-schedule"
        },
        s,
        "hash_kernel",
    )
}

/// The §III.F machine-dependent port anecdote: `lea` (port 0 only) and
/// `sarl` (ports 0 and 5) compete for port 0 in the hot block.
pub fn port_contention(iters: u64) -> Workload {
    let mut s = String::new();
    function_header(&mut s, "port_kernel");
    let _ = writeln!(s, "\tmovl ${iters}, %eax");
    let _ = writeln!(s, "\tmovl $1, %r8d");
    let _ = writeln!(s, ".L5:");
    let _ = writeln!(s, "\tleal (%r8,%rdi), %ebx");
    let _ = writeln!(s, "\tmovl %ebx, %ecx");
    let _ = writeln!(s, "\tsarl %ecx");
    let _ = writeln!(s, "\tmovl %ecx, %edx");
    let _ = writeln!(s, "\txorb $1, %dl");
    let _ = writeln!(s, "\tleal 2(%rdx), %r8d");
    let _ = writeln!(s, "\tsubl $1, %eax");
    let _ = writeln!(s, "\tjne .L5");
    let _ = writeln!(s, "\tmovl %r8d, %eax");
    let _ = writeln!(s, "\tret");
    function_footer(&mut s, "port_kernel");
    Workload::new("port-contention", s, "port_kernel")
}

/// The Figures 4/5 LSD loop: three basic blocks forming a byte-dense loop.
/// `pad` NOPs before the loop shift which decode lines it spans.
pub fn lsd_loop(pad: usize, iters: u64) -> Workload {
    let mut s = String::new();
    function_header(&mut s, "lsd_kernel");
    let _ = writeln!(s, "\tmovq ${iters}, %r10");
    let _ = writeln!(s, "\txorl %edx, %edx");
    let _ = writeln!(s, "\txorl %r11d, %r11d");
    for _ in 0..pad {
        let _ = writeln!(s, "\tnop");
    }
    let _ = writeln!(s, ".L0:");
    // Block 1: compare and skip (the skip triggers once per 256 iterations,
    // so the branch is well-predicted, as in compiler-generated loop code).
    let _ = writeln!(s, "\ttestq $255, %r10");
    let _ = writeln!(s, "\tjne .L2");
    // Block 2: byte-dense filler (imm32 forms).
    let _ = writeln!(s, "\taddl $0x01010101, %r8d");
    let _ = writeln!(s, "\taddl $0x02020202, %r9d");
    let _ = writeln!(s, ".L2:");
    let _ = writeln!(s, "\taddl $0x03030303, %esi");
    let _ = writeln!(s, "\taddl $0x04040404, %r11d");
    let _ = writeln!(s, "\taddl $0x05050505, %r14d");
    let _ = writeln!(s, "\taddl $0x06060606, %edi");
    let _ = writeln!(s, "\taddq $0x07070707, %r13");
    let _ = writeln!(s, "\tsubq $1, %r10");
    let _ = writeln!(s, "\tjne .L0");
    let _ = writeln!(s, "\tmovl %esi, %eax");
    let _ = writeln!(s, "\tret");
    function_footer(&mut s, "lsd_kernel");
    Workload::new("lsd-loop", s, "lsd_kernel")
}

/// Image-manipulation style two-deep nest of short-running loops whose back
/// branches land close together (§III.C.g): trip counts of 1–2 confuse a
/// shared `PC >> 5` predictor entry.
pub fn image_nest(pad_between_branches: usize, outer: u64) -> Workload {
    let mut s = String::new();
    function_header(&mut s, "image_kernel");
    let _ = writeln!(s, "\tmovl ${outer}, %eax");
    let _ = writeln!(s, ".Louter:");
    let _ = writeln!(s, "\tmovl $1, %ebx");
    let _ = writeln!(s, ".Linner:");
    let _ = writeln!(s, "\tsubl $1, %ebx");
    let _ = writeln!(s, "\tjne .Linner");
    for _ in 0..pad_between_branches {
        let _ = writeln!(s, "\tnop");
    }
    let _ = writeln!(s, "\tsubl $1, %eax");
    let _ = writeln!(s, "\tjne .Louter");
    let _ = writeln!(s, "\tret");
    function_footer(&mut s, "image_kernel");
    Workload::new("image-nest", s, "image_kernel")
}

/// A streaming loop with low-reuse loads plus a small hot working set — the
/// inverse-prefetching scenario (§III.E.k). Without `prefetchnta`, the
/// stream evicts the hot lines; with it, the stream stays in one way.
/// `nta` emits the prefetch before the streaming load.
pub fn streaming_with_hot_set(nta: bool, iters: u64) -> Workload {
    let mut s = String::new();
    function_header(&mut s, "stream_kernel");
    // rdi = stream base; hot set at fixed addresses.
    let _ = writeln!(s, "\tmovq ${iters}, %rcx");
    let _ = writeln!(s, "\txorq %rax, %rax");
    let _ = writeln!(s, "\txorq %r8, %r8");
    let _ = writeln!(s, ".L:");
    if nta {
        let _ = writeln!(s, "\tprefetchnta (%rdi,%rax,8)");
    }
    let _ = writeln!(s, "\tmovq (%rdi,%rax,8), %rdx");
    let _ = writeln!(s, "\taddq %rdx, %r8");
    // Hot accesses: 8 lines revisited every iteration.
    let _ = writeln!(s, "\tmovq %rax, %r9");
    let _ = writeln!(s, "\tandq $7, %r9");
    let _ = writeln!(s, "\tshlq $6, %r9");
    let _ = writeln!(s, "\tmovq 0x100000(%r9), %rdx");
    let _ = writeln!(s, "\taddq %rdx, %r8");
    let _ = writeln!(s, "\taddq $8, %rax");
    let _ = writeln!(s, "\tsubq $1, %rcx");
    let _ = writeln!(s, "\tjne .L");
    let _ = writeln!(s, "\tmovq %r8, %rax");
    let _ = writeln!(s, "\tret");
    function_footer(&mut s, "stream_kernel");
    let mut w = Workload::new(
        if nta { "stream-nta" } else { "stream-plain" },
        s,
        "stream_kernel",
    );
    w.args = vec![0x200_0000];
    w
}

/// Every paper kernel at checker-friendly sizes: small iteration counts
/// and a couple of alignment variants per kernel, so a differential sweep
/// (`mao check`) exercises each one in well under a second of simulation.
/// `iters` scales the loop trip counts (clamped to at least 1).
pub fn paper_suite(iters: u64) -> Vec<Workload> {
    let iters = iters.max(1);
    vec![
        mcf_fig1(false, iters),
        mcf_fig1(true, iters),
        eon_short_loop(0, 8, iters.min(16)),
        eon_short_loop(5, 8, iters.min(16)),
        hashing(true, iters),
        hashing(false, iters),
        port_contention(iters),
        lsd_loop(0, iters),
        lsd_loop(9, iters),
        image_nest(0, iters.min(24)),
        image_nest(3, iters.min(24)),
        streaming_with_hot_set(false, iters.min(32)),
        streaming_with_hot_set(true, iters.min(32)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_is_runnable_shaped() {
        let suite = paper_suite(10);
        assert!(suite.len() >= 10);
        for w in &suite {
            assert!(w.asm.contains(&format!("{}:", w.entry)));
            assert!(w.asm.contains("ret"));
        }
    }

    #[test]
    fn kernels_are_nonempty_and_named() {
        for w in [
            mcf_fig1(false, 100),
            mcf_fig1(true, 100),
            eon_short_loop(0, 8, 10),
            hashing(true, 10),
            hashing(false, 10),
            port_contention(10),
            lsd_loop(0, 100),
            image_nest(0, 10),
            streaming_with_hot_set(true, 16),
        ] {
            assert!(!w.asm.is_empty());
            assert!(!w.name.is_empty());
            assert!(w.asm.contains(&format!("{}:", w.entry)));
            assert!(w.asm.contains(".type"));
        }
    }

    #[test]
    fn fig1_variants_differ_by_one_nop() {
        let plain = mcf_fig1(false, 100);
        let nopped = mcf_fig1(true, 100);
        let count = |s: &str| s.lines().filter(|l| l.trim() == "nop").count();
        assert_eq!(count(&plain.asm) + 1, count(&nopped.asm));
    }

    #[test]
    fn hashing_orders_are_permutations() {
        let good = hashing(true, 10);
        let bad = hashing(false, 10);
        let mut a: Vec<&str> = good.asm.lines().collect();
        let mut b: Vec<&str> = bad.asm.lines().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same instructions, different order");
        assert_ne!(good.asm, bad.asm);
    }
}
