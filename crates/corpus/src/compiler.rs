//! Synthetic "compiler output" generator.
//!
//! Stands in for the paper's static-count corpus (§III.B): *"As a sample
//! code base we used a core library at Google which consists of
//! approximately 80 complex C++ files containing many inline assembly
//! sequences."* The generator plants the four §III.B inefficiency patterns
//! at calibrated rates inside otherwise-plausible compiler output, and
//! reports exactly how many of each it planted so the pattern-matching
//! passes can be validated against ground truth.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Ground truth of planted patterns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlantedCounts {
    /// Redundant zero-extension moves (§III.B.a).
    pub redundant_zext: usize,
    /// Total `test` instructions emitted.
    pub total_tests: usize,
    /// Redundant `test` instructions (§III.B.b).
    pub redundant_tests: usize,
    /// Redundant load pairs (§III.B.c).
    pub redundant_loads: usize,
    /// Foldable add/add sequences (§III.B.d).
    pub addadd_pairs: usize,
    /// Functions generated.
    pub functions: usize,
    /// Instructions emitted (approximate, excluding labels/directives).
    pub instructions: usize,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed (same seed, same corpus).
    pub seed: u64,
    /// Number of functions.
    pub functions: usize,
    /// Pattern slots per function (each slot is a few instructions).
    pub slots_per_function: usize,
    /// Probability a slot plants a redundant zero-extension.
    pub p_redzext: f64,
    /// Probability a slot emits a test (redundant or not).
    pub p_test: f64,
    /// Fraction of tests that are redundant — the paper measured 24%.
    pub p_test_redundant: f64,
    /// Probability a slot plants a redundant load pair.
    pub p_redmov: f64,
    /// Probability a slot plants a foldable add/add pair.
    pub p_addadd: f64,
}

impl GeneratorConfig {
    /// Calibrated to reproduce the §III.B counts of the Google core library
    /// at `scale = 1.0`: ≈1000 redundant zero-extensions, ≈79763 tests of
    /// which ≈24% redundant, ≈13362 redundant load pairs.
    pub fn core_library(scale: f64) -> GeneratorConfig {
        let functions = ((800.0 * scale).round() as usize).max(1);
        GeneratorConfig {
            seed: 0x6d616f, // "mao"
            functions,
            slots_per_function: 400,
            // 800 functions * 400 slots = 320k slots at scale 1.0.
            p_redzext: 1000.0 / 320_000.0,
            p_test: 79_763.0 / 320_000.0,
            p_test_redundant: 0.2416, // 19272 / 79763
            p_redmov: 13_362.0 / 320_000.0,
            p_addadd: 0.01,
        }
    }
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Assembly text.
    pub asm: String,
    /// Ground-truth pattern counts.
    pub planted: PlantedCounts,
}

/// Scratch registers the generator cycles through (caller-saved, never
/// %rsp/%rbp, and disjoint groups for pattern vs filler code so planted
/// patterns are never accidentally disturbed by filler).
const PATTERN_REGS: [&str; 3] = ["r12", "r13", "r14"];
const FILLER_REGS: [&str; 4] = ["r8", "r9", "r10", "r11"];

/// Generate a corpus from the configuration.
pub fn generate(config: &GeneratorConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut asm = String::with_capacity(config.functions * config.slots_per_function * 24);
    let mut planted = PlantedCounts {
        functions: config.functions,
        ..PlantedCounts::default()
    };
    let _ = writeln!(asm, "\t.text");
    for f in 0..config.functions {
        let name = format!("synth_fn_{f}");
        let _ = writeln!(asm, "\t.globl\t{name}");
        let _ = writeln!(asm, "\t.type\t{name}, @function");
        let _ = writeln!(asm, "{name}:");
        let _ = writeln!(asm, "\tpush %rbp");
        let _ = writeln!(asm, "\tmov %rsp, %rbp");
        planted.instructions += 2;
        let mut label = 0usize;
        for slot in 0..config.slots_per_function {
            // Compilers re-align straight-line code periodically; this also
            // keeps small byte-count changes from rippling through the whole
            // function (shift noise the experiments should not measure).
            if slot > 0 && slot % 32 == 0 {
                let _ = writeln!(asm, "\t.p2align 4");
            }
            let preg = PATTERN_REGS[slot % PATTERN_REGS.len()];
            let pregd = format!("{preg}d");
            let roll: f64 = rng.random();
            let mut acc = 0.0;
            acc += config.p_redzext;
            if roll < acc {
                // andl leaves the register zero-extended; the mov is dead.
                let _ = writeln!(asm, "\tandl $255, %{pregd}");
                let _ = writeln!(asm, "\tmov %{pregd}, %{pregd}");
                planted.redundant_zext += 1;
                planted.instructions += 2;
                continue;
            }
            acc += config.p_test;
            if roll < acc {
                planted.total_tests += 1;
                label += 1;
                if rng.random::<f64>() < config.p_test_redundant {
                    // subl sets the flags the je needs: test redundant.
                    let _ = writeln!(asm, "\tsubl $16, %{pregd}");
                    let _ = writeln!(asm, "\ttestl %{pregd}, %{pregd}");
                    planted.redundant_tests += 1;
                } else {
                    // mov sets no flags: the test is load-bearing. The slot
                    // gets its own stack offset so the load never becomes an
                    // unplanned REDMOV opportunity against an earlier slot.
                    let off = 8 * (slot + 1);
                    let _ = writeln!(asm, "\tmovl -{off}(%rbp), %{pregd}");
                    let _ = writeln!(asm, "\ttestl %{pregd}, %{pregd}");
                }
                let _ = writeln!(asm, "\tje .Lsf{f}_{label}");
                let _ = writeln!(asm, ".Lsf{f}_{label}:");
                planted.instructions += 3;
                continue;
            }
            acc += config.p_redmov;
            if roll < acc {
                let other = PATTERN_REGS[(slot + 1) % PATTERN_REGS.len()];
                // Per-slot offset: each planted pair is redundant only with
                // itself, keeping the ground-truth count exact.
                let off = 8 * (slot + 1);
                let _ = writeln!(asm, "\tmovq {off}(%rsp), %{preg}");
                let _ = writeln!(asm, "\tmovq {off}(%rsp), %{other}");
                planted.redundant_loads += 1;
                planted.instructions += 2;
                continue;
            }
            acc += config.p_addadd;
            if roll < acc {
                let a = 1 + (slot % 7) as i64;
                let b = 2 + (slot % 5) as i64;
                let _ = writeln!(asm, "\taddq ${a}, %{preg}");
                let _ = writeln!(asm, "\taddq ${b}, %{preg}");
                // The cmp reads the register, fencing this pair off from the
                // next add/add on the same register (exact ground truth).
                let _ = writeln!(asm, "\tcmpq $0, %{preg}");
                planted.addadd_pairs += 1;
                planted.instructions += 3;
                continue;
            }
            // Filler: innocuous compiler-ish code on the filler registers.
            let r = FILLER_REGS[slot % FILLER_REGS.len()];
            match rng.random_range(0..4u32) {
                0 => {
                    let off = 16 + 8 * (slot % 8);
                    let _ = writeln!(asm, "\tmovq -{off}(%rbp), %{r}");
                }
                1 => {
                    let _ = writeln!(asm, "\tleaq 4(%{r}), %{r}");
                }
                2 => {
                    let _ = writeln!(asm, "\timulq $3, %{r}, %{r}");
                }
                _ => {
                    let _ = writeln!(asm, "\txorl %{r}d, %{r}d");
                }
            }
            planted.instructions += 1;
        }
        let _ = writeln!(asm, "\tpop %rbp");
        let _ = writeln!(asm, "\tret");
        let _ = writeln!(asm, "\t.size\t{name}, .-{name}");
        planted.instructions += 2;
    }
    Corpus { asm, planted }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let c = GeneratorConfig::core_library(0.01);
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.asm, b.asm);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn rates_land_near_targets() {
        let cfg = GeneratorConfig::core_library(0.25);
        let corpus = generate(&cfg);
        let p = corpus.planted;
        assert!(p.total_tests > 0);
        let ratio = p.redundant_tests as f64 / p.total_tests as f64;
        assert!(
            (ratio - 0.2416).abs() < 0.03,
            "redundant-test ratio {ratio}"
        );
        // At scale 0.25 expect ~250 zext, ~3340 redmov.
        assert!(
            (150..400).contains(&p.redundant_zext),
            "{}",
            p.redundant_zext
        );
        assert!(
            (2500..4200).contains(&p.redundant_loads),
            "{}",
            p.redundant_loads
        );
    }

    #[test]
    fn corpus_is_parseable_shape() {
        let cfg = GeneratorConfig::core_library(0.01);
        let corpus = generate(&cfg);
        assert!(corpus.asm.contains(".type\tsynth_fn_0, @function"));
        assert!(corpus.asm.lines().count() > 1000);
        // No stray tabs-only or unterminated lines.
        assert!(corpus.asm.ends_with('\n'));
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = GeneratorConfig::core_library(0.01);
        let mut b = GeneratorConfig::core_library(0.01);
        a.seed = 1;
        b.seed = 2;
        assert_ne!(generate(&a).asm, generate(&b).asm);
    }
}
