//! Property tests for window canonicalization.
//!
//! 1. Canonicalization is invariant under register renaming: a window and
//!    any injectively register-renamed copy of it canonicalize to the same
//!    instructions and the same cache key. This is the contract that lets
//!    one learned rewrite serve every renamed copy of a window.
//! 2. De-canonicalization through the recorded binding is the exact
//!    inverse of canonicalization: the round trip reproduces the original
//!    window, including operand widths, memory shapes, and `%rsp` pins.
//! 3. Windows that differ in an immediate never collide on a key (the
//!    constants participate in folds, so they are distinct problems).
//!
//! Windows are derived from one `u64` via SplitMix64, matching the relax
//! property tests: every failure reproduces from the seed.

use mao::MaoUnit;
use mao_superopt::canon::{canonicalize, decanonicalize, rename_insns, CANON_POOL};
use mao_x86::{Instruction, RegId};
use proptest::prelude::*;

fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn below(state: &mut u64, n: u64) -> u64 {
    next(state) % n
}

/// Registers random windows draw from (a mix the canonical pool must
/// rename, plus `%rsp` which must stay pinned).
const REGS: [&str; 8] = ["rax", "rbx", "rdi", "rsi", "r8", "r11", "r14", "rsp"];

fn reg(state: &mut u64) -> &'static str {
    REGS[below(state, REGS.len() as u64) as usize]
}

/// A random register not `%rsp` (for destinations and renaming targets).
fn gpr(state: &mut u64) -> &'static str {
    loop {
        let r = reg(state);
        if r != "rsp" {
            return r;
        }
    }
}

/// A random straight-line window in the eligible shape: reg-reg and
/// reg-imm ALU ops, loads/stores through based and indexed memory, `lea`,
/// and mixed widths (the `l`-suffix forms use the 32-bit register names).
fn random_window(seed: u64) -> Vec<Instruction> {
    let mut st = seed;
    let mut text = String::new();
    let len = 1 + below(&mut st, 6);
    for _ in 0..len {
        let line = match below(&mut st, 8) {
            0 => format!("movq %{}, %{}", reg(&mut st), gpr(&mut st)),
            1 => format!("addq %{}, %{}", reg(&mut st), gpr(&mut st)),
            2 => format!("xorq %{}, %{}", reg(&mut st), gpr(&mut st)),
            3 => format!("addq ${}, %{}", below(&mut st, 4096), gpr(&mut st)),
            4 => format!(
                "movq {}(%{}), %{}",
                below(&mut st, 256) * 8,
                reg(&mut st),
                gpr(&mut st)
            ),
            5 => format!(
                "movq %{}, {}(%{},%{},8)",
                gpr(&mut st),
                below(&mut st, 256) * 8,
                reg(&mut st),
                gpr(&mut st)
            ),
            6 => format!(
                "leaq {}(%{},%{},4), %{}",
                below(&mut st, 64),
                reg(&mut st),
                gpr(&mut st),
                gpr(&mut st)
            ),
            _ => {
                let d = gpr(&mut st);
                format!("movl ${}, %{}", below(&mut st, 100_000), to32(d))
            }
        };
        text.push('\t');
        text.push_str(&line);
        text.push('\n');
    }
    let unit = MaoUnit::parse(&text).unwrap();
    unit.entries()
        .iter()
        .filter_map(|e| e.insn().cloned())
        .collect()
}

fn to32(r: &str) -> String {
    match r {
        "rax" => "eax".into(),
        "rbx" => "ebx".into(),
        "rdi" => "edi".into(),
        "rsi" => "esi".into(),
        other => format!("{other}d"), // r8 -> r8d etc.
    }
}

/// A random injective renaming over the non-`%rsp` GPRs, as a permutation
/// of the canonical pool (15 registers, so any window's registers fit).
fn random_permutation(seed: u64) -> impl Fn(RegId) -> RegId {
    let mut st = seed;
    let mut perm: Vec<RegId> = CANON_POOL.to_vec();
    for i in (1..perm.len()).rev() {
        let j = below(&mut st, (i + 1) as u64) as usize;
        perm.swap(i, j);
    }
    move |id: RegId| {
        match CANON_POOL.iter().position(|&p| p == id) {
            Some(k) => perm[k],
            None => id, // %rsp
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// canonicalize(rename(w)) == canonicalize(w): same canonical
    /// instructions, same cache key, for any injective renaming.
    #[test]
    fn canonicalization_is_rename_invariant(seed in any::<u64>()) {
        let w = random_window(seed);
        let renamed = rename_insns(&w, random_permutation(seed ^ 0xabcd));
        let cw = canonicalize(&w).unwrap();
        let cr = canonicalize(&renamed).unwrap();
        prop_assert_eq!(&cw.insns, &cr.insns, "seed {seed}");
        prop_assert_eq!(cw.key, cr.key, "seed {}", seed);
    }

    /// decanonicalize(canonicalize(w)) == w: the binding rewrites the
    /// canonical window back into the original register context exactly.
    #[test]
    fn decanonicalization_round_trips(seed in any::<u64>()) {
        let w = random_window(seed);
        let c = canonicalize(&w).unwrap();
        let back = decanonicalize(&c.insns, &c.binding);
        prop_assert_eq!(back, w, "seed {}", seed);
    }

    /// The binding never mentions `%rsp` and never repeats a register, and
    /// the canonical window only uses the assigned pool prefix plus
    /// `%rsp`.
    #[test]
    fn bindings_are_injective_and_rsp_stays_pinned(seed in any::<u64>()) {
        let w = random_window(seed);
        let c = canonicalize(&w).unwrap();
        for (i, r) in c.binding.iter().enumerate() {
            prop_assert_ne!(*r, RegId::Rsp);
            prop_assert!(!c.binding[..i].contains(r), "seed {seed}: duplicate {r:?}");
        }
        let allowed: Vec<RegId> = CANON_POOL[..c.binding.len()].to_vec();
        let text = c
            .insns
            .iter()
            .map(|i| format!("{i}\n"))
            .collect::<String>();
        let canon_again = canonicalize(&c.insns).unwrap();
        prop_assert_eq!(canon_again.key, c.key, "canonical form is a fixpoint: {}", text);
        for r in &canon_again.binding {
            prop_assert!(allowed.contains(r), "seed {seed}: {r:?} outside pool prefix in {text}");
        }
    }

    /// Perturbing one immediate always changes the key.
    #[test]
    fn immediate_changes_change_the_key(seed in any::<u64>()) {
        let k = below(&mut { seed }, 1 << 20);
        let a = MaoUnit::parse(&format!("\taddq ${k}, %rax\n\tmovq %rax, %rbx\n")).unwrap();
        let b = MaoUnit::parse(&format!("\taddq ${}, %rax\n\tmovq %rax, %rbx\n", k + 1)).unwrap();
        let ins = |u: &MaoUnit| -> Vec<Instruction> {
            u.entries().iter().filter_map(|e| e.insn().cloned()).collect()
        };
        let ka = canonicalize(&ins(&a)).unwrap().key;
        let kb = canonicalize(&ins(&b)).unwrap().key;
        prop_assert_ne!(ka, kb);
    }
}
