//! Window canonicalization: register renaming into a window-normal form.
//!
//! Two windows that differ only in register names describe the same
//! computation — `mov %rdi,%rax; mov %rax,%rbx` and `mov %r8,%rcx; mov
//! %rcx,%rdx` should hit the same learned-rewrite cache entry. Renaming
//! each distinct register to a fixed pool register in order of first
//! appearance produces a *canonical window*; the inverse mapping (the
//! *binding*) rewrites a discovered replacement back into the original
//! register context. Immediates and displacements stay concrete — windows
//! with different constants are different search problems (the constants
//! participate in folds), so they get distinct cache keys naturally.

use std::fmt::Write as _;

use mao_x86::operand::{Mem, Operand};
use mao_x86::{Instruction, Reg, RegId};

/// The canonical register pool, in assignment order: every renameable GPR
/// (`%rsp` is pinned — it anchors frame addressing and is never renamed;
/// `%rip` never appears in eligible windows).
pub const CANON_POOL: [RegId; 15] = [
    RegId::Rax,
    RegId::Rcx,
    RegId::Rdx,
    RegId::Rbx,
    RegId::Rbp,
    RegId::Rsi,
    RegId::Rdi,
    RegId::R8,
    RegId::R9,
    RegId::R10,
    RegId::R11,
    RegId::R12,
    RegId::R13,
    RegId::R14,
    RegId::R15,
];

/// A window renamed into canonical register space.
#[derive(Debug, Clone)]
pub struct CanonWindow {
    /// The instructions over `CANON_POOL[0..binding.len()]` (plus possibly
    /// the pinned `%rsp`), immediates concrete.
    pub insns: Vec<Instruction>,
    /// `binding[k]` is the original register that canonical register
    /// `CANON_POOL[k]` stands for.
    pub binding: Vec<RegId>,
    /// Cache key: a 128-bit FNV-1a over the canonical AT&T text. Register
    /// renames collapse to one key; different immediates do not.
    pub key: u128,
}

/// Rename every register in `insns` through `map` (identity for ids not in
/// the map — in practice only `%rsp`). Width and operand structure are
/// preserved.
pub fn rename_insns(insns: &[Instruction], map: impl Fn(RegId) -> RegId) -> Vec<Instruction> {
    insns
        .iter()
        .map(|insn| {
            let mut out = insn.clone();
            for op in &mut out.operands {
                match op {
                    Operand::Reg(r) | Operand::IndirectReg(r) => *r = rename_reg(*r, &map),
                    Operand::Mem(m) | Operand::IndirectMem(m) => rename_mem(m, &map),
                    Operand::Imm(_) | Operand::Label(_) => {}
                }
            }
            out
        })
        .collect()
}

fn rename_reg(r: Reg, map: &impl Fn(RegId) -> RegId) -> Reg {
    Reg { id: map(r.id), ..r }
}

fn rename_mem(m: &mut Mem, map: &impl Fn(RegId) -> RegId) {
    if let Some(b) = &mut m.base {
        *b = rename_reg(*b, map);
    }
    if let Some(i) = &mut m.index {
        *i = rename_reg(*i, map);
    }
}

/// Every register id an instruction's operands mention, in canonical visit
/// order (operands left to right; within a memory operand, base then
/// index).
fn visit_regs(insn: &Instruction, mut f: impl FnMut(RegId)) {
    for op in &insn.operands {
        match op {
            Operand::Reg(r) | Operand::IndirectReg(r) => f(r.id),
            Operand::Mem(m) | Operand::IndirectMem(m) => {
                if let Some(b) = &m.base {
                    f(b.id);
                }
                if let Some(i) = &m.index {
                    f(i.id);
                }
            }
            Operand::Imm(_) | Operand::Label(_) => {}
        }
    }
}

/// Canonicalize a window: rename registers to [`CANON_POOL`] in order of
/// first appearance. Returns `None` only if the window mentions more
/// distinct registers than the pool holds (impossible for x86-64 GPR
/// windows, kept as a guard).
pub fn canonicalize(insns: &[Instruction]) -> Option<CanonWindow> {
    let mut binding: Vec<RegId> = Vec::new();
    for insn in insns {
        let mut overflow = false;
        visit_regs(insn, |id| {
            if id == RegId::Rsp || binding.contains(&id) {
                return;
            }
            if binding.len() == CANON_POOL.len() {
                overflow = true;
                return;
            }
            binding.push(id);
        });
        if overflow {
            return None;
        }
    }
    let canonical = rename_insns(insns, |id| {
        match binding.iter().position(|&b| b == id) {
            Some(k) => CANON_POOL[k],
            None => id, // %rsp
        }
    });
    let key = window_key(&canonical);
    Some(CanonWindow {
        insns: canonical,
        binding,
        key,
    })
}

/// Rewrite `insns` (in canonical register space) back into the register
/// context described by `binding`. The inverse of [`canonicalize`]'s
/// renaming; instructions may only use pool registers that `binding`
/// covers (guaranteed for rewrites, which the search restricts to the
/// original window's registers).
pub fn decanonicalize(insns: &[Instruction], binding: &[RegId]) -> Vec<Instruction> {
    rename_insns(insns, |id| {
        match CANON_POOL.iter().position(|&p| p == id) {
            Some(k) if k < binding.len() => binding[k],
            _ => id, // %rsp
        }
    })
}

/// 128-bit FNV-1a over the canonical window text. Stable across processes
/// (feeds cache file names), collision-resistant enough for a cache whose
/// hits are re-verified before use.
pub fn window_key(canonical: &[Instruction]) -> u128 {
    let mut text = String::new();
    for insn in canonical {
        let _ = writeln!(text, "{insn}");
    }
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for b in text.as_bytes() {
        h ^= u128::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mao::MaoUnit;

    pub(crate) fn parse_insns(lines: &str) -> Vec<Instruction> {
        let text: String = lines.lines().map(|l| format!("\t{}\n", l.trim())).collect();
        let unit = MaoUnit::parse(&text).unwrap();
        unit.entries()
            .iter()
            .filter_map(|e| e.insn().cloned())
            .collect()
    }

    #[test]
    fn rename_invariance() {
        let a = parse_insns("movq %rdi, %rax\nmovq %rax, %rbx\naddq 8(%rbx,%rdi,2), %rax");
        let b = parse_insns("movq %r8, %rcx\nmovq %rcx, %rdx\naddq 8(%rdx,%r8,2), %rcx");
        let ca = canonicalize(&a).unwrap();
        let cb = canonicalize(&b).unwrap();
        assert_eq!(ca.key, cb.key);
        assert_eq!(ca.insns, cb.insns);
    }

    #[test]
    fn different_immediates_key_differently() {
        let a = canonicalize(&parse_insns("addq $1, %rax\nmovq %rax, %rbx\nret")).unwrap();
        let b = canonicalize(&parse_insns("addq $2, %rax\nmovq %rax, %rbx\nret")).unwrap();
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn round_trip_through_binding() {
        let w = parse_insns("movq %r12, %rsi\nleaq 4(%rsi,%r12,8), %r13\nmovl %r13d, %esi");
        let c = canonicalize(&w).unwrap();
        assert_eq!(decanonicalize(&c.insns, &c.binding), w);
    }

    #[test]
    fn rsp_is_pinned() {
        let w = parse_insns("movq 24(%rsp), %rax\nmovq %rax, 32(%rsp)");
        let c = canonicalize(&w).unwrap();
        assert_eq!(c.binding, vec![RegId::Rax]);
        let text = format!("{}", c.insns[0]);
        assert!(text.contains("%rsp"), "{text}");
    }

    #[test]
    fn widths_survive_canonicalization() {
        let w = parse_insns("movl %edi, %eax\nmovw %ax, %cx\nmovb %cl, %dl");
        let c = canonicalize(&w).unwrap();
        let back = decanonicalize(&c.insns, &c.binding);
        assert_eq!(back, w);
    }
}
