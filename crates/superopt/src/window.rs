//! Window extraction: find short straight-line instruction sequences that
//! are safe to replace wholesale.
//!
//! A window is replaceable only when every architectural effect it has is
//! either reproduced by the candidate or provably unobservable:
//!
//! * **Straight-line.** No labels (someone may jump into the middle), no
//!   control flow, no barriers (`call` clobbers, `lock` synchronizes).
//! * **Closed register set.** Only plain GPRs, no `%rsp` writes (the stack
//!   pointer anchors every frame access after the window), no `%rip`, no
//!   high-byte registers, no XMM — the verifier's machine-state sampling
//!   covers exactly the 15 renameable GPRs.
//! * **Concrete addresses.** Memory operands must be register/displacement
//!   form with numeric displacements; symbolic and rip-relative operands
//!   change meaning when the surrounding layout moves.
//! * **Flags dead at exit.** The search compares register and memory state
//!   but deliberately not flag state (candidates are free to set flags
//!   differently); that is only sound when nothing downstream reads the
//!   flags the window leaves behind, checked by a conservative forward
//!   scan over the side-effect tables.
//! * **Encodable.** `encoded_length` must accept every instruction — the
//!   cost model has to price both the original and its replacement.

use mao::{EntryId, Function, MaoUnit};
use mao_asm::Entry;
use mao_x86::{def_use, encoded_length, BranchForm, Flags, Instruction, Mnemonic, Operand, RegId};

/// A replaceable straight-line window inside one function.
#[derive(Debug, Clone)]
pub struct Window {
    /// Entry ids of the window's instructions, in order.
    pub ids: Vec<EntryId>,
    /// The instructions themselves (clones of the unit's entries).
    pub insns: Vec<Instruction>,
}

/// Mnemonics the superoptimizer is allowed to touch (and to emit). A
/// deliberate curated subset: integer moves and ALU with fully modeled
/// side-effect tables, simulator support, and encoder support. Notably
/// absent: anything reading flags (`adc`, `cmovcc`, `setcc`), string ops,
/// divisions (fault on zero), pushes/pops (move `%rsp`).
pub fn allowed_mnemonic(m: Mnemonic) -> bool {
    use Mnemonic as M;
    matches!(
        m,
        M::Mov
            | M::Movabs
            | M::Movsx
            | M::Movzx
            | M::Lea
            | M::Add
            | M::Sub
            | M::And
            | M::Or
            | M::Xor
            | M::Not
            | M::Neg
            | M::Inc
            | M::Dec
            | M::Cmp
            | M::Test
            | M::Imul
            | M::Shl
            | M::Shr
            | M::Sar
            | M::Cltq
    )
}

/// Is `reg` usable inside a window? Plain GPRs only, minus the pinned
/// stack pointer for writes (reads are fine — `24(%rsp)` is how locals are
/// addressed) and minus `%rip`.
fn usable_reg(r: mao_x86::Reg) -> bool {
    r.id.is_gpr() && !r.high8 && r.id != RegId::Rip
}

/// May this instruction sit inside a window?
pub fn eligible(insn: &Instruction) -> bool {
    if !allowed_mnemonic(insn.mnemonic) || insn.lock {
        return false;
    }
    let du = def_use(insn);
    if du.barrier {
        return false;
    }
    // The stack pointer anchors everything after the window; never move it.
    if du.reg_defs.iter().any(|r| r.id == RegId::Rsp) {
        return false;
    }
    if !du
        .reg_defs
        .iter()
        .chain(du.reg_uses.iter())
        .all(|r| (r.id.is_gpr() || r.id == RegId::Rsp) && !r.high8 && r.id != RegId::Rip)
    {
        return false;
    }
    for op in &insn.operands {
        match op {
            Operand::Imm(_) => {}
            Operand::Reg(r) => {
                if !(usable_reg(*r) || r.id == RegId::Rsp) {
                    return false;
                }
            }
            Operand::Mem(m) => {
                if m.is_rip_relative() || m.disp.constant().is_none() {
                    return false;
                }
                if !m.regs_used().all(|r| usable_reg(r) || r.id == RegId::Rsp) {
                    return false;
                }
            }
            Operand::Label(_) | Operand::IndirectReg(_) | Operand::IndirectMem(_) => return false,
        }
    }
    // The cost model needs a length for original and candidate alike.
    encoded_length(insn, BranchForm::Rel32).is_ok()
}

/// Are the flags this window may leave behind provably dead?
///
/// `window_flags` is the set of flags any window instruction defines or
/// undefines — a candidate may set exactly those differently (a mov-only
/// window touches none and is trivially safe). Forward scan from
/// `start_pos` (index into `entries`): a flag is *unresolved* until some
/// instruction defines (or re-undefines) it. Any read of an unresolved
/// flag, any label (someone may branch here and the fallthrough path still
/// carries our flags), or any control flow other than `ret` while flags
/// are unresolved makes the window ineligible.
fn flags_dead_after(entries: &[(EntryId, &Entry)], start_pos: usize, window_flags: Flags) -> bool {
    let mut unresolved = window_flags;
    if unresolved.is_empty() {
        return true;
    }
    for (_, entry) in &entries[start_pos..] {
        match entry {
            Entry::Label(_) => return false,
            Entry::Directive(_) => {}
            Entry::Insn(insn) => {
                // Non-x86 instructions never appear here (the pass is
                // registered x86-only), but be conservative regardless.
                let Some(insn) = insn.x86() else { return false };
                let du = def_use(insn);
                if du.flags_use.intersects(unresolved) {
                    return false;
                }
                if insn.mnemonic.is_control_flow() {
                    // `ret`: flags are dead across function return per the
                    // SysV ABI. Anything else propagates them to a target
                    // we are not scanning — conservative no.
                    return insn.mnemonic == Mnemonic::Ret;
                }
                unresolved = unresolved & !(du.flags_def | du.flags_undef);
                if unresolved.is_empty() {
                    return true;
                }
            }
        }
    }
    // Fell off the end of the function: nothing read them.
    true
}

/// Extract non-overlapping windows of `min..=max` instructions from
/// `function`. Maximal eligible runs are chunked greedily front-to-back, so
/// the same unit always yields the same windows.
pub fn extract_windows(unit: &MaoUnit, function: &Function, min: usize, max: usize) -> Vec<Window> {
    debug_assert!(min >= 1 && min <= max);
    let entries: Vec<(EntryId, &Entry)> = function
        .entry_ids()
        .map(|id| (id, unit.entry(id)))
        .collect();
    let mut windows = Vec::new();
    let mut run_start = 0usize;
    let mut pos = 0usize;
    while pos <= entries.len() {
        let breaks = match entries.get(pos) {
            None => true,
            Some((_, Entry::Insn(insn))) => !insn.x86().is_some_and(eligible),
            Some(_) => true,
        };
        if breaks {
            chunk_run(&entries, run_start, pos, min, max, &mut windows);
            run_start = pos + 1;
        }
        pos += 1;
    }
    windows
}

/// Flags any instruction in `slice` defines or undefines.
fn defined_flags(slice: &[(EntryId, &Entry)]) -> Flags {
    slice
        .iter()
        .fold(Flags::NONE, |acc, (_, e)| match e.insn() {
            Some(insn) => {
                let du = def_use(insn);
                acc | du.flags_def | du.flags_undef
            }
            None => acc,
        })
}

/// Chunk one maximal run `entries[start..end]` into non-overlapping
/// windows. At each position the longest flags-safe window wins; when even
/// the shortest fails the start slides forward by one (a later window may
/// end before a flag-resolving `cmp` inside the run).
fn chunk_run(
    entries: &[(EntryId, &Entry)],
    start: usize,
    end: usize,
    min: usize,
    max: usize,
    out: &mut Vec<Window>,
) {
    let mut at = start;
    while end - at >= min {
        let longest = (end - at).min(max);
        let mut taken = 0;
        for len in (min..=longest).rev() {
            let slice = &entries[at..at + len];
            if flags_dead_after(entries, at + len, defined_flags(slice)) {
                out.push(Window {
                    ids: slice.iter().map(|(id, _)| *id).collect(),
                    insns: slice
                        .iter()
                        .map(|(_, e)| e.insn().expect("run contains only insns").clone())
                        .collect(),
                });
                taken = len;
                break;
            }
        }
        at += taken.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows_of(text: &str, min: usize, max: usize) -> Vec<Window> {
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions_cached()[0].clone();
        extract_windows(&unit, &f, min, max)
    }

    const HEADER: &str = ".type f, @function\nf:\n";

    #[test]
    fn straight_line_tail_is_a_window() {
        let w = windows_of(
            &format!("{HEADER}\tmovq %rdi, %rax\n\tmovq %rax, %rbx\n\tmovq %rbx, %rax\n\tret\n"),
            3,
            8,
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].insns.len(), 3);
    }

    #[test]
    fn labels_break_windows() {
        let w = windows_of(
            &format!(
                "{HEADER}\tmovq %rdi, %rax\n.L1:\n\tmovq %rax, %rbx\n\tmovq %rbx, %rax\n\tret\n"
            ),
            3,
            8,
        );
        assert!(w.is_empty(), "label splits the run below min size");
    }

    #[test]
    fn calls_break_windows() {
        let w = windows_of(
            &format!("{HEADER}\tmovq %rdi, %rax\n\tcall g\n\tmovq %rax, %rbx\n\tret\n"),
            2,
            8,
        );
        assert!(w.is_empty());
    }

    #[test]
    fn flag_reader_after_window_excludes_it() {
        // The window's `addq` sets flags that the `jne` reads.
        let w = windows_of(
            &format!(
                "{HEADER}\tmovq %rdi, %rax\n\tmovq %rsi, %rbx\n\taddq %rbx, %rax\n\tjne .L2\n.L2:\n\tret\n"
            ),
            3,
            8,
        );
        assert!(w.is_empty(), "jne consumes window flags");
    }

    #[test]
    fn flag_redefinition_between_resolves() {
        // `cmpq` fully redefines the flags before the `jne`, so the window
        // preceding it is safe.
        let w = windows_of(
            &format!(
                "{HEADER}\tmovq %rdi, %rax\n\tmovq %rsi, %rbx\n\taddq %rbx, %rax\n\tcmpq $0, %rax\n\tjne .L2\n.L2:\n\tret\n"
            ),
            3,
            3,
        );
        assert_eq!(w.len(), 1, "cmp kills the window's flags before the jne");
        assert_eq!(w[0].insns.len(), 3);
    }

    #[test]
    fn rsp_writes_are_ineligible() {
        let w = windows_of(
            &format!("{HEADER}\tsubq $8, %rsp\n\tmovq %rdi, %rax\n\taddq $8, %rsp\n\tret\n"),
            1,
            8,
        );
        assert_eq!(w.len(), 1, "only the rsp-free middle mov survives");
        assert_eq!(w[0].insns.len(), 1);
    }

    #[test]
    fn rsp_relative_loads_are_eligible() {
        let w = windows_of(
            &format!("{HEADER}\tmovq 24(%rsp), %rax\n\tmovq %rax, %rbx\n\tret\n"),
            2,
            8,
        );
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn symbolic_mem_is_ineligible() {
        let w = windows_of(
            &format!("{HEADER}\tmovq counter(%rip), %rax\n\tmovq %rax, %rbx\n\tret\n"),
            2,
            8,
        );
        assert!(w.is_empty());
    }

    #[test]
    fn long_runs_chunk_without_overlap() {
        let body: String = (0..7).map(|_| "\tmovq %rdi, %rax\n").collect();
        let w = windows_of(&format!("{HEADER}{body}\tret\n"), 3, 4);
        assert_eq!(w.len(), 2, "7 insns chunk as 4 + 3");
        assert_eq!(w[0].insns.len(), 4);
        assert_eq!(w[1].insns.len(), 3);
        let mut all: Vec<EntryId> = w.iter().flat_map(|w| w.ids.clone()).collect();
        let n = all.len();
        all.dedup();
        assert_eq!(all.len(), n, "no id appears in two windows");
    }
}
