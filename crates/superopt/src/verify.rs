//! Two-phase equivalence verification for candidate rewrites.
//!
//! A candidate replaces a window only if it is observationally equivalent
//! on every architectural channel the rest of the function could read:
//! all 16 GPRs, every byte of memory either side stores, and flag
//! discipline (flags themselves are excluded — window extraction already
//! proved the window's flags dead at exit).
//!
//! **Phase 1 — differential filter.** Original and candidate are wrapped
//! in a synthetic harness function and executed on N seeded-random machine
//! states via `mao_sim::run_observed_init`; return value and the full GPR
//! file must agree on every state. This is the cheap filter that kills
//! almost all wrong candidates (no per-instruction observation, no memory
//! tracking).
//!
//! **Phase 2 — the mao-check oracle.** Survivors run under the full
//! `mao_sim::oracle` observation (`%rax` + callee-saved registers, memory
//! readback over the union of store addresses, undefined-flag-read
//! discipline) on the same states. The harness *spills every window
//! register to memory* before returning, which promotes caller-saved
//! scratch registers into the oracle's observable set — the oracle alone
//! only compares callee-saved state, but a window's `%rcx` result may be
//! read by the very next instruction.
//!
//! Register and memory state are seeded through the machine-init hook
//! (not `movabs` preambles), so each side parses and loads one program
//! and reruns it per state.

use std::fmt::Write as _;

use mao::MaoUnit;
use mao_sim::oracle::{compare, observe_program, Observation};
use mao_sim::{run_observed_init, Machine, Program};
use mao_x86::operand::{Mem, Operand};
use mao_x86::{Instruction, RegId, Width};
use rand::rngs::StdRng;
use rand::RngExt;

/// Where the harness spills window registers: its own page, away from the
/// simulator's text (0x40_0000), data (0x1000_0000), and stack
/// (0x7fff_ff00) regions.
const SPILL_BASE: u64 = 0x2000_0000;

/// Instruction budget per harness run. A window is at most 8 instructions
/// and the spill tail at most 15 + `ret`.
const HARNESS_BUDGET: u64 = 256;

/// One sampled machine state: a value per pool register plus a value per
/// seeded memory operand.
#[derive(Debug, Clone)]
struct State {
    regs: Vec<u64>,
    mem_vals: Vec<u64>,
}

/// Why a candidate was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// Failed the phase-1 differential filter.
    Diff(String),
    /// Passed phase 1 but the full oracle found a divergence.
    Oracle(String),
    /// Could not be built into a runnable harness (unparseable emission,
    /// registers or memory operands outside the original window's set).
    Unusable(String),
}

/// A verifier for one window (in canonical register space): precomputes
/// the original's behavior on every sampled state so each candidate costs
/// one parse/load plus `2 × states` simulator runs.
pub struct Verifier {
    /// Distinct non-`%rsp` registers of the original window.
    pool: Vec<RegId>,
    /// Distinct memory operands of the original window (seed targets).
    mems: Vec<Mem>,
    states: Vec<State>,
    orig_results: Vec<(u64, [u64; 16])>,
    orig_observations: Vec<Observation>,
}

/// Distinct register ids an instruction sequence mentions (excluding the
/// pinned `%rsp`), in first-appearance order.
pub fn window_regs(insns: &[Instruction]) -> Vec<RegId> {
    let mut out = Vec::new();
    let mut push = |id: RegId| {
        if id != RegId::Rsp && !out.contains(&id) {
            out.push(id);
        }
    };
    for insn in insns {
        for op in &insn.operands {
            match op {
                Operand::Reg(r) | Operand::IndirectReg(r) => push(r.id),
                Operand::Mem(m) | Operand::IndirectMem(m) => {
                    for r in m.regs_used() {
                        push(r.id);
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Distinct memory operands of an instruction sequence, in order.
pub fn window_mems(insns: &[Instruction]) -> Vec<Mem> {
    let mut out: Vec<Mem> = Vec::new();
    for insn in insns {
        for op in &insn.operands {
            if let Operand::Mem(m) = op {
                if !out.contains(m) {
                    out.push(m.clone());
                }
            }
        }
    }
    out
}

/// Build the harness: the window body, then a spill of every pool register
/// to a fixed absolute slot, then `ret`.
fn harness_text(body: &[Instruction], pool: &[RegId]) -> String {
    let mut t = String::from(".text\n.type w, @function\nw:\n");
    for insn in body {
        let _ = writeln!(t, "\t{insn}");
    }
    for (k, r) in pool.iter().enumerate() {
        let _ = writeln!(
            t,
            "\tmovq %{}, {}",
            mao_x86::Reg::q(*r).att_name(),
            SPILL_BASE + 8 * k as u64
        );
    }
    t.push_str("\tret\n");
    t
}

/// Effective address of `m` under the machine's current register values.
fn mem_addr(m: &Mem, machine: &Machine) -> u64 {
    let reg_val = |r: &mao_x86::Reg| {
        let v = machine.gpr[r.id.encoding() as usize];
        match r.width {
            Width::B4 => v & 0xffff_ffff,
            Width::B2 => v & 0xffff,
            Width::B1 => v & 0xff,
            _ => v,
        }
    };
    let mut addr = m.disp.constant().unwrap_or(0) as u64;
    if let Some(b) = &m.base {
        addr = addr.wrapping_add(reg_val(b));
    }
    if let Some(i) = &m.index {
        addr = addr.wrapping_add(reg_val(i).wrapping_mul(u64::from(m.scale.max(1))));
    }
    addr
}

/// Draw one biased-random 64-bit value: boundary values are
/// disproportionately likely because they are where wrong rewrites
/// actually diverge (carries, sign bits, zero identities).
fn interesting_u64(rng: &mut StdRng) -> u64 {
    match rng.random_range(0..8u32) {
        0 => 0,
        1 => 1,
        2 => u64::MAX,
        3 => rng.random_range(0..256u64),
        4 => 0x8000_0000_0000_0000 | rng.random_range(0..256u64),
        5 => 0x7fff_ffff,
        6 => 0xffff_ffff,
        _ => rng.random(),
    }
}

impl Verifier {
    /// Build a verifier for `original` (canonical space), sampling
    /// `diff_states` machine states from `rng`. `Err` when the original
    /// itself cannot be harnessed — the caller skips the window.
    pub fn new(
        original: &[Instruction],
        diff_states: usize,
        rng: &mut StdRng,
    ) -> Result<Verifier, String> {
        let pool = window_regs(original);
        let mems = window_mems(original);
        let states: Vec<State> = (0..diff_states.max(1))
            .map(|_| State {
                regs: pool.iter().map(|_| interesting_u64(rng)).collect(),
                mem_vals: mems.iter().map(|_| rng.random()).collect(),
            })
            .collect();
        let (unit, program) = load_harness(original, &pool)?;
        let mut orig_results = Vec::with_capacity(states.len());
        let mut orig_observations = Vec::with_capacity(states.len());
        for state in &states {
            let (ret, gpr) = run_state(&program, &pool, &mems, state)
                .map_err(|e| format!("original window not runnable: {e}"))?;
            orig_results.push((ret, gpr));
            orig_observations.push(observe_state(&unit, &program, &pool, &mems, state)?);
        }
        Ok(Verifier {
            pool,
            mems,
            states,
            orig_results,
            orig_observations,
        })
    }

    /// Number of sampled states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Phase 1 only: cheap differential scoring for the stochastic search.
    /// Returns the number of states on which the candidate diverges (0 =
    /// survives the filter), or `Err` when the candidate cannot run.
    pub fn diff_failures(&self, candidate: &[Instruction]) -> Result<usize, Reject> {
        let (_, program) = self.load_candidate(candidate)?;
        let mut failures = 0;
        for (state, (orig_ret, orig_gpr)) in self.states.iter().zip(&self.orig_results) {
            match run_state(&program, &self.pool, &self.mems, state) {
                Ok((ret, gpr)) if ret == *orig_ret && gpr == *orig_gpr => {}
                _ => failures += 1,
            }
        }
        Ok(failures)
    }

    /// Full two-phase verification. `Ok(())` means the candidate agreed
    /// with the original on every sampled state under both the fast filter
    /// and the complete oracle.
    pub fn verify(&self, candidate: &[Instruction]) -> Result<(), Reject> {
        let (unit, program) = self.load_candidate(candidate)?;
        // Phase 1: return value + full GPR file.
        for (state, (orig_ret, orig_gpr)) in self.states.iter().zip(&self.orig_results) {
            match run_state(&program, &self.pool, &self.mems, state) {
                Ok((ret, gpr)) => {
                    if ret != *orig_ret {
                        return Err(Reject::Diff(format!(
                            "return value differs: {orig_ret:#x} -> {ret:#x}"
                        )));
                    }
                    if gpr != *orig_gpr {
                        let k = (0..16).find(|&k| gpr[k] != orig_gpr[k]).unwrap();
                        return Err(Reject::Diff(format!(
                            "gpr[{k}] differs: {:#x} -> {:#x}",
                            orig_gpr[k], gpr[k]
                        )));
                    }
                }
                Err(e) => return Err(Reject::Diff(format!("candidate faulted: {e}"))),
            }
        }
        // Phase 2: the full oracle (memory readback, flag discipline).
        for (state, orig_obs) in self.states.iter().zip(&self.orig_observations) {
            let cand_obs = observe_state(&unit, &program, &self.pool, &self.mems, state)
                .map_err(Reject::Unusable)?;
            if let Some(divergence) = compare(orig_obs, &cand_obs) {
                return Err(Reject::Oracle(divergence));
            }
        }
        Ok(())
    }

    /// Parse and load a candidate harness, enforcing the closed-world
    /// restriction: candidates may only touch the original's registers and
    /// memory operands (anything else escapes the sampled state space).
    fn load_candidate(&self, candidate: &[Instruction]) -> Result<(MaoUnit, Program), Reject> {
        for id in window_regs(candidate) {
            if !self.pool.contains(&id) {
                return Err(Reject::Unusable(format!(
                    "candidate uses register {id:?} outside the window's set"
                )));
            }
        }
        for m in window_mems(candidate) {
            if !self.mems.contains(&m) {
                return Err(Reject::Unusable(format!(
                    "candidate uses memory operand {m} outside the window's set"
                )));
            }
        }
        load_harness(candidate, &self.pool).map_err(Reject::Unusable)
    }
}

/// Parse + load one harness program.
fn load_harness(body: &[Instruction], pool: &[RegId]) -> Result<(MaoUnit, Program), String> {
    let text = harness_text(body, pool);
    let unit = MaoUnit::parse(&text).map_err(|e| format!("harness parse: {e}"))?;
    let program = Program::load(&unit).map_err(|e| format!("harness load: {e}"))?;
    Ok((unit, program))
}

/// The init hook shared by both phases: set every pool register, then seed
/// every memory operand (address computed under the just-set registers)
/// with its per-state value.
fn seed_machine(machine: &mut Machine, pool: &[RegId], mems: &[Mem], state: &State) {
    for (r, v) in pool.iter().zip(&state.regs) {
        machine.gpr[r.encoding() as usize] = *v;
    }
    for (m, v) in mems.iter().zip(&state.mem_vals) {
        let addr = mem_addr(m, machine);
        machine.mem.write(addr, *v, 8);
    }
}

/// Phase-1 run: returns `(ret, gpr)` after the harness finishes.
fn run_state(
    program: &Program,
    pool: &[RegId],
    mems: &[Mem],
    state: &State,
) -> Result<(u64, [u64; 16]), String> {
    let outcome = run_observed_init(
        program,
        "w",
        &[],
        HARNESS_BUDGET,
        |m| seed_machine(m, pool, mems, state),
        |_| {},
    )
    .map_err(|e| format!("entry: {e}"))?;
    match outcome.result {
        Ok((ret, _)) => Ok((ret, outcome.machine.gpr)),
        Err(e) => Err(format!("run: {e}")),
    }
}

/// Phase-2 run: full oracle observation under the same seeding.
fn observe_state(
    unit: &MaoUnit,
    program: &Program,
    pool: &[RegId],
    mems: &[Mem],
    state: &State,
) -> Result<Observation, String> {
    observe_program(unit, program, "w", &[], HARNESS_BUDGET, |m| {
        seed_machine(m, pool, mems, state)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn insns(lines: &str) -> Vec<Instruction> {
        let text: String = lines.lines().map(|l| format!("\t{}\n", l.trim())).collect();
        let unit = MaoUnit::parse(&text).unwrap();
        unit.entries()
            .iter()
            .filter_map(|e| e.insn().cloned())
            .collect()
    }

    fn verifier(orig: &str) -> Verifier {
        let mut rng = StdRng::seed_from_u64(7);
        Verifier::new(&insns(orig), 6, &mut rng).unwrap()
    }

    #[test]
    fn mov_roundtrip_tail_equals_single_mov() {
        // mov a,b ; mov b,a — the second mov is redundant.
        let v = verifier("movq %rax, %rcx\nmovq %rcx, %rax");
        assert_eq!(v.verify(&insns("movq %rax, %rcx")), Ok(()));
    }

    #[test]
    fn dropping_a_live_write_is_rejected() {
        let v = verifier("movq %rax, %rcx\nmovq %rcx, %rax");
        let r = v.verify(&insns("nop"));
        assert!(
            matches!(r, Err(Reject::Unusable(_)) | Err(Reject::Diff(_))),
            "{r:?}"
        );
    }

    #[test]
    fn wrong_constant_fold_is_rejected() {
        let v = verifier("addq $1, %rax\naddq $2, %rax");
        assert_eq!(v.verify(&insns("addq $3, %rax")), Ok(()));
        assert!(matches!(
            v.verify(&insns("addq $4, %rax")),
            Err(Reject::Diff(_))
        ));
    }

    #[test]
    fn dropped_store_is_rejected_by_the_oracle_or_filter() {
        // A store to memory then a load back into the same register: the
        // register file looks identical if the store is dropped (the load
        // reads the seeded value instead) — only the oracle's memory
        // readback or seeded divergence catches it.
        let v = verifier("movq %rax, 8(%rcx)\nmovq 8(%rcx), %rdx");
        let r = v.verify(&insns("movq %rax, %rdx"));
        assert!(matches!(r, Err(Reject::Oracle(_))), "{r:?}");
    }

    #[test]
    fn scratch_register_results_are_observable() {
        // %rcx is caller-saved; the plain oracle would not see it, but the
        // spill tail makes it observable.
        let v = verifier("movq %rax, %rcx\naddq $1, %rcx");
        let r = v.verify(&insns("movq %rax, %rcx"));
        assert!(matches!(r, Err(Reject::Diff(_))), "{r:?}");
    }

    #[test]
    fn register_outside_window_set_is_unusable() {
        let v = verifier("movq %rax, %rcx");
        let r = v.verify(&insns("movq %rax, %rdx\nmovq %rax, %rcx"));
        assert!(matches!(r, Err(Reject::Unusable(_))), "{r:?}");
    }

    #[test]
    fn deterministic_states_for_equal_seeds() {
        let w = insns("addq %rcx, %rax\nsubq %rcx, %rax");
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let va = Verifier::new(&w, 4, &mut a).unwrap();
        let vb = Verifier::new(&w, 4, &mut b).unwrap();
        assert_eq!(va.orig_results, vb.orig_results);
    }
}
