//! The persistent learned-rewrite cache.
//!
//! Discovered rewrites are expensive (hundreds of simulator runs per
//! window) but reusable forever: a rewrite is keyed by the canonicalized
//! window hash, so every function — in this run, a warm rerun, or another
//! maod shard sharing the directory — that contains a register-renamed
//! copy of the same window applies it at pattern-pass speed. Negative
//! results are cached too ("searched, nothing cheaper"), which is what
//! makes warm runs skip the search entirely.
//!
//! The on-disk format follows `crates/serve/src/disk_cache.rs`: one file
//! per 128-bit key, magic + format-version stamp, explicit lengths, an
//! FNV-1a body checksum, atomic `.tmp-<pid>-<n>` + rename writes.
//! Truncated, bit-flipped, stale, or misnamed files fail decode and are
//! evicted, never served. Rewrites are stored as canonical AT&T text and
//! reparsed on load — and every cache hit is still re-verified against
//! the window before being applied, so a corrupted-but-well-formed entry
//! can degrade performance, never correctness.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mao::MaoUnit;
use mao_x86::Instruction;

/// Bumped whenever the entry encoding or the meaning of a cached rewrite
/// changes; entries with any other version are evicted on contact.
pub const REWRITE_FORMAT_VERSION: u32 = 1;

/// 8-byte file magic ("MAO Superopt Rewrite").
const MAGIC: &[u8; 8] = b"MAOSR\0\0\x01";

/// Entry file extension.
const EXT: &str = "msr";

/// What the cache knows about one canonical window.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedResult {
    /// A verified, strictly cheaper replacement (canonical register
    /// space).
    Rewrite(Vec<Instruction>),
    /// The search ran to completion and found nothing cheaper.
    NoImprovement,
}

/// Cumulative counters for one cache instance.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheStats {
    /// Lookups answered (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Corrupt or stale disk entries evicted instead of served.
    pub corrupt: u64,
}

/// Two-tier rewrite store: an in-memory map always, a shared directory
/// when configured.
pub struct RewriteCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u128, CachedResult>>,
    stats: Mutex<CacheStats>,
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl RewriteCache {
    /// In-memory only (the default for one-shot pipeline runs).
    pub fn in_memory() -> RewriteCache {
        RewriteCache {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Backed by `dir` (created if missing); entries persist across runs
    /// and may be shared between processes.
    pub fn persistent(dir: impl Into<PathBuf>) -> std::io::Result<RewriteCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RewriteCache {
            dir: Some(dir),
            mem: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        })
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().unwrap()
    }

    /// Number of entries reachable from memory (loaded or stored this
    /// run).
    pub fn resident(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    /// Look up a canonical window key.
    pub fn load(&self, key: u128) -> Option<CachedResult> {
        if let Some(hit) = self.mem.lock().unwrap().get(&key).cloned() {
            self.stats.lock().unwrap().hits += 1;
            return Some(hit);
        }
        if let Some(dir) = &self.dir {
            let path = entry_path(dir, key);
            if let Ok(bytes) = std::fs::read(&path) {
                match decode_entry(&bytes, key) {
                    Ok(result) => {
                        self.mem.lock().unwrap().insert(key, result.clone());
                        self.stats.lock().unwrap().hits += 1;
                        return Some(result);
                    }
                    Err(_) => {
                        // Evicted, never served.
                        let _ = std::fs::remove_file(&path);
                        self.stats.lock().unwrap().corrupt += 1;
                    }
                }
            }
        }
        self.stats.lock().unwrap().misses += 1;
        None
    }

    /// Record a search result.
    pub fn store(&self, key: u128, result: &CachedResult) {
        self.mem.lock().unwrap().insert(key, result.clone());
        if let Some(dir) = &self.dir {
            let bytes = encode_entry(key, result);
            let _ = write_atomic(dir, key, &bytes);
        }
    }
}

fn entry_path(dir: &Path, key: u128) -> PathBuf {
    dir.join(format!("{key:032x}.{EXT}"))
}

/// FNV-1a over the body (the disk-cache checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize: magic, version, key, body length, body, checksum. Body is a
/// kind byte plus the rewrite's canonical AT&T text.
fn encode_entry(key: u128, result: &CachedResult) -> Vec<u8> {
    let mut body = Vec::new();
    match result {
        CachedResult::NoImprovement => body.push(0u8),
        CachedResult::Rewrite(insns) => {
            body.push(1u8);
            let mut text = String::new();
            for insn in insns {
                let _ = writeln!(text, "\t{insn}");
            }
            body.extend_from_slice(&(text.len() as u64).to_le_bytes());
            body.extend_from_slice(text.as_bytes());
        }
    }
    let mut out = Vec::with_capacity(body.len() + 44);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&REWRITE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out
}

/// Decode and validate one entry file.
fn decode_entry(bytes: &[u8], expected_key: u128) -> Result<CachedResult, String> {
    let take = |at: usize, n: usize| -> Result<&[u8], String> {
        bytes.get(at..at + n).ok_or_else(|| "truncated".to_string())
    };
    if take(0, 8)? != MAGIC {
        return Err("bad magic".into());
    }
    let version = u32::from_le_bytes(take(8, 4)?.try_into().unwrap());
    if version != REWRITE_FORMAT_VERSION {
        return Err(format!("stale version {version}"));
    }
    let key = u128::from_le_bytes(take(12, 16)?.try_into().unwrap());
    if key != expected_key {
        return Err("key mismatch (misnamed file)".into());
    }
    let body_len = u64::from_le_bytes(take(28, 8)?.try_into().unwrap()) as usize;
    let body = take(36, body_len)?;
    let checksum = u64::from_le_bytes(take(36 + body_len, 8)?.try_into().unwrap());
    if checksum != fnv1a(body) {
        return Err("checksum mismatch".into());
    }
    match body.first() {
        Some(0) => Ok(CachedResult::NoImprovement),
        Some(1) => {
            let text_len =
                u64::from_le_bytes(body.get(1..9).ok_or("truncated body")?.try_into().unwrap())
                    as usize;
            let text = std::str::from_utf8(body.get(9..9 + text_len).ok_or("truncated text")?)
                .map_err(|_| "non-utf8 rewrite text".to_string())?;
            let unit = MaoUnit::parse(text).map_err(|e| format!("unparseable rewrite: {e}"))?;
            let insns: Vec<Instruction> = unit
                .entries()
                .iter()
                .filter_map(|e| e.insn().cloned())
                .collect();
            Ok(CachedResult::Rewrite(insns))
        }
        _ => Err("unknown entry kind".into()),
    }
}

/// Atomic write: `.tmp-<pid>-<seq>` sibling, then rename into place.
fn write_atomic(dir: &Path, key: u128, bytes: &[u8]) -> std::io::Result<()> {
    let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".tmp-{}-{n}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        std::fs::rename(&tmp, entry_path(dir, key))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insns(lines: &str) -> Vec<Instruction> {
        let text: String = lines.lines().map(|l| format!("\t{}\n", l.trim())).collect();
        let unit = MaoUnit::parse(&text).unwrap();
        unit.entries()
            .iter()
            .filter_map(|e| e.insn().cloned())
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("mao-superopt-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_roundtrip() {
        let c = RewriteCache::in_memory();
        assert_eq!(c.load(7), None);
        c.store(7, &CachedResult::Rewrite(insns("movq %rax, %rcx")));
        assert_eq!(
            c.load(7),
            Some(CachedResult::Rewrite(insns("movq %rax, %rcx")))
        );
        c.store(9, &CachedResult::NoImprovement);
        assert_eq!(c.load(9), Some(CachedResult::NoImprovement));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn disk_roundtrip_across_instances() {
        let dir = tmpdir("roundtrip");
        let key = 0xdead_beef_u128;
        {
            let c = RewriteCache::persistent(&dir).unwrap();
            c.store(key, &CachedResult::Rewrite(insns("leaq 4(%rax), %rcx")));
        }
        let c2 = RewriteCache::persistent(&dir).unwrap();
        assert_eq!(
            c2.load(key),
            Some(CachedResult::Rewrite(insns("leaq 4(%rax), %rcx")))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_evicted_never_served() {
        let dir = tmpdir("corrupt");
        let key = 41u128;
        let c = RewriteCache::persistent(&dir).unwrap();
        c.store(key, &CachedResult::Rewrite(insns("movq %rax, %rcx")));
        // Flip a byte in the body on disk, then read through a fresh
        // instance (the first one would answer from memory).
        let path = entry_path(&dir, key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 9;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let c2 = RewriteCache::persistent(&dir).unwrap();
        assert_eq!(c2.load(key), None);
        assert!(!path.exists(), "corrupt entry deleted");
        assert_eq!(c2.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_is_evicted() {
        let dir = tmpdir("stale");
        let key = 43u128;
        let c = RewriteCache::persistent(&dir).unwrap();
        c.store(key, &CachedResult::NoImprovement);
        let path = entry_path(&dir, key);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xfe; // version field
        std::fs::write(&path, &bytes).unwrap();
        let c2 = RewriteCache::persistent(&dir).unwrap();
        assert_eq!(c2.load(key), None);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
