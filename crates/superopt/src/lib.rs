//! `mao-superopt` — a search-based superoptimizer pass with `mao-sim` as
//! the equivalence oracle and a persistent learned-rewrite cache.
//!
//! The pattern passes in `crates/core` remove inefficiencies someone
//! anticipated; `SUPEROPT` searches for ones nobody did. Per window:
//!
//! 1. **Extract** short straight-line windows (no labels, calls, or
//!    barriers; flags provably dead at exit) — `window.rs`.
//! 2. **Canonicalize** into window-normal form (registers renamed by first
//!    appearance, immediates concrete) and hash to a 128-bit cache key —
//!    `canon.rs`.
//! 3. **Consult the learned-rewrite cache**; a hit skips the search
//!    entirely (negative results are cached too) — `cache.rs`.
//! 4. **Search** for a strictly cheaper equivalent: subsequence + template
//!    enumeration for small windows, Metropolis for large — `search.rs`.
//! 5. **Verify two-phase**: seeded-random differential execution, then the
//!    full mao-check oracle. Cache hits are *re-verified* before
//!    application — nothing unverified ever reaches output — `verify.rs`.
//! 6. **Apply** after renaming back through the window's register binding.
//!
//! The pass registers itself through `mao::pass::register_extension` (it
//! sits above `mao-sim` in the dependency graph, so it cannot appear in
//! the static registry), and is deterministic for a given `seed[N]` at any
//! `--jobs N`: each window's RNG is seeded from `seed ^ window key`,
//! independent of scan order.

use std::sync::Mutex;

use mao::pass::{register_extension, run_functions, MaoPass, PassContext, PassError, PassStats};
use mao::{EditSet, MaoUnit};
use mao_asm::Entry;
use mao_obs::TraceEvent;
use mao_x86::{Instruction, Operand, Reg, Width};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod cache;
pub mod canon;
pub mod search;
pub mod verify;
pub mod window;

pub use cache::{CachedResult, RewriteCache};
pub use canon::{canonicalize, decanonicalize, CanonWindow};
pub use search::{cost, search, SearchCfg, SearchCounters};
pub use verify::{Reject, Verifier};
pub use window::{extract_windows, Window};

/// Registry name of the pass.
pub const PASS_NAME: &str = "SUPEROPT";

/// Register `SUPEROPT` in the global pass registry, declared x86-only —
/// the rewrite windows, the cost model, and the simulator oracle are all
/// x86 constructs. Idempotent; every entry point that may run the pass
/// (the CLI, the checker's path runner, tests) calls this once at startup.
pub fn register() {
    register_extension(PASS_NAME, &[mao::isa::IsaId::X86_64], || {
        Box::<SuperoptPass>::default()
    });
}

/// Knobs, parsed from the invocation options.
#[derive(Debug, Clone)]
pub struct SuperoptOptions {
    /// Master seed for all stochastic search and state sampling.
    pub seed: u64,
    /// Smallest window considered.
    pub min_window: usize,
    /// Largest window considered.
    pub max_window: usize,
    /// Random machine states per verification.
    pub diff_states: usize,
    /// Search budgets.
    pub search: SearchCfg,
    /// Persistent cache directory (in-memory per invocation when absent).
    pub cache_dir: Option<String>,
    /// Fault-injection self-test: try a deliberately wrong rewrite per
    /// window and require the verifier to reject it.
    pub inject_bogus: bool,
}

impl SuperoptOptions {
    /// Read the options from a pass invocation
    /// (`SUPEROPT=seed[42],max-window[6],cache-dir[/path]`).
    pub fn from_pass_options(o: &mao::pass::PassOptions) -> SuperoptOptions {
        let defaults = SearchCfg::default();
        SuperoptOptions {
            seed: o.get_u64("seed", 0),
            min_window: o.get_u64("min-window", 3) as usize,
            max_window: o.get_u64("max-window", 8) as usize,
            diff_states: o.get_u64("diff-states", 5) as usize,
            search: SearchCfg {
                enum_max: o.get_u64("enum-max", defaults.enum_max as u64) as usize,
                iters: o.get_u64("iters", defaults.iters),
                max_candidates: o.get_u64("max-candidates", defaults.max_candidates),
            },
            cache_dir: o.get("cache-dir").map(str::to_string),
            inject_bogus: o.has("inject-bogus-rewrite"),
        }
    }
}

/// The `SUPEROPT` pass.
#[derive(Debug, Default)]
pub struct SuperoptPass;

impl MaoPass for SuperoptPass {
    fn name(&self) -> &'static str {
        PASS_NAME
    }

    fn description(&self) -> &'static str {
        "search for cheaper window replacements, verified against the simulator oracle"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let opts = SuperoptOptions::from_pass_options(&ctx.options);
        if opts.min_window < 1 || opts.min_window > opts.max_window {
            return Err(PassError::BadOptions(format!(
                "SUPEROPT window bounds {}..{} are not a range",
                opts.min_window, opts.max_window
            )));
        }
        let cache = match &opts.cache_dir {
            Some(dir) => RewriteCache::persistent(dir)
                .map_err(|e| PassError::Other(format!("SUPEROPT cache-dir {dir}: {e}")))?,
            None => RewriteCache::in_memory(),
        };
        let obs = ctx.obs.clone();
        let metrics = Counters::new(&obs);
        let injection_failure: Mutex<Option<String>> = Mutex::new(None);
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let mut edits = EditSet::new();
            for w in extract_windows(unit, function, opts.min_window, opts.max_window) {
                metrics.windows.inc();
                let Some(canon) = canonicalize(&w.insns) else {
                    continue;
                };
                let mut span = mao_obs::Span::enter(&obs.recorder, "superopt", &function.name);
                span.arg("key", format!("{:032x}", canon.key));
                let mut rng = StdRng::seed_from_u64(
                    opts.seed ^ (canon.key as u64) ^ (canon.key >> 64) as u64,
                );
                let verifier = match Verifier::new(&canon.insns, opts.diff_states, &mut rng) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                if opts.inject_bogus {
                    if let Some(failure) = inject_bogus(&canon, &verifier, &metrics) {
                        *injection_failure.lock().unwrap() = Some(failure);
                    }
                }
                // A "match" is a searchable window — counted before the
                // cache lookup so stats cannot depend on which parallel
                // worker warmed a shared cache key first.
                fctx.stats.matched(1);
                let rewrite = match cache.load(canon.key) {
                    Some(CachedResult::NoImprovement) => {
                        metrics.cache_hits.inc();
                        continue;
                    }
                    Some(CachedResult::Rewrite(cached)) => {
                        metrics.cache_hits.inc();
                        // Re-verify before applying: a cache entry is a
                        // hint, never an authority.
                        match verifier.verify(&cached) {
                            Ok(()) => Some(cached),
                            Err(_) => {
                                metrics.oracle_rejects.inc();
                                run_search(&canon, &verifier, &opts, &mut rng, &cache, &metrics)
                            }
                        }
                    }
                    None => {
                        metrics.cache_misses.inc();
                        metrics.searches.inc();
                        run_search(&canon, &verifier, &opts, &mut rng, &cache, &metrics)
                    }
                };
                let Some(rewrite) = rewrite else { continue };
                let concrete = decanonicalize(&rewrite, &canon.binding);
                fctx.trace(1, || {
                    TraceEvent::new(format!(
                        "SUPEROPT: {} insns -> {} in {}",
                        w.insns.len(),
                        concrete.len(),
                        function.name
                    ))
                    .field("window", w.insns.len())
                    .field("rewrite", concrete.len())
                });
                apply_rewrite(&mut edits, &w, concrete);
                metrics.rewrites.inc();
                fctx.stats.transformed(1);
            }
            Ok(edits)
        })?;
        if let Some(failure) = injection_failure.into_inner().unwrap() {
            return Err(PassError::Other(format!(
                "SUPEROPT self-test: injected bogus rewrite was accepted: {failure}"
            )));
        }
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "SUPEROPT: {} windows, {} rewritten",
                stats.matches, stats.transformations
            ))
            .field("rewritten", stats.transformations)
        });
        Ok(stats)
    }
}

/// Search one window and record the outcome in the cache.
fn run_search(
    canon: &CanonWindow,
    verifier: &Verifier,
    opts: &SuperoptOptions,
    rng: &mut StdRng,
    cache: &RewriteCache,
    metrics: &Counters,
) -> Option<Vec<Instruction>> {
    let mut counters = SearchCounters::default();
    let found = search(&canon.insns, verifier, &opts.search, rng, &mut counters);
    metrics.candidates.add(counters.candidates);
    metrics.diff_rejects.add(counters.diff_rejects);
    metrics.oracle_rejects.add(counters.oracle_rejects);
    match &found {
        Some(rewrite) => cache.store(canon.key, &CachedResult::Rewrite(rewrite.clone())),
        None => cache.store(canon.key, &CachedResult::NoImprovement),
    }
    found
}

/// Replace the window's entries with the rewrite.
fn apply_rewrite(edits: &mut EditSet, w: &Window, concrete: Vec<Instruction>) {
    let mut entries: Vec<Entry> = concrete
        .into_iter()
        .map(|i| Entry::Insn(i.into()))
        .collect();
    if entries.is_empty() {
        edits.delete(w.ids[0]);
    } else {
        edits.replace(w.ids[0], std::mem::take(&mut entries));
    }
    for id in &w.ids[1..] {
        edits.delete(*id);
    }
}

/// Deliberately wrong rewrite for the fault-injection self-test: the
/// window plus one extra bit-flipping `not` of its first register (always
/// changes an observable register), falling back to an off-by-one
/// immediate when the window touches no registers. Returns `Some(failure)`
/// if the verifier ACCEPTED the bogus rewrite — which callers escalate to
/// a hard pass error.
fn inject_bogus(canon: &CanonWindow, verifier: &Verifier, metrics: &Counters) -> Option<String> {
    let mut bogus = canon.insns.clone();
    if let Some(&reg) = canon.binding.first().map(|_| &canon::CANON_POOL[0]) {
        bogus.push(Instruction::with_width(
            mao_x86::Mnemonic::Not,
            Width::B8,
            vec![Operand::Reg(Reg::q(reg))],
        ));
    } else {
        // Window without registers: corrupt the first immediate instead.
        let mut tweaked = false;
        'outer: for insn in &mut bogus {
            for op in &mut insn.operands {
                if let Operand::Imm(v) = op {
                    *v = v.wrapping_add(1);
                    tweaked = true;
                    break 'outer;
                }
            }
        }
        if !tweaked {
            return None; // Nothing to corrupt; skip this window.
        }
    }
    match verifier.verify(&bogus) {
        Ok(()) => Some(format!("{} insn bogus candidate", bogus.len())),
        Err(reject) => {
            match reject {
                Reject::Diff(_) => metrics.diff_rejects.inc(),
                Reject::Oracle(_) => metrics.oracle_rejects.inc(),
                Reject::Unusable(_) => {}
            }
            metrics.injected_rejected.inc();
            None
        }
    }
}

/// The pass's obs counters, resolved once per invocation.
struct Counters {
    windows: mao_obs::Counter,
    searches: mao_obs::Counter,
    candidates: mao_obs::Counter,
    cache_hits: mao_obs::Counter,
    cache_misses: mao_obs::Counter,
    diff_rejects: mao_obs::Counter,
    oracle_rejects: mao_obs::Counter,
    rewrites: mao_obs::Counter,
    injected_rejected: mao_obs::Counter,
}

impl Counters {
    fn new(obs: &mao_obs::Obs) -> Counters {
        let m = &obs.metrics;
        Counters {
            windows: m.counter("mao_superopt_windows_total"),
            searches: m.counter("mao_superopt_searches_total"),
            candidates: m.counter("mao_superopt_candidates_total"),
            cache_hits: m.counter("mao_superopt_cache_hits_total"),
            cache_misses: m.counter("mao_superopt_cache_misses_total"),
            diff_rejects: m.counter("mao_superopt_diff_rejects_total"),
            oracle_rejects: m.counter("mao_superopt_oracle_rejects_total"),
            rewrites: m.counter("mao_superopt_rewrites_total"),
            injected_rejected: m.counter("mao_superopt_injected_rejected_total"),
        }
    }
}

/// A tiny unit with a known superoptimization win: the `mov %rax,%rbx;
/// mov %rbx,%rax` round-trip tail the CI smoke stage checks for, embedded
/// in a function with a little surrounding structure.
pub const SMOKE_ASM: &str = "\
\t.text
\t.globl\tsmoke
\t.type\tsmoke, @function
smoke:
\tmovq\t%rdi, %rax
\tmovq\t%rax, %rbx
\tmovq\t%rbx, %rax
\tret
\t.size\tsmoke, .-smoke
\t.globl\tfold
\t.type\tfold, @function
fold:
\tmovq\t%rdi, %rax
\taddq\t$1, %rax
\taddq\t$2, %rax
\tret
\t.size\tfold, .-fold
";

#[cfg(test)]
mod tests {
    use super::*;
    use mao::pass::parse_invocations;

    fn run_superopt(asm: &str, options: &str) -> (MaoUnit, PassStats, mao_obs::Obs) {
        register();
        let mut unit = MaoUnit::parse(asm).unwrap();
        let invs = parse_invocations(options).unwrap();
        let obs = mao_obs::Obs::aggregating();
        let config = mao::pass::PipelineConfig::default();
        let analyses = std::sync::Arc::new(mao::AnalysisCache::default());
        let report =
            mao::pass::run_pipeline_observed(&mut unit, &invs, None, &config, &analyses, &obs)
                .unwrap();
        let stats = report.stats(PASS_NAME).unwrap().clone();
        (unit, stats, obs)
    }

    #[test]
    fn smoke_tail_is_rewritten() {
        let (unit, stats, obs) = run_superopt(SMOKE_ASM, "SUPEROPT=seed[42]");
        assert!(stats.transformations >= 1, "{stats:?}");
        let text = unit.emit();
        // The round-trip tail collapses; the function still moves %rdi
        // into both %rax and %rbx.
        assert!(
            text.matches("movq").count() < SMOKE_ASM.matches("movq").count(),
            "{text}"
        );
        assert!(obs.metrics.counter_value("mao_superopt_rewrites_total") >= 1);
        assert_eq!(
            obs.metrics.counter_value("mao_superopt_windows_total") > 0,
            true
        );
    }

    #[test]
    fn deterministic_output_across_jobs() {
        register();
        let run = |jobs: usize| {
            let mut unit = MaoUnit::parse(SMOKE_ASM).unwrap();
            let invs = parse_invocations("SUPEROPT=seed[42]").unwrap();
            let config = mao::pass::PipelineConfig { jobs };
            let analyses = std::sync::Arc::new(mao::AnalysisCache::default());
            let obs = mao_obs::Obs::off();
            mao::pass::run_pipeline_observed(&mut unit, &invs, None, &config, &analyses, &obs)
                .unwrap();
            unit.emit()
        };
        let one = run(1);
        assert_eq!(one, run(4));
        assert_eq!(one, run(8));
    }

    #[test]
    fn injected_bogus_rewrite_is_rejected() {
        let (unit, _, obs) = run_superopt(SMOKE_ASM, "SUPEROPT=seed[42],inject-bogus-rewrite");
        assert!(
            obs.metrics
                .counter_value("mao_superopt_injected_rejected_total")
                >= 1
        );
        // Output identical to the non-injected run: the bogus candidate
        // never reaches the edit stream.
        let (clean, _, _) = run_superopt(SMOKE_ASM, "SUPEROPT=seed[42]");
        assert_eq!(unit.emit(), clean.emit());
    }

    #[test]
    fn warm_cache_applies_without_searching() {
        register();
        let dir = std::env::temp_dir().join(format!("mao-superopt-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opt = format!("SUPEROPT=seed[42],cache-dir[{}]", dir.display());
        let (cold_unit, _, cold_obs) = run_superopt(SMOKE_ASM, &opt);
        let (warm_unit, _, warm_obs) = run_superopt(SMOKE_ASM, &opt);
        assert_eq!(cold_unit.emit(), warm_unit.emit(), "byte-identical output");
        assert!(
            cold_obs
                .metrics
                .counter_value("mao_superopt_searches_total")
                > 0
        );
        assert_eq!(
            warm_obs
                .metrics
                .counter_value("mao_superopt_searches_total"),
            0,
            "warm run answers every window from the cache"
        );
        assert!(
            warm_obs
                .metrics
                .counter_value("mao_superopt_cache_hits_total")
                > 0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preserves_program_semantics() {
        let (unit, _, _) = run_superopt(SMOKE_ASM, "SUPEROPT=seed[7]");
        let text = unit.emit();
        for (entry, arg, want) in [("smoke", 5u64, 5u64), ("fold", 10, 13)] {
            let orig = mao_sim::oracle::observe(SMOKE_ASM, entry, &[arg], 1000).unwrap();
            let opt = mao_sim::oracle::observe(&text, entry, &[arg], 1000).unwrap();
            assert_eq!(orig.result.as_ref().unwrap().0, want);
            assert_eq!(mao_sim::oracle::compare(&orig, &opt), None);
        }
    }
}
