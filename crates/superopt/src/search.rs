//! Candidate search: enumerative for small windows, stochastic
//! (Metropolis) for larger ones.
//!
//! The cost model ranks candidates by `Σ (latency·16 + encoded length)` —
//! the same latency numbers the mao-sim timing model charges, weighted so
//! a saved cycle always beats a saved byte, with encoded length as the
//! tiebreak (the paper's passes fight for bytes too: shorter code packs
//! more of the loop into the LSD window). Only strict improvements are
//! accepted.
//!
//! **Enumerative stage.** Every subsequence of the window (dropping
//! redundant instructions is the single most common win in compiler tails)
//! plus a curated pool of single-instruction templates over the window's
//! own registers, memory operands, and immediates (with derived constants:
//! pairwise sums/differences/products fold `add $1; add $2` into
//! `add $3`). Candidates are tested cheapest-first, so the first verified
//! win is the best this stage can produce.
//!
//! **Stochastic stage.** For windows longer than `enum_max`, a
//! Metropolis-style mutate/accept walk (delete / insert / replace / swap /
//! immediate-tweak), scored by cost plus a large penalty per differential
//! failure, with occasional uphill acceptance to escape local minima. The
//! best fully-agreeing candidate is re-verified with the complete
//! two-phase check before being returned.

use mao_x86::operand::{Mem, Operand};
use mao_x86::{encoded_length, BranchForm, Instruction, Mnemonic, Reg, RegId, Width};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::verify::{window_mems, window_regs, Reject, Verifier};

/// Search budgets and knobs (all settable through pass options).
#[derive(Debug, Clone)]
pub struct SearchCfg {
    /// Windows up to this length use only the enumerative stage.
    pub enum_max: usize,
    /// Metropolis iterations for longer windows.
    pub iters: u64,
    /// Cap on fully verified candidates per window.
    pub max_candidates: u64,
}

impl Default for SearchCfg {
    fn default() -> SearchCfg {
        SearchCfg {
            enum_max: 4,
            iters: 200,
            max_candidates: 192,
        }
    }
}

/// What one window's search did (feeds the obs counters).
#[derive(Debug, Default, Clone, Copy)]
pub struct SearchCounters {
    /// Candidates executed against the differential filter or verifier.
    pub candidates: u64,
    /// Candidates killed by the phase-1 differential filter.
    pub diff_rejects: u64,
    /// Candidates that survived phase 1 but were killed by the oracle.
    pub oracle_rejects: u64,
}

/// Cost of one instruction: modeled latency (×16, from the installed cost
/// table) plus encoded length.
pub fn insn_cost(insn: &Instruction) -> Option<u64> {
    let len = encoded_length(insn, BranchForm::Rel32).ok()? as u64;
    Some(mao_x86::cost::current().latency(insn) * 16 + len)
}

/// Cost of a candidate sequence; `None` if any instruction is unencodable.
pub fn cost(insns: &[Instruction]) -> Option<u64> {
    insns.iter().map(insn_cost).sum()
}

/// Search for a strictly cheaper, verified replacement of `window`
/// (canonical register space). Returns the replacement or `None`.
pub fn search(
    window: &[Instruction],
    verifier: &Verifier,
    cfg: &SearchCfg,
    rng: &mut StdRng,
    counters: &mut SearchCounters,
) -> Option<Vec<Instruction>> {
    let orig_cost = cost(window)?;
    let mut candidates = subsequences(window);
    candidates.extend(templates(window).into_iter().map(|t| vec![t]));
    // Cheapest first; generation order breaks ties, so the result is
    // deterministic for a given window.
    let mut priced: Vec<(u64, Vec<Instruction>)> = candidates
        .into_iter()
        .filter_map(|c| cost(&c).map(|k| (k, c)))
        .filter(|(k, _)| *k < orig_cost)
        .collect();
    priced.sort_by_key(|(k, _)| *k);
    for (_, candidate) in priced {
        if counters.candidates >= cfg.max_candidates {
            break;
        }
        counters.candidates += 1;
        match verifier.verify(&candidate) {
            Ok(()) => return Some(candidate),
            Err(Reject::Diff(_)) => counters.diff_rejects += 1,
            Err(Reject::Oracle(_)) => counters.oracle_rejects += 1,
            Err(Reject::Unusable(_)) => {}
        }
    }
    if window.len() > cfg.enum_max {
        return metropolis(window, orig_cost, verifier, cfg, rng, counters);
    }
    None
}

/// Every proper subsequence of the window (including the empty one),
/// cheapest wins later via sorting.
fn subsequences(window: &[Instruction]) -> Vec<Vec<Instruction>> {
    let l = window.len().min(8);
    let full = (1u32 << l) - 1;
    (0..full)
        .map(|mask| {
            (0..l)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| window[i].clone())
                .collect()
        })
        .collect()
}

fn reg_of(id: RegId, w: Width) -> Reg {
    match w {
        Width::B4 => Reg::l(id),
        Width::B2 => Reg::w(id),
        Width::B1 => Reg::b(id),
        // B16 never appears in eligible windows (no XMM); default to full.
        _ => Reg::q(id),
    }
}

/// Immediates appearing in the window plus derived constants (pairwise
/// sums, differences, products — the fold targets).
fn derived_imms(window: &[Instruction]) -> Vec<i64> {
    let mut base: Vec<i64> = Vec::new();
    for insn in window {
        for op in &insn.operands {
            if let Operand::Imm(v) = op {
                if !base.contains(v) {
                    base.push(*v);
                }
            }
        }
    }
    let mut out = base.clone();
    let mut push = |v: i64| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    for i in 0..base.len() {
        push(base[i].wrapping_neg());
        for j in 0..base.len() {
            push(base[i].wrapping_add(base[j]));
            push(base[i].wrapping_sub(base[j]));
            push(base[i].wrapping_mul(base[j]));
        }
    }
    out
}

/// Widths the window computes in (destination widths).
fn window_widths(window: &[Instruction]) -> Vec<Width> {
    let mut out = Vec::new();
    for insn in window {
        let w = insn.width();
        if !out.contains(&w) {
            out.push(w);
        }
    }
    out
}

/// The single-instruction template pool over the window's registers,
/// memory operands, and (derived) immediates.
fn templates(window: &[Instruction]) -> Vec<Instruction> {
    let regs = window_regs(window);
    let mems = window_mems(window);
    let imms = derived_imms(window);
    let widths = window_widths(window);
    let mut out = Vec::new();
    for &w in &widths {
        // Register-to-register moves and two-register ALU.
        for &src in &regs {
            for &dst in &regs {
                if src == dst {
                    continue;
                }
                let (s, d) = (reg_of(src, w), reg_of(dst, w));
                for m in [Mnemonic::Mov, Mnemonic::Add, Mnemonic::Sub, Mnemonic::Xor] {
                    out.push(Instruction::with_width(
                        m,
                        w,
                        vec![Operand::Reg(s), Operand::Reg(d)],
                    ));
                }
            }
        }
        for &dst in &regs {
            let d = reg_of(dst, w);
            // Immediate moves and ALU (imm32-encodable only; movabs covers
            // the 64-bit rest).
            for &v in &imms {
                if i32::try_from(v).is_ok() {
                    for m in [Mnemonic::Mov, Mnemonic::Add, Mnemonic::Sub, Mnemonic::And] {
                        out.push(Instruction::with_width(
                            m,
                            w,
                            vec![Operand::Imm(v), Operand::Reg(d)],
                        ));
                    }
                    if (1..64).contains(&v) {
                        for m in [Mnemonic::Shl, Mnemonic::Shr, Mnemonic::Sar] {
                            out.push(Instruction::with_width(
                                m,
                                w,
                                vec![Operand::Imm(v), Operand::Reg(d)],
                            ));
                        }
                    }
                } else if w == Width::B8 {
                    out.push(Instruction::with_width(
                        Mnemonic::Movabs,
                        w,
                        vec![Operand::Imm(v), Operand::Reg(d)],
                    ));
                }
            }
            // Unary rewrites.
            for m in [Mnemonic::Neg, Mnemonic::Not, Mnemonic::Inc, Mnemonic::Dec] {
                out.push(Instruction::with_width(m, w, vec![Operand::Reg(d)]));
            }
            // Loads from the window's memory operands.
            for mem in &mems {
                out.push(Instruction::with_width(
                    Mnemonic::Mov,
                    w,
                    vec![Operand::Mem(mem.clone()), Operand::Reg(d)],
                ));
            }
        }
        // Stores to the window's memory operands.
        for mem in &mems {
            for &src in &regs {
                out.push(Instruction::with_width(
                    Mnemonic::Mov,
                    w,
                    vec![Operand::Reg(reg_of(src, w)), Operand::Mem(mem.clone())],
                ));
            }
        }
    }
    // lea: base+index and base+disp address arithmetic at full width.
    for &b in &regs {
        for &dst in &regs {
            let d = Reg::q(dst);
            for &i in &regs {
                out.push(Instruction::with_width(
                    Mnemonic::Lea,
                    Width::B8,
                    vec![
                        Operand::Mem(Mem::base_index(Reg::q(b), Reg::q(i), 1, 0)),
                        Operand::Reg(d),
                    ],
                ));
            }
            for &v in &imms {
                if i32::try_from(v).is_ok() && v != 0 {
                    out.push(Instruction::with_width(
                        Mnemonic::Lea,
                        Width::B8,
                        vec![Operand::Mem(Mem::base_disp(Reg::q(b), v)), Operand::Reg(d)],
                    ));
                }
            }
        }
    }
    out
}

/// Penalty per diverging state when scoring stochastic candidates; dwarfs
/// any cost difference so correctness always dominates.
const FAIL_PENALTY: u64 = 50_000;

/// Metropolis acceptance temperature (in score units).
const TEMPERATURE: f64 = 20_000.0;

/// Stochastic mutate/accept search for windows too long to enumerate.
fn metropolis(
    window: &[Instruction],
    orig_cost: u64,
    verifier: &Verifier,
    cfg: &SearchCfg,
    rng: &mut StdRng,
    counters: &mut SearchCounters,
) -> Option<Vec<Instruction>> {
    let pool = templates(window);
    if pool.is_empty() {
        return None;
    }
    let score_of = |c: &[Instruction], counters: &mut SearchCounters| -> u64 {
        let Some(k) = cost(c) else {
            return u64::MAX / 2;
        };
        counters.candidates += 1;
        match verifier.diff_failures(c) {
            Ok(f) => {
                if f > 0 {
                    counters.diff_rejects += 1;
                }
                k + f as u64 * FAIL_PENALTY
            }
            Err(_) => u64::MAX / 2,
        }
    };
    let mut current: Vec<Instruction> = window.to_vec();
    let mut current_score = cost(window).unwrap_or(u64::MAX / 2);
    let mut best: Option<(u64, Vec<Instruction>)> = None;
    for _ in 0..cfg.iters {
        let mut next = current.clone();
        mutate(&mut next, &pool, window.len(), rng);
        let next_score = score_of(&next, counters);
        let next_cost = cost(&next).unwrap_or(u64::MAX);
        if accept_uphill(next_score, current_score, rng) {
            current = next.clone();
            current_score = next_score;
        }
        if next_score < FAIL_PENALTY && next_cost < orig_cost {
            // Fully agrees on every sampled state and is cheaper: remember
            // the best such candidate for final verification.
            if best.as_ref().map(|(c, _)| next_cost < *c).unwrap_or(true) {
                best = Some((next_cost, next));
            }
        }
    }
    let (_, candidate) = best?;
    counters.candidates += 1;
    match verifier.verify(&candidate) {
        Ok(()) => Some(candidate),
        Err(Reject::Diff(_)) => {
            counters.diff_rejects += 1;
            None
        }
        Err(Reject::Oracle(_)) => {
            counters.oracle_rejects += 1;
            None
        }
        Err(Reject::Unusable(_)) => None,
    }
}

fn accept_uphill(next: u64, current: u64, rng: &mut StdRng) -> bool {
    if next <= current {
        return true;
    }
    let delta = (next - current) as f64;
    rng.random::<f64>() < (-delta / TEMPERATURE).exp()
}

/// One random mutation: delete, insert, replace, swap, or immediate tweak.
fn mutate(c: &mut Vec<Instruction>, pool: &[Instruction], max_len: usize, rng: &mut StdRng) {
    let kind = rng.random_range(0..5u32);
    match kind {
        0 if !c.is_empty() => {
            let i = rng.random_range(0..c.len());
            c.remove(i);
        }
        1 if c.len() < max_len => {
            let t = pool[rng.random_range(0..pool.len())].clone();
            let i = rng.random_range(0..=c.len());
            c.insert(i, t);
        }
        2 if !c.is_empty() => {
            let i = rng.random_range(0..c.len());
            c[i] = pool[rng.random_range(0..pool.len())].clone();
        }
        3 if c.len() >= 2 => {
            let i = rng.random_range(0..c.len());
            let j = rng.random_range(0..c.len());
            c.swap(i, j);
        }
        _ if !c.is_empty() => {
            // Immediate tweak on a random instruction that has one.
            let i = rng.random_range(0..c.len());
            for op in &mut c[i].operands {
                if let Operand::Imm(v) = op {
                    *v = v.wrapping_add(i64::from(rng.random_range(-2..=2i32)));
                    break;
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mao::MaoUnit;
    use rand::SeedableRng;

    fn insns(lines: &str) -> Vec<Instruction> {
        let text: String = lines.lines().map(|l| format!("\t{}\n", l.trim())).collect();
        let unit = MaoUnit::parse(&text).unwrap();
        unit.entries()
            .iter()
            .filter_map(|e| e.insn().cloned())
            .collect()
    }

    fn run_search(orig: &str) -> (Option<Vec<Instruction>>, SearchCounters) {
        let w = insns(orig);
        let mut rng = StdRng::seed_from_u64(42);
        let verifier = Verifier::new(&w, 6, &mut rng).unwrap();
        let mut counters = SearchCounters::default();
        let got = search(
            &w,
            &verifier,
            &SearchCfg::default(),
            &mut rng,
            &mut counters,
        );
        (got, counters)
    }

    #[test]
    fn redundant_mov_roundtrip_is_dropped() {
        let (got, counters) = run_search("movq %rdi, %rax\nmovq %rax, %rbx\nmovq %rbx, %rax");
        let got = got.expect("a cheaper equivalent exists");
        assert!(got.len() < 3, "{got:?}");
        assert!(counters.candidates > 0);
        // The surviving sequence must still put %rdi into all three regs.
        let mut rng = StdRng::seed_from_u64(9);
        let w = insns("movq %rdi, %rax\nmovq %rax, %rbx\nmovq %rbx, %rax");
        let v = Verifier::new(&w, 8, &mut rng).unwrap();
        assert_eq!(v.verify(&got), Ok(()));
    }

    #[test]
    fn addadd_folds_to_one_add() {
        let (got, _) = run_search("addq $1, %rax\nmovq %rax, %rbx\naddq $2, %rbx");
        // Not guaranteed to find the optimal form, but dropping nothing is
        // wrong here — at minimum no *incorrect* result may come back.
        if let Some(c) = got {
            let w = insns("addq $1, %rax\nmovq %rax, %rbx\naddq $2, %rbx");
            let mut rng = StdRng::seed_from_u64(11);
            let v = Verifier::new(&w, 8, &mut rng).unwrap();
            assert_eq!(v.verify(&c), Ok(()));
        }
    }

    #[test]
    fn already_optimal_window_finds_nothing() {
        let (got, _) = run_search("movq %rdi, %rax");
        assert!(got.is_none());
    }

    #[test]
    fn search_is_deterministic() {
        let a = run_search("movq %rdi, %rax\nmovq %rax, %rbx\nmovq %rbx, %rax").0;
        let b = run_search("movq %rdi, %rax\nmovq %rax, %rbx\nmovq %rbx, %rax").0;
        assert_eq!(a, b);
    }
}
