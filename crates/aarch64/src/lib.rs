//! Minimal AArch64 ISA model: the second `Isa` instantiation.
//!
//! Deliberately small — the point is to prove the `mao-isa` trait boundary
//! carries a second architecture end to end (parse → pipeline → relax →
//! emit), not to model all of A64. The subset covers the instructions the
//! issue names (`mov`/`add`/`sub`/`ldr`/`str`/`cmp`/`b.cond`/`bl`/`ret`)
//! plus unconditional `b` and `nop` so control flow and padding exist.
//!
//! Properties the rest of the system relies on:
//!
//! * **Fixed 4-byte encodings.** Every A64 instruction is one 32-bit word,
//!   so encoded-length callbacks are constant and branch relaxation is a
//!   single fixed-point iteration (no rel8/rel32 split to solve).
//! * **NZCV effects as data.** The per-mnemonic flag/memory effects live in
//!   one const table ([`effects`]), mirroring mao-x86's generated
//!   side-effect database in miniature.
//! * **Round-trip display.** `parse_insn` and `Display` are exact inverses
//!   on the supported subset — the structural checker and the emit path
//!   depend on byte-identical round-trips.

use std::fmt;

pub use mao_x86::sym::Sym;

/// Every A64 instruction occupies exactly one 32-bit word.
pub const INSN_BYTES: u32 = 4;

/// The architectural NOP word (`d503201f`), used for alignment padding.
pub const NOP_WORD: u32 = 0xd503_201f;

// ---------------------------------------------------------------------------
// Registers
// ---------------------------------------------------------------------------

/// A general-purpose register (or SP/ZR), with operand width.
///
/// `num` is the architectural register number 0..=30, or 31 for both the
/// stack pointer and the zero register — which of the two is meant is
/// encoded by `sp`, exactly as in the ISA (the spelling `sp`/`wsp` vs
/// `xzr`/`wzr` disambiguates what the hardware infers from context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct A64Reg {
    /// Register number 0..=31.
    pub num: u8,
    /// 64-bit (`x`/`sp`) vs 32-bit (`w`/`wsp`) operand width.
    pub is64: bool,
    /// For `num == 31`: stack pointer (true) or zero register (false).
    pub sp: bool,
}

impl A64Reg {
    /// `xN` (or `sp`/`xzr` for 31).
    pub fn x(num: u8) -> A64Reg {
        A64Reg {
            num,
            is64: true,
            sp: false,
        }
    }

    /// `wN` (or `wzr` for 31).
    pub fn w(num: u8) -> A64Reg {
        A64Reg {
            num,
            is64: false,
            sp: false,
        }
    }

    /// The 64-bit stack pointer.
    pub fn sp() -> A64Reg {
        A64Reg {
            num: 31,
            is64: true,
            sp: true,
        }
    }

    /// Is this the zero register (`xzr`/`wzr`)?
    pub fn is_zr(self) -> bool {
        self.num == 31 && !self.sp
    }

    /// Parse a register spelling (`x0`..`x30`, `w0`..`w30`, `sp`, `wsp`,
    /// `xzr`, `wzr`, `lr`).
    pub fn parse(s: &str) -> Option<A64Reg> {
        match s {
            "sp" => return Some(A64Reg::sp()),
            "wsp" => {
                return Some(A64Reg {
                    num: 31,
                    is64: false,
                    sp: true,
                })
            }
            "xzr" => return Some(A64Reg::x(31)),
            "wzr" => return Some(A64Reg::w(31)),
            "lr" => return Some(A64Reg::x(30)),
            _ => {}
        }
        let (is64, rest) = match s.as_bytes().first()? {
            b'x' => (true, &s[1..]),
            b'w' => (false, &s[1..]),
            _ => return None,
        };
        let num: u8 = rest.parse().ok()?;
        if num > 30 {
            return None;
        }
        Some(A64Reg {
            num,
            is64,
            sp: false,
        })
    }
}

impl fmt::Display for A64Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.num, self.is64, self.sp) {
            (31, true, true) => write!(f, "sp"),
            (31, false, true) => write!(f, "wsp"),
            (31, true, false) => write!(f, "xzr"),
            (31, false, false) => write!(f, "wzr"),
            (n, true, _) => write!(f, "x{n}"),
            (n, false, _) => write!(f, "w{n}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Condition codes
// ---------------------------------------------------------------------------

/// A64 condition codes, in architectural encoding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (Z set).
    Eq,
    /// Not equal (Z clear).
    Ne,
    /// Carry set / unsigned higher-or-same.
    Cs,
    /// Carry clear / unsigned lower.
    Cc,
    /// Minus (N set).
    Mi,
    /// Plus (N clear).
    Pl,
    /// Overflow set.
    Vs,
    /// Overflow clear.
    Vc,
    /// Unsigned higher.
    Hi,
    /// Unsigned lower-or-same.
    Ls,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-than.
    Lt,
    /// Signed greater-than.
    Gt,
    /// Signed less-or-equal.
    Le,
}

impl Cond {
    /// All codes, index == architectural encoding.
    pub const ALL: [Cond; 14] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
    ];

    /// Assembly suffix (`eq`, `ne`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
        }
    }

    /// Parse an assembly suffix.
    pub fn parse(s: &str) -> Option<Cond> {
        Cond::ALL.iter().copied().find(|c| c.name() == s)
    }

    /// Architectural 4-bit encoding (also the snapshot code).
    pub fn code(self) -> u8 {
        Cond::ALL.iter().position(|&c| c == self).unwrap() as u8
    }

    /// Inverse of [`Cond::code`].
    pub fn from_code(code: u8) -> Option<Cond> {
        Cond::ALL.get(code as usize).copied()
    }
}

// ---------------------------------------------------------------------------
// Mnemonics
// ---------------------------------------------------------------------------

/// The supported A64 mnemonics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum A64Mnemonic {
    /// Register/immediate move.
    Mov,
    /// Add (non-flag-setting).
    Add,
    /// Subtract (non-flag-setting).
    Sub,
    /// Compare: subtract and set NZCV, discard result.
    Cmp,
    /// Load register from memory.
    Ldr,
    /// Store register to memory.
    Str,
    /// Unconditional branch.
    B,
    /// Conditional branch (`b.eq`, `b.ne`, ...).
    BCond(Cond),
    /// Branch with link (call).
    Bl,
    /// Return through the link register.
    Ret,
    /// No-operation.
    Nop,
}

impl A64Mnemonic {
    /// Assembly spelling.
    pub fn name(self) -> String {
        match self {
            A64Mnemonic::Mov => "mov".into(),
            A64Mnemonic::Add => "add".into(),
            A64Mnemonic::Sub => "sub".into(),
            A64Mnemonic::Cmp => "cmp".into(),
            A64Mnemonic::Ldr => "ldr".into(),
            A64Mnemonic::Str => "str".into(),
            A64Mnemonic::B => "b".into(),
            A64Mnemonic::BCond(c) => format!("b.{}", c.name()),
            A64Mnemonic::Bl => "bl".into(),
            A64Mnemonic::Ret => "ret".into(),
            A64Mnemonic::Nop => "nop".into(),
        }
    }

    /// Is this any branch (conditional, unconditional, or call)?
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            A64Mnemonic::B | A64Mnemonic::BCond(_) | A64Mnemonic::Bl
        )
    }

    /// Does this end or redirect straight-line execution?
    pub fn is_control_flow(self) -> bool {
        self.is_branch() || self == A64Mnemonic::Ret
    }

    /// Stable numeric code for snapshots (`BCond` folds the condition into
    /// the low nibble).
    pub fn snapshot_code(self) -> u16 {
        match self {
            A64Mnemonic::Mov => 0,
            A64Mnemonic::Add => 1,
            A64Mnemonic::Sub => 2,
            A64Mnemonic::Cmp => 3,
            A64Mnemonic::Ldr => 4,
            A64Mnemonic::Str => 5,
            A64Mnemonic::B => 6,
            A64Mnemonic::Bl => 7,
            A64Mnemonic::Ret => 8,
            A64Mnemonic::Nop => 9,
            A64Mnemonic::BCond(c) => 0x100 | u16::from(c.code()),
        }
    }

    /// Inverse of [`A64Mnemonic::snapshot_code`].
    pub fn from_snapshot_code(code: u16) -> Option<A64Mnemonic> {
        Some(match code {
            0 => A64Mnemonic::Mov,
            1 => A64Mnemonic::Add,
            2 => A64Mnemonic::Sub,
            3 => A64Mnemonic::Cmp,
            4 => A64Mnemonic::Ldr,
            5 => A64Mnemonic::Str,
            6 => A64Mnemonic::B,
            7 => A64Mnemonic::Bl,
            8 => A64Mnemonic::Ret,
            9 => A64Mnemonic::Nop,
            c if c & 0x100 != 0 => A64Mnemonic::BCond(Cond::from_code((c & 0xff) as u8)?),
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------------
// Effects tables (NZCV + memory), as data
// ---------------------------------------------------------------------------

/// Side effects of one mnemonic: the NZCV flag set and memory behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct A64Effects {
    /// Writes all four NZCV flags.
    pub defs_nzcv: bool,
    /// Reads NZCV (conditional execution).
    pub uses_nzcv: bool,
    /// Reads memory.
    pub mem_read: bool,
    /// Writes memory.
    pub mem_write: bool,
}

/// Per-mnemonic effects, the A64 analogue of mao-x86's generated
/// side-effect database. `BCond` entries share one row keyed by the family.
const EFFECTS: [(u16, A64Effects); 11] = [
    (
        0,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: false,
            mem_write: false,
        },
    ), // mov
    (
        1,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: false,
            mem_write: false,
        },
    ), // add
    (
        2,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: false,
            mem_write: false,
        },
    ), // sub
    (
        3,
        A64Effects {
            defs_nzcv: true,
            uses_nzcv: false,
            mem_read: false,
            mem_write: false,
        },
    ), // cmp
    (
        4,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: true,
            mem_write: false,
        },
    ), // ldr
    (
        5,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: false,
            mem_write: true,
        },
    ), // str
    (
        6,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: false,
            mem_write: false,
        },
    ), // b
    (
        7,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: false,
            mem_write: false,
        },
    ), // bl
    (
        8,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: false,
            mem_write: false,
        },
    ), // ret
    (
        9,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: false,
            mem_read: false,
            mem_write: false,
        },
    ), // nop
    (
        0x100,
        A64Effects {
            defs_nzcv: false,
            uses_nzcv: true,
            mem_read: false,
            mem_write: false,
        },
    ), // b.cond
];

/// Look up the effects row for `m` (condition families share one row).
pub fn effects(m: A64Mnemonic) -> A64Effects {
    let key = match m {
        A64Mnemonic::BCond(_) => 0x100,
        other => other.snapshot_code(),
    };
    EFFECTS
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, e)| *e)
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Operands and instructions
// ---------------------------------------------------------------------------

/// One instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum A64Operand {
    /// Register.
    Reg(A64Reg),
    /// Immediate (`#imm`).
    Imm(i64),
    /// Base + signed byte offset addressing (`[xN]`, `[xN, #imm]`).
    Mem {
        /// Base register (an X register or SP).
        base: A64Reg,
        /// Signed byte offset.
        offset: i64,
    },
    /// Code label (branch/call target).
    Label(Sym),
}

impl fmt::Display for A64Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            A64Operand::Reg(r) => write!(f, "{r}"),
            A64Operand::Imm(v) => write!(f, "#{v}"),
            A64Operand::Mem { base, offset: 0 } => write!(f, "[{base}]"),
            A64Operand::Mem { base, offset } => write!(f, "[{base}, #{offset}]"),
            A64Operand::Label(s) => write!(f, "{}", s.as_str()),
        }
    }
}

/// One A64 instruction: mnemonic + operands in assembly order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct A64Insn {
    /// The operation.
    pub mnemonic: A64Mnemonic,
    /// Operands, destination first (assembly order).
    pub operands: Vec<A64Operand>,
}

impl A64Insn {
    /// The architectural NOP.
    pub fn nop() -> A64Insn {
        A64Insn {
            mnemonic: A64Mnemonic::Nop,
            operands: Vec::new(),
        }
    }

    /// The label this branch/call targets, if any.
    pub fn target_label(&self) -> Option<Sym> {
        if !self.mnemonic.is_branch() {
            return None;
        }
        self.operands.iter().find_map(|op| match op {
            A64Operand::Label(s) => Some(*s),
            _ => None,
        })
    }

    /// Is this a NOP?
    pub fn is_nop(&self) -> bool {
        self.mnemonic == A64Mnemonic::Nop
    }

    /// Encoded length in bytes — constant on A64.
    pub fn encoded_length(&self) -> u32 {
        INSN_BYTES
    }

    /// This instruction's effects row.
    pub fn effects(&self) -> A64Effects {
        effects(self.mnemonic)
    }
}

impl fmt::Display for A64Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic.name())?;
        for (i, op) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, "\t{op}")?;
            } else {
                write!(f, ", {op}")?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_imm(s: &str) -> Result<i64, String> {
    let body = s
        .strip_prefix('#')
        .ok_or_else(|| format!("expected immediate, got `{s}`"))?;
    let (negative, digits) = match body.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, body),
    };
    let value = if let Some(hex) = digits.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        digits.parse()
    }
    .map_err(|_| format!("bad immediate `{s}`"))?;
    Ok(if negative { -value } else { value })
}

fn parse_operand(s: &str) -> Result<A64Operand, String> {
    let s = s.trim();
    if let Some(r) = A64Reg::parse(s) {
        return Ok(A64Operand::Reg(r));
    }
    if s.starts_with('#') {
        return Ok(A64Operand::Imm(parse_imm(s)?));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated address `{s}`"))?;
        let mut parts = inner.splitn(2, ',');
        let base_text = parts.next().unwrap_or("").trim();
        let base = A64Reg::parse(base_text)
            .filter(|r| r.is64 && !r.is_zr())
            .ok_or_else(|| format!("bad base register `{base_text}`"))?;
        let offset = match parts.next() {
            Some(off) => parse_imm(off.trim())?,
            None => 0,
        };
        return Ok(A64Operand::Mem { base, offset });
    }
    if !s.is_empty() && !s.contains(|c: char| c.is_whitespace() || c == ',') {
        return Ok(A64Operand::Label(Sym::intern(s)));
    }
    Err(format!("unrecognized operand `{s}`"))
}

/// Split an operand list on top-level commas (commas inside `[...]` bind to
/// the address).
fn split_operands(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Look up a mnemonic by its assembly spelling (case-insensitive).
pub fn parse_mnemonic(name: &str) -> Option<A64Mnemonic> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "mov" => Some(A64Mnemonic::Mov),
        "add" => Some(A64Mnemonic::Add),
        "sub" => Some(A64Mnemonic::Sub),
        "cmp" => Some(A64Mnemonic::Cmp),
        "ldr" => Some(A64Mnemonic::Ldr),
        "str" => Some(A64Mnemonic::Str),
        "b" => Some(A64Mnemonic::B),
        "bl" => Some(A64Mnemonic::Bl),
        "ret" => Some(A64Mnemonic::Ret),
        "nop" => Some(A64Mnemonic::Nop),
        other => other
            .strip_prefix("b.")
            .and_then(Cond::parse)
            .map(A64Mnemonic::BCond),
    }
}

/// Parse one A64 instruction statement (mnemonic + operands, no label or
/// directive handling — the generic front end owns those).
pub fn parse_insn(text: &str) -> Result<A64Insn, String> {
    let text = text.trim();
    let (head, rest) = match text.find(|c: char| c.is_whitespace()) {
        Some(i) => (&text[..i], text[i..].trim_start()),
        None => (text, ""),
    };
    let mnemonic = parse_mnemonic(head).ok_or_else(|| format!("unknown mnemonic `{head}`"))?;
    let operands = if rest.is_empty() {
        Vec::new()
    } else {
        split_operands(rest)
            .into_iter()
            .map(parse_operand)
            .collect::<Result<Vec<_>, _>>()?
    };
    let insn = A64Insn { mnemonic, operands };
    validate(&insn)?;
    Ok(insn)
}

/// Operand-shape validation: enough structure that the emitter round-trips
/// and the structural checker has real invariants to hold.
fn validate(insn: &A64Insn) -> Result<(), String> {
    use A64Mnemonic as M;
    use A64Operand as O;
    let ops = &insn.operands;
    let bad = || {
        Err(format!(
            "bad operands for `{}`: {}",
            insn.mnemonic.name(),
            ops.len()
        ))
    };
    match insn.mnemonic {
        M::Mov => match ops.as_slice() {
            [O::Reg(_), O::Reg(_)] | [O::Reg(_), O::Imm(_)] => Ok(()),
            _ => bad(),
        },
        M::Add | M::Sub => match ops.as_slice() {
            [O::Reg(_), O::Reg(_), O::Reg(_)] | [O::Reg(_), O::Reg(_), O::Imm(_)] => Ok(()),
            _ => bad(),
        },
        M::Cmp => match ops.as_slice() {
            [O::Reg(_), O::Reg(_)] | [O::Reg(_), O::Imm(_)] => Ok(()),
            _ => bad(),
        },
        M::Ldr | M::Str => match ops.as_slice() {
            [O::Reg(_), O::Mem { .. }] => Ok(()),
            _ => bad(),
        },
        M::B | M::BCond(_) | M::Bl => match ops.as_slice() {
            [O::Label(_)] => Ok(()),
            _ => bad(),
        },
        M::Ret => match ops.as_slice() {
            [] | [O::Reg(_)] => Ok(()),
            _ => bad(),
        },
        M::Nop => match ops.as_slice() {
            [] => Ok(()),
            _ => bad(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_parse_and_print() {
        for (text, num, is64) in [("x0", 0, true), ("w30", 30, false), ("x19", 19, true)] {
            let r = A64Reg::parse(text).unwrap();
            assert_eq!((r.num, r.is64, r.sp), (num, is64, false));
            assert_eq!(r.to_string(), text);
        }
        assert_eq!(A64Reg::parse("sp").unwrap().to_string(), "sp");
        assert_eq!(A64Reg::parse("xzr").unwrap().to_string(), "xzr");
        assert_eq!(A64Reg::parse("wzr").unwrap().to_string(), "wzr");
        assert_eq!(A64Reg::parse("lr").unwrap().to_string(), "x30");
        assert!(A64Reg::parse("x31").is_none(), "31 is sp/xzr, never x31");
        assert!(A64Reg::parse("v0").is_none(), "no SIMD in the subset");
    }

    #[test]
    fn instructions_round_trip_through_display() {
        for text in [
            "mov\tx0, x1",
            "mov\tw3, #42",
            "add\tx0, x1, #16",
            "add\tx2, x3, x4",
            "sub\tsp, sp, #32",
            "cmp\tx0, #0",
            "cmp\tw1, w2",
            "ldr\tx0, [x1]",
            "ldr\tx0, [x1, #8]",
            "str\tw0, [sp, #12]",
            "str\tx19, [x29, #-16]",
            "b\t.L1",
            "b.eq\t.L2",
            "b.lt\t.L3",
            "bl\tmemcpy",
            "ret",
            "nop",
        ] {
            let insn = parse_insn(text).unwrap();
            assert_eq!(insn.to_string(), text, "round-trip of `{text}`");
        }
    }

    #[test]
    fn every_instruction_is_four_bytes() {
        for text in ["mov\tx0, x1", "b\t.L1", "ret", "ldr\tx0, [sp, #8]"] {
            assert_eq!(parse_insn(text).unwrap().encoded_length(), INSN_BYTES);
        }
    }

    #[test]
    fn nzcv_effects_match_the_architecture() {
        // Architectural ground truth: CMP is SUBS with a discarded result —
        // it defines all of NZCV; plain ADD/SUB/MOV (no S suffix) leave the
        // flags alone; B.cond is the only NZCV reader in the subset.
        assert!(effects(A64Mnemonic::Cmp).defs_nzcv);
        assert!(!effects(A64Mnemonic::Cmp).uses_nzcv);
        for m in [A64Mnemonic::Add, A64Mnemonic::Sub, A64Mnemonic::Mov] {
            assert!(!effects(m).defs_nzcv, "{m:?} must not set flags");
            assert!(!effects(m).uses_nzcv);
        }
        for c in Cond::ALL {
            let e = effects(A64Mnemonic::BCond(c));
            assert!(e.uses_nzcv, "b.{} reads NZCV", c.name());
            assert!(!e.defs_nzcv);
        }
        assert!(effects(A64Mnemonic::Ldr).mem_read);
        assert!(!effects(A64Mnemonic::Ldr).mem_write);
        assert!(effects(A64Mnemonic::Str).mem_write);
        assert!(!effects(A64Mnemonic::Str).mem_read);
    }

    #[test]
    fn branch_targets_and_predicates() {
        let b = parse_insn("b.ne\t.Lloop").unwrap();
        assert!(b.mnemonic.is_branch());
        assert!(b.mnemonic.is_control_flow());
        assert_eq!(b.target_label().unwrap().as_str(), ".Lloop");
        let ret = parse_insn("ret").unwrap();
        assert!(!ret.mnemonic.is_branch());
        assert!(ret.mnemonic.is_control_flow());
        assert_eq!(ret.target_label(), None);
        assert!(parse_insn("nop").unwrap().is_nop());
    }

    #[test]
    fn snapshot_codes_round_trip() {
        let mut all = vec![
            A64Mnemonic::Mov,
            A64Mnemonic::Add,
            A64Mnemonic::Sub,
            A64Mnemonic::Cmp,
            A64Mnemonic::Ldr,
            A64Mnemonic::Str,
            A64Mnemonic::B,
            A64Mnemonic::Bl,
            A64Mnemonic::Ret,
            A64Mnemonic::Nop,
        ];
        all.extend(Cond::ALL.iter().map(|&c| A64Mnemonic::BCond(c)));
        let mut seen = std::collections::BTreeSet::new();
        for m in all {
            let code = m.snapshot_code();
            assert!(seen.insert(code), "duplicate snapshot code for {m:?}");
            assert_eq!(A64Mnemonic::from_snapshot_code(code), Some(m));
        }
        assert_eq!(A64Mnemonic::from_snapshot_code(0x1ff), None);
    }

    #[test]
    fn malformed_statements_are_rejected() {
        for text in [
            "frob\tx0",
            "mov\tx0",
            "mov\t#1, x0",
            "ldr\tx0, x1",
            "str\tx0, [v8]",
            "b\tx0, x1",
            "b.xx\t.L1",
            "add\tx0, [x1], #2",
            "ldr\tx0, [x1, #8",
        ] {
            assert!(parse_insn(text).is_err(), "`{text}` must be rejected");
        }
    }
}
