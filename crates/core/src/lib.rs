//! MAO — an extensible micro-architectural optimizer (CGO 2011), in Rust.
//!
//! This crate is the paper's primary contribution: an assembly-to-assembly
//! optimizer. It parses compiler-emitted x86-64 assembly into a thin IR
//! (via `mao-asm`/`mao-x86`), runs named optimization passes over it, and
//! re-emits textual assembly.
//!
//! # Architecture
//!
//! * [`mod@unit`] — the "one long list" IR with section/function views.
//! * [`mod@relax`] — repeated relaxation: the address/size fixed point.
//! * [`mod@cfg`] — per-function CFGs with jump-table resolution.
//! * [`dataflow`] — liveness and reaching definitions over registers/flags.
//! * [`loops`] — Havlak's loop structure graph.
//! * [`pass`] — registry, option parsing (`--mao=PASS=opt[val]:...`), tracing.
//! * [`passes`] — the §III optimization passes.
//! * [`profile`] — PMU-sample and reuse-distance annotations.
//! * [`edgeprof`] — edge profiles from hardware samples (the paper's
//!   stated future work, after Chen et al.).
//!
//! # Example
//!
//! ```
//! use mao::{MaoUnit, pass};
//!
//! let mut unit = MaoUnit::parse(
//!     ".type f, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L\n.L:\n\tret\n",
//! ).unwrap();
//! let invs = pass::parse_invocations("REDTEST").unwrap();
//! let report = pass::run_pipeline(&mut unit, &invs, None).unwrap();
//! assert_eq!(report.total_transformations(), 1);
//! assert!(!unit.emit().contains("testl"));
//! ```

pub mod analysis_cache;
pub mod cfg;
pub mod dataflow;
pub mod edgeprof;
pub mod isa;
pub mod loops;
pub mod pass;
pub mod passes;
pub mod profile;
pub mod relax;
pub mod unit;

/// The telemetry crate (spans, metrics, Prometheus/Chrome-trace export),
/// re-exported so downstream crates need no separate dependency.
pub use mao_obs as obs;
pub use mao_obs::{Obs, TraceEvent};

pub use analysis_cache::{AnalysisCache, CacheStats, FunctionAnalyses, LayoutStore};
pub use pass::{
    parse_invocations, run_functions, run_pipeline, run_pipeline_observed, run_pipeline_shared,
    run_pipeline_with, FnCtx, MaoPass, PassContext, PassError, PassStats, PipelineConfig,
    PipelineReport,
};
pub use profile::{Profile, Sample, Site};
pub use relax::{
    relax, relax_reference, relax_totals, BranchForm, Layout, LayoutCache, LayoutCacheStats,
    RelaxError, RelaxMetrics, RelaxTotals,
};
pub use unit::{EditSet, EntryId, Function, MaoUnit, Section};
