//! Repeated relaxation: the address/size fixed point.
//!
//! Relaxation picks `rel8` vs `rel32` encodings for label-targeting branches
//! based on branch-target distances, which in turn depend on every
//! instruction's length — a circular dependency the paper resolves by
//! iterating to a fixed point (§II): *"In the implementation there is a
//! built-in limit of 100 iterations, but in practice almost every relaxation
//! succeeds in a few iterations, and it never fails."*
//!
//! Our implementation is monotone — a branch once widened to `rel32` never
//! shrinks back — which, together with bounded alignment padding, guarantees
//! termination well inside the limit.
//!
//! # Fragments
//!
//! The engine is organized around LLVM-MC-style *fragments*: one up-front
//! pass encodes every instruction exactly once (relaxable branches cache
//! both their `rel8` and `rel32` lengths) and coalesces maximal runs of
//! fixed-size entries into single fragments. Each fixed-point iteration is
//! then a prefix sum over the O(#branches + #aligns) variable fragments —
//! pure integer arithmetic, no re-encoding — and a monotone worklist skips
//! branches whose span saw no size change since their last check.
//!
//! [`relax`] runs the fragment engine over a whole unit. [`LayoutCache`]
//! keeps the fragment model alive across a pass's edits and re-lays-out
//! incrementally via [`LayoutCache::patch`]. [`relax_reference`] retains the
//! original entry-at-a-time algorithm (re-encoding every instruction every
//! iteration) as the baseline for benchmarks and the equivalence property
//! tests; both produce identical layouts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mao_asm::{Directive, Entry};

pub use crate::isa::BranchForm;
use crate::isa::{branch_lengths, encoded_length};
use crate::unit::{EditSet, EntryId, MaoUnit};

/// Built-in iteration limit from the paper.
pub const MAX_ITERATIONS: usize = 100;

/// Relaxation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelaxError {
    /// An instruction could not be encoded (outside the supported subset).
    Encode {
        /// Entry id of the offending instruction.
        id: EntryId,
        /// Encoder message.
        message: String,
    },
    /// The fixed point was not reached within [`MAX_ITERATIONS`].
    DidNotConverge,
}

impl std::fmt::Display for RelaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelaxError::Encode { id, message } => {
                write!(f, "entry {id}: {message}")
            }
            RelaxError::DidNotConverge => {
                write!(
                    f,
                    "relaxation did not converge in {MAX_ITERATIONS} iterations"
                )
            }
        }
    }
}

impl std::error::Error for RelaxError {}

/// Counters describing how a layout was computed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelaxMetrics {
    /// Total fragments in the unit's model.
    pub fragments: usize,
    /// Variable-size fragments (relaxable branches + alignment directives);
    /// each fixed-point pass costs O(this), not O(entries).
    pub variable_fragments: usize,
    /// Prefix-sum passes the fixed point ran (`iterations - 1`).
    pub passes: usize,
    /// Branch fit checks actually performed; the worklist skips the rest.
    pub rechecks: usize,
    /// Was this layout produced by an incremental patch?
    pub patched: bool,
}

/// The result of relaxation: per-entry addresses and sizes.
///
/// Addresses are section-relative (each section starts at 0). Entries in
/// non-text sections get data-directive sizes; unknown directives are
/// size 0.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Section-relative start address of each entry.
    pub addr: Vec<u64>,
    /// Size in bytes of each entry (0 for labels and most directives).
    pub size: Vec<u32>,
    /// Chosen branch form per entry; `None` for non-relaxable entries.
    pub branch_form: Vec<Option<BranchForm>>,
    /// Iterations needed to reach the fixed point.
    pub iterations: usize,
    /// How the fixed point got there.
    pub metrics: RelaxMetrics,
}

impl Layout {
    /// Address of the first byte after entry `id`.
    pub fn end_addr(&self, id: EntryId) -> u64 {
        self.addr[id] + u64::from(self.size[id])
    }

    /// Total byte size of an id range (assumes same section, contiguous).
    pub fn span_size(&self, first: EntryId, last: EntryId) -> u64 {
        self.end_addr(last).saturating_sub(self.addr[first])
    }

    /// Branch form in effect for entry `id` (non-relaxable entries encode
    /// with `rel32` semantics, which every fixed-length instruction ignores).
    pub fn form(&self, id: EntryId) -> BranchForm {
        self.branch_form
            .get(id)
            .copied()
            .flatten()
            .unwrap_or(BranchForm::Rel32)
    }

    /// Same addresses, sizes, branch forms, and iteration count? Metrics are
    /// ignored — they describe how the layout was computed, not the layout.
    pub fn agrees_with(&self, other: &Layout) -> bool {
        self.addr == other.addr
            && self.size == other.size
            && self.branch_form == other.branch_form
            && self.iterations == other.iterations
    }

    /// Number of 16-byte decode lines the byte range `[start, end)` touches.
    pub fn decode_lines(start: u64, end: u64) -> u64 {
        if end <= start {
            return 0;
        }
        (end - 1) / 16 - start / 16 + 1
    }
}

/// Is this a branch whose encoding relaxation must choose? (On x86,
/// `jmp`/`jcc` to a label; `call` always encodes `rel32` and is fixed-size.
/// Fixed-width ISAs have no relaxable branches at all, so their fixed point
/// converges immediately.)
fn relaxable_branch(e: &Entry) -> bool {
    e.insn_any().is_some_and(crate::isa::relaxable_branch)
}

/// Flat per-entry section slots. Sections with the same name share one
/// address space (a later `.text` resumes where the first left off),
/// matching gas.
fn intern_sections(unit: &MaoUnit) -> (Vec<u32>, u32) {
    let names = unit.section_names();
    let mut section_of = Vec::with_capacity(names.len());
    let mut slots: HashMap<&str, u32> = HashMap::new();
    for name in names {
        let next = slots.len() as u32;
        section_of.push(*slots.entry(name).or_insert(next));
    }
    let nsections = (slots.len() as u32).max(1);
    (section_of, nsections)
}

// ---------------------------------------------------------------------------
// Fragment model
// ---------------------------------------------------------------------------

/// Everything relaxation needs to know about one entry, computed once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryMeta {
    /// Fixed-size entry: label (0), non-relaxable instruction (encoded
    /// length), or directive (data size). `u64` because data directives can
    /// declare sizes larger than `u32`; truncation to the layout's `u32`
    /// size happens only at output, exactly like the reference engine.
    Fixed(u64),
    /// Relaxable branch with both encodings cached.
    Branch {
        /// `rel8` length.
        len8: u32,
        /// `rel32` length.
        len32: u32,
    },
    /// Alignment directive: pad to `alignment` unless more than `max_skip`
    /// bytes would be needed.
    Align {
        /// Requested alignment in bytes.
        alignment: u64,
        /// Maximum padding gas would emit before abandoning the request.
        max_skip: Option<u64>,
    },
}

impl EntryMeta {
    fn of(entry: &Entry) -> Result<EntryMeta, String> {
        Ok(match entry {
            Entry::Label(_) => EntryMeta::Fixed(0),
            Entry::Directive(Directive::Align(a)) => EntryMeta::Align {
                alignment: a.alignment,
                max_skip: a.max_skip,
            },
            Entry::Directive(d) => EntryMeta::Fixed(d.data_size().unwrap_or(0)),
            Entry::Insn(i) => {
                if relaxable_branch(entry) {
                    let (len8, len32) = branch_lengths(i).map_err(|e| e.to_string())?;
                    EntryMeta::Branch { len8, len32 }
                } else {
                    let len = encoded_length(i, BranchForm::Rel32).map_err(|e| e.to_string())?;
                    EntryMeta::Fixed(len as u64)
                }
            }
        })
    }
}

/// One layout fragment: a maximal same-section run of fixed-size entries, or
/// a single variable-size entry (relaxable branch / alignment directive).
#[derive(Debug, Clone, Copy)]
enum Frag {
    /// Maximal fixed run totalling `bytes`.
    Fixed {
        /// Section slot.
        section: u32,
        /// Total byte size of the run.
        bytes: u64,
    },
    /// One relaxable branch entry.
    Branch {
        /// Section slot.
        section: u32,
        /// The branch's entry id.
        id: EntryId,
    },
    /// One alignment directive entry.
    Align {
        /// Section slot.
        section: u32,
        /// The directive's entry id.
        id: EntryId,
    },
}

impl Frag {
    fn section(&self) -> u32 {
        match *self {
            Frag::Fixed { section, .. }
            | Frag::Branch { section, .. }
            | Frag::Align { section, .. } => section,
        }
    }
}

/// The per-unit fragment model: cached per-entry sizes plus the fragment
/// list the fixed point iterates over. Rebuilding the fragment list from the
/// metas is pure integer work, which is what makes [`LayoutCache::patch`]
/// cheap — only entries introduced by an edit are ever re-encoded.
#[derive(Debug, Clone, Default)]
pub(crate) struct FragmentModel {
    /// Per-entry cached size information.
    metas: Vec<EntryMeta>,
    /// Per-entry section slot.
    section_of: Vec<u32>,
    /// Number of distinct section slots (at least 1).
    nsections: u32,
    /// The fragment list, in entry order.
    frags: Vec<Frag>,
    /// Per-entry fragment index.
    frag_of: Vec<u32>,
    /// Per-entry byte offset within its (fixed) fragment.
    intra: Vec<u64>,
}

impl FragmentModel {
    fn build(unit: &MaoUnit) -> Result<FragmentModel, RelaxError> {
        let n = unit.len();
        let mut metas = Vec::with_capacity(n);
        for (id, e) in unit.entries().iter().enumerate() {
            metas.push(EntryMeta::of(e).map_err(|message| RelaxError::Encode { id, message })?);
        }
        let (section_of, nsections) = intern_sections(unit);
        let mut model = FragmentModel {
            metas,
            section_of,
            nsections,
            frags: Vec::new(),
            frag_of: Vec::new(),
            intra: Vec::new(),
        };
        model.rebuild_frags();
        Ok(model)
    }

    /// Recompute the fragment list from the per-entry metas.
    fn rebuild_frags(&mut self) {
        let n = self.metas.len();
        self.frags.clear();
        self.frag_of.clear();
        self.frag_of.reserve(n);
        self.intra.clear();
        self.intra.reserve(n);
        // Open fixed run, if any: (section, bytes so far).
        let mut run: Option<(u32, u64)> = None;
        for id in 0..n {
            let sec = self.section_of[id];
            match self.metas[id] {
                EntryMeta::Fixed(bytes) => match &mut run {
                    Some((rsec, total)) if *rsec == sec => {
                        self.frag_of.push(self.frags.len() as u32);
                        self.intra.push(*total);
                        *total += bytes;
                    }
                    _ => {
                        if let Some((rsec, total)) = run.take() {
                            self.frags.push(Frag::Fixed {
                                section: rsec,
                                bytes: total,
                            });
                        }
                        self.frag_of.push(self.frags.len() as u32);
                        self.intra.push(0);
                        run = Some((sec, bytes));
                    }
                },
                EntryMeta::Branch { .. } | EntryMeta::Align { .. } => {
                    if let Some((rsec, total)) = run.take() {
                        self.frags.push(Frag::Fixed {
                            section: rsec,
                            bytes: total,
                        });
                    }
                    self.frag_of.push(self.frags.len() as u32);
                    self.intra.push(0);
                    self.frags.push(match self.metas[id] {
                        EntryMeta::Branch { .. } => Frag::Branch { section: sec, id },
                        _ => Frag::Align { section: sec, id },
                    });
                }
            }
        }
        if let Some((rsec, total)) = run.take() {
            self.frags.push(Frag::Fixed {
                section: rsec,
                bytes: total,
            });
        }
    }

    /// Run the fixed point and produce a [`Layout`].
    ///
    /// When `base` is given (incremental patch), entries before the first
    /// edit whose branch form did not change are copied from the base layout
    /// instead of being re-walked; the fixed point itself always starts from
    /// all-short, so the result is identical to a from-scratch solve of the
    /// current unit.
    fn solve(
        &self,
        unit: &MaoUnit,
        patched: bool,
        base: Option<(&Layout, EntryId)>,
    ) -> Result<Layout, RelaxError> {
        let n = self.metas.len();
        let nf = self.frags.len();
        let ns = self.nsections as usize;

        // Relaxable branches with their cached lengths and resolved targets.
        // Targets resolve through the unit's one label resolver
        // (`MaoUnit::find_label`, first definition wins).
        struct Br {
            frag: u32,
            id: EntryId,
            len8: u32,
            target: Option<EntryId>,
        }
        let mut branches: Vec<Br> = Vec::new();
        let mut naligns = 0usize;
        for (fi, frag) in self.frags.iter().enumerate() {
            match *frag {
                Frag::Branch { id, .. } => {
                    let EntryMeta::Branch { len8, .. } = self.metas[id] else {
                        unreachable!("branch frag points at a branch meta");
                    };
                    branches.push(Br {
                        frag: fi as u32,
                        id,
                        len8,
                        target: unit.branch_target(id),
                    });
                }
                Frag::Align { .. } => naligns += 1,
                Frag::Fixed { .. } => {}
            }
        }

        // Optimistic start: every relaxable branch short.
        let mut forms: Vec<Option<BranchForm>> = vec![None; n];
        for br in &branches {
            forms[br.id] = Some(BranchForm::Rel8);
        }
        let mut short: Vec<bool> = vec![true; branches.len()];

        // Per-fragment state for the prefix-sum passes.
        let mut frag_start = vec![0u64; nf];
        let mut pad = vec![0u64; nf];
        let mut prev_pad = vec![0u64; nf];
        // Fragments whose size changed between the previous pass and this
        // one (branches widened by the last check; aligns detected inline).
        let mut widened_frag = vec![false; nf];
        // Per-fragment count of changed same-section fragments strictly
        // before it — the worklist's interval query.
        let mut before = vec![0u32; nf];

        let mut widen_rounds = 0usize;
        let mut passes = 0usize;
        let mut rechecks = 0usize;

        loop {
            passes += 1;
            // 1. Prefix-sum pass: assign fragment start addresses.
            let mut cursor = vec![0u64; ns];
            let mut changed_count = vec![0u32; ns];
            for (fi, frag) in self.frags.iter().enumerate() {
                let sec = frag.section() as usize;
                before[fi] = changed_count[sec];
                frag_start[fi] = cursor[sec];
                let (size, changed) = match *frag {
                    Frag::Fixed { bytes, .. } => (bytes, false),
                    Frag::Branch { id, .. } => {
                        let EntryMeta::Branch { len8, len32 } = self.metas[id] else {
                            unreachable!();
                        };
                        let size = if forms[id] == Some(BranchForm::Rel32) {
                            u64::from(len32)
                        } else {
                            u64::from(len8)
                        };
                        (size, widened_frag[fi])
                    }
                    Frag::Align { id, .. } => {
                        let EntryMeta::Align {
                            alignment,
                            max_skip,
                        } = self.metas[id]
                        else {
                            unreachable!();
                        };
                        let align = alignment.max(1);
                        let pc = cursor[sec];
                        let skip = pc.next_multiple_of(align) - pc;
                        let allowed = max_skip.map_or(true, |max| skip <= max);
                        let p = if allowed { skip } else { 0 };
                        pad[fi] = p;
                        (p, passes > 1 && p != prev_pad[fi])
                    }
                };
                if changed {
                    changed_count[sec] += 1;
                }
                cursor[sec] += size;
            }

            // 2. Check still-short branches; the worklist skips any branch
            // whose span (the fragments between it and its target) saw no
            // size change since its last check — its displacement is
            // unchanged, so its fit decision is too.
            let mut newly_widened: Vec<u32> = Vec::new();
            for (bi, br) in branches.iter().enumerate() {
                if !short[bi] {
                    continue;
                }
                if passes > 1 {
                    let a = br.frag as usize;
                    let unchanged = match br.target {
                        Some(tid) if self.section_of[tid] == self.section_of[br.id] => {
                            let t = self.frag_of[tid] as usize;
                            let (lo, hi) = if t > a { (a, t) } else { (t, a) };
                            before[hi] - before[lo] == 0
                        }
                        // Unresolved or cross-section: widened by pass 1,
                        // never seen here again.
                        _ => true,
                    };
                    if unchanged {
                        continue;
                    }
                }
                rechecks += 1;
                let fits = match br.target {
                    Some(tid) if self.section_of[tid] == self.section_of[br.id] => {
                        let taddr = frag_start[self.frag_of[tid] as usize] + self.intra[tid];
                        let end = frag_start[br.frag as usize] + u64::from(br.len8);
                        BranchForm::Rel8.fits(taddr as i64 - end as i64)
                    }
                    // Cross-section or external target: must be rel32.
                    _ => false,
                };
                if !fits {
                    forms[br.id] = Some(BranchForm::Rel32);
                    short[bi] = false;
                    newly_widened.push(br.frag);
                }
            }

            if newly_widened.is_empty() {
                break;
            }
            widen_rounds += 1;
            // The reference engine spends one iteration per widening round,
            // one materializing the final sizes, and one confirming
            // stability; mirror its count and its convergence limit.
            if widen_rounds + 2 > MAX_ITERATIONS {
                return Err(RelaxError::DidNotConverge);
            }
            widened_frag.iter_mut().for_each(|w| *w = false);
            for fi in newly_widened {
                widened_frag[fi as usize] = true;
            }
            prev_pad.copy_from_slice(&pad);
        }

        let iterations = widen_rounds + 2;
        let metrics = RelaxMetrics {
            fragments: nf,
            variable_fragments: branches.len() + naligns,
            passes,
            rechecks,
            patched,
        };

        // 3. Finalize per-entry addresses. With a base layout, the stable
        // prefix (everything before the first edit, cut short at the first
        // branch whose form changed) is copied; the walk resumes from there.
        let mut layout = Layout {
            addr: vec![0; n],
            size: vec![0; n],
            branch_form: Vec::new(),
            iterations,
            metrics,
        };
        let mut cursor = vec![0u64; ns];
        let mut start_id = 0usize;
        if let Some((base, first_edit)) = base {
            let mut stable = first_edit.min(n).min(base.addr.len());
            for id in 0..stable {
                if base.branch_form[id] != forms[id] {
                    stable = id;
                    break;
                }
            }
            for id in 0..stable {
                layout.addr[id] = base.addr[id];
                layout.size[id] = base.size[id];
                cursor[self.section_of[id] as usize] = base.addr[id] + u64::from(base.size[id]);
            }
            start_id = stable;
        }
        for id in start_id..n {
            let sec = self.section_of[id] as usize;
            let pc = cursor[sec];
            layout.addr[id] = pc;
            let size = match self.metas[id] {
                EntryMeta::Fixed(bytes) => bytes,
                EntryMeta::Branch { len8, len32 } => {
                    if forms[id] == Some(BranchForm::Rel32) {
                        u64::from(len32)
                    } else {
                        u64::from(len8)
                    }
                }
                EntryMeta::Align {
                    alignment,
                    max_skip,
                } => {
                    let align = alignment.max(1);
                    let skip = pc.next_multiple_of(align) - pc;
                    let allowed = max_skip.map_or(true, |max| skip <= max);
                    if allowed {
                        skip
                    } else {
                        0
                    }
                }
            };
            layout.size[id] = size as u32;
            cursor[sec] = pc + size;
        }
        layout.branch_form = forms;

        record_totals(&layout);
        Ok(layout)
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Run repeated relaxation over the whole unit with the fragment engine.
///
/// Every section is laid out independently from address 0. Branches to
/// labels defined in the same section may use `rel8`; branches to anything
/// else (other sections, external symbols) are `rel32`.
pub fn relax(unit: &MaoUnit) -> Result<Layout, RelaxError> {
    let model = FragmentModel::build(unit)?;
    model.solve(unit, false, None)
}

/// The original entry-at-a-time relaxation: every iteration re-walks all N
/// entries and re-encodes every instruction. Kept as the reference the
/// fragment engine is checked against (CI smoke + property tests) and as
/// the benchmark baseline; passes can select it with the `legacy-relax`
/// option. Produces layouts identical to [`relax`].
pub fn relax_reference(unit: &MaoUnit) -> Result<Layout, RelaxError> {
    let n = unit.len();
    let (section_of, nsections) = intern_sections(unit);
    let mut layout = Layout {
        addr: vec![0; n],
        size: vec![0; n],
        branch_form: vec![None; n],
        iterations: 0,
        metrics: RelaxMetrics::default(),
    };

    // Optimistic start: all relaxable branches short.
    for (id, e) in unit.entries().iter().enumerate() {
        if relaxable_branch(e) {
            layout.branch_form[id] = Some(BranchForm::Rel8);
        }
    }

    for iteration in 1..=MAX_ITERATIONS {
        layout.iterations = iteration;

        // 1. Assign addresses with current branch forms.
        let mut cursor = vec![0u64; nsections as usize];
        let mut changed_addr = false;
        for (id, e) in unit.entries().iter().enumerate() {
            let pc = &mut cursor[section_of[id] as usize];
            // Alignment directives move the cursor before the entry "starts".
            if let Entry::Directive(Directive::Align(a)) = e {
                let align = a.alignment.max(1);
                let aligned = pc.next_multiple_of(align);
                let skip = aligned - *pc;
                let allowed = a.max_skip.map_or(true, |max| skip <= max);
                let new_pc = if allowed { aligned } else { *pc };
                if layout.addr[id] != *pc {
                    changed_addr = true;
                }
                layout.addr[id] = *pc;
                layout.size[id] = (new_pc - *pc) as u32;
                *pc = new_pc;
                continue;
            }
            if layout.addr[id] != *pc {
                changed_addr = true;
            }
            layout.addr[id] = *pc;
            let size: u64 = match e {
                Entry::Label(_) => 0,
                Entry::Insn(i) => {
                    let form = layout.branch_form[id].unwrap_or(BranchForm::Rel32);
                    encoded_length(i, form).map_err(|e| RelaxError::Encode {
                        id,
                        message: e.to_string(),
                    })? as u64
                }
                Entry::Directive(d) => d.data_size().unwrap_or(0),
            };
            if layout.size[id] != size as u32 {
                changed_addr = true;
            }
            layout.size[id] = size as u32;
            *pc += size;
        }

        // 2. Widen branches whose target no longer fits rel8.
        let mut widened = false;
        for id in 0..n {
            if layout.branch_form[id] != Some(BranchForm::Rel8) {
                continue;
            }
            let fits = match unit.branch_target(id) {
                Some(tid) if section_of[tid] == section_of[id] => {
                    let delta = layout.addr[tid] as i64 - layout.end_addr(id) as i64;
                    BranchForm::Rel8.fits(delta)
                }
                // Cross-section or external target: must be rel32.
                _ => false,
            };
            if !fits {
                layout.branch_form[id] = Some(BranchForm::Rel32);
                widened = true;
            }
        }

        // Stability needs one full pass with no widening *and* no address
        // movement; iteration 1 always reports movement (addresses start
        // at zero).
        if !widened && !changed_addr && iteration > 1 {
            return Ok(layout);
        }
    }
    Err(RelaxError::DidNotConverge)
}

/// Relative displacement of a relaxed branch at `id` to its target, for
/// encoding: `target_addr - end_of_branch`.
pub fn branch_displacement(unit: &MaoUnit, layout: &Layout, id: EntryId) -> Option<i64> {
    let tid = unit.branch_target(id)?;
    Some(layout.addr[tid] as i64 - layout.end_addr(id) as i64)
}

// ---------------------------------------------------------------------------
// Incremental layout
// ---------------------------------------------------------------------------

/// A solved unit: the fragment model plus the layout it produced. Shared
/// between [`LayoutCache`] and the content-keyed slot in
/// [`crate::AnalysisCache`].
#[derive(Debug)]
pub(crate) struct Relaxed {
    pub(crate) model: FragmentModel,
    pub(crate) layout: Arc<Layout>,
}

impl Relaxed {
    pub(crate) fn build(unit: &MaoUnit) -> Result<Relaxed, RelaxError> {
        let model = FragmentModel::build(unit)?;
        let layout = Arc::new(model.solve(unit, false, None)?);
        Ok(Relaxed { model, layout })
    }

    /// Adopt an externally stored `layout` (e.g. from a persistent layout
    /// tier) instead of solving. Sound because [`FragmentModel`] carries
    /// only immutable per-entry structure — all fixpoint state lives inside
    /// [`FragmentModel::solve`] — so a model freshly built for `unit` plus
    /// the stored fixed point is exactly the state `build` would reach.
    /// Returns `None` when the layout's shape does not match the unit (a
    /// content-hash collision or a store bug); callers fall back to a solve.
    pub(crate) fn from_layout(unit: &MaoUnit, layout: Layout) -> Option<Relaxed> {
        let n = unit.entries().len();
        if layout.addr.len() != n || layout.size.len() != n || layout.branch_form.len() != n {
            return None;
        }
        let model = FragmentModel::build(unit).ok()?;
        Some(Relaxed {
            model,
            layout: Arc::new(layout),
        })
    }
}

/// Counters for one [`LayoutCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutCacheStats {
    /// `layout()` calls answered from the cached state without solving.
    pub hits: u64,
    /// Full solves (first layout, or recovery after a fallback).
    pub solves: u64,
    /// Incremental patches applied.
    pub patches: u64,
    /// Patches that had to fall back to a full rebuild (section-changing
    /// edits, or edits against an unknown unit state).
    pub fallbacks: u64,
    /// Cumulative fixed-point iterations across solves and patches.
    pub iterations: u64,
    /// Cumulative branch fit checks across solves and patches.
    pub rechecks: u64,
}

struct CacheEntry {
    relaxed: Arc<Relaxed>,
    epoch: u64,
    len: usize,
}

/// Incrementally maintained layout for a unit being transformed by a pass.
///
/// Contract: route every edit through [`LayoutCache::patch`]. Edits applied
/// behind the cache's back are mostly caught by the epoch/length check and
/// force a full re-solve, but a same-length in-place mutation would go
/// unnoticed — the five layout-consuming passes all honor the contract via
/// `LayoutProvider`.
#[derive(Default)]
pub struct LayoutCache {
    analyses: Option<Arc<crate::AnalysisCache>>,
    state: Option<CacheEntry>,
    stats: LayoutCacheStats,
}

impl LayoutCache {
    /// A cache that solves locally.
    pub fn new() -> LayoutCache {
        LayoutCache::default()
    }

    /// A cache that fetches full solves from (and publishes them to) the
    /// shared content-keyed analysis cache, so `maod` reuses layouts across
    /// requests. Patched layouts stay local — hashing the whole unit after
    /// every edit would cost more than the patch.
    pub fn with_analyses(analyses: Arc<crate::AnalysisCache>) -> LayoutCache {
        LayoutCache {
            analyses: Some(analyses),
            ..LayoutCache::default()
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> LayoutCacheStats {
        self.stats
    }

    /// The unit's layout: cached if the unit is unchanged since the last
    /// call, otherwise a full solve.
    pub fn layout(&mut self, unit: &MaoUnit) -> Result<Arc<Layout>, RelaxError> {
        if let Some(st) = &self.state {
            if st.epoch == unit.context_epoch() && st.len == unit.len() {
                self.stats.hits += 1;
                return Ok(st.relaxed.layout.clone());
            }
        }
        let relaxed = match &self.analyses {
            Some(cache) => cache.relaxed(unit)?,
            None => Arc::new(Relaxed::build(unit)?),
        };
        self.stats.solves += 1;
        self.stats.iterations += relaxed.layout.iterations as u64;
        self.stats.rechecks += relaxed.layout.metrics.rechecks as u64;
        let layout = relaxed.layout.clone();
        self.state = Some(CacheEntry {
            relaxed,
            epoch: unit.context_epoch(),
            len: unit.len(),
        });
        Ok(layout)
    }

    /// Apply `edits` to the unit and incrementally update the cached layout.
    ///
    /// The per-entry metas are spliced alongside the edit (only entries the
    /// edit introduces are encoded), the fragment list is rebuilt with pure
    /// integer work, and the fixed point re-runs; finalization copies the
    /// stable prefix — everything before the first edited entry whose branch
    /// form held — from the previous layout. Edits that move entries between
    /// sections fall back to a full re-solve on the next [`LayoutCache::layout`]
    /// call. Either way the unit ends up exactly as `MaoUnit::apply` would
    /// leave it, and the next layout equals a from-scratch [`relax`].
    pub fn patch(&mut self, unit: &mut MaoUnit, edits: EditSet) -> Result<(), RelaxError> {
        let pre_epoch = unit.context_epoch();
        let plan = match &self.state {
            Some(st) if st.epoch == pre_epoch && st.len == unit.len() => {
                splice_model(&st.relaxed.model, unit.entries(), &edits)
            }
            _ => None,
        };
        unit.apply(edits);
        let Some((mut model, first_edit)) = plan else {
            self.stats.fallbacks += 1;
            self.state = None;
            return Ok(());
        };
        if model.metas.len() != unit.len() {
            debug_assert_eq!(model.metas.len(), unit.len(), "spliced model diverged");
            self.stats.fallbacks += 1;
            self.state = None;
            return Ok(());
        }
        model.rebuild_frags();
        let st = self
            .state
            .take()
            .expect("a splice plan implies cached state");
        let layout = match model.solve(unit, true, Some((&st.relaxed.layout, first_edit))) {
            Ok(l) => l,
            Err(e) => {
                // The unit keeps the edit; the error (bad inserted entry,
                // divergence) will equally hit any later full solve.
                return Err(e);
            }
        };
        self.stats.patches += 1;
        self.stats.iterations += layout.iterations as u64;
        self.stats.rechecks += layout.metrics.rechecks as u64;
        self.state = Some(CacheEntry {
            relaxed: Arc::new(Relaxed {
                model,
                layout: Arc::new(layout),
            }),
            epoch: unit.context_epoch(),
            len: unit.len(),
        });
        Ok(())
    }

    /// Drop the cached state (the next `layout()` call re-solves).
    pub fn invalidate(&mut self) {
        self.state = None;
    }
}

/// Splice `edits` into a copy of the model's per-entry metas, mirroring the
/// exact entry order `MaoUnit::apply` produces. Returns the spliced model
/// (fragments not yet rebuilt) and the first edited entry id, or `None` when
/// the edit cannot be patched: it adds or removes a section directive
/// (moving every later entry to another address space), inserts in front of
/// one (the inherited section would be wrong), or introduces an entry that
/// does not encode.
fn splice_model(
    model: &FragmentModel,
    entries: &[Entry],
    edits: &EditSet,
) -> Option<(FragmentModel, EntryId)> {
    fn shifts_sections(e: &Entry) -> bool {
        matches!(e, Entry::Directive(d) if d.section_name().is_some())
    }
    fn push_new(
        metas: &mut Vec<EntryMeta>,
        section_of: &mut Vec<u32>,
        new_entries: &[Entry],
        sec: u32,
    ) -> Option<()> {
        for e in new_entries {
            if shifts_sections(e) {
                return None;
            }
            metas.push(EntryMeta::of(e).ok()?);
            section_of.push(sec);
        }
        Some(())
    }

    let n = entries.len();
    debug_assert_eq!(model.metas.len(), n);
    let mut metas = Vec::with_capacity(n + edits.len());
    let mut section_of = Vec::with_capacity(n + edits.len());
    for (id, entry) in entries.iter().enumerate() {
        let sec = model.section_of[id];
        if let Some(ins) = edits.inserted_before(id) {
            // Entries inserted before a section directive belong to the
            // *previous* section; bail rather than model that edge.
            if shifts_sections(entry) {
                return None;
            }
            push_new(&mut metas, &mut section_of, ins, sec)?;
        }
        if edits.is_deleted(id) {
            if shifts_sections(entry) {
                return None;
            }
        } else if let Some(rep) = edits.replacement(id) {
            if shifts_sections(entry) {
                return None;
            }
            push_new(&mut metas, &mut section_of, rep, sec)?;
        } else {
            metas.push(model.metas[id]);
            section_of.push(sec);
        }
        if let Some(ins) = edits.inserted_after(id) {
            push_new(&mut metas, &mut section_of, ins, sec)?;
        }
    }
    if let Some(at_end) = edits.inserted_before(usize::MAX) {
        let sec = model.section_of.last().copied().unwrap_or(0);
        push_new(&mut metas, &mut section_of, at_end, sec)?;
    }
    let first_edit = edits.touched_ids().first().copied().unwrap_or(n).min(n);
    Some((
        FragmentModel {
            metas,
            section_of,
            nsections: model.nsections,
            frags: Vec::new(),
            frag_of: Vec::new(),
            intra: Vec::new(),
        },
        first_edit,
    ))
}

// ---------------------------------------------------------------------------
// Process-wide totals (surfaced by `maod`'s stats response)
// ---------------------------------------------------------------------------

static TOTAL_LAYOUTS: AtomicU64 = AtomicU64::new(0);
static TOTAL_PATCHES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static TOTAL_RECHECKS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FRAGMENTS: AtomicU64 = AtomicU64::new(0);

fn record_totals(layout: &Layout) {
    if layout.metrics.patched {
        TOTAL_PATCHES.fetch_add(1, Ordering::Relaxed);
    } else {
        TOTAL_LAYOUTS.fetch_add(1, Ordering::Relaxed);
    }
    TOTAL_ITERATIONS.fetch_add(layout.iterations as u64, Ordering::Relaxed);
    TOTAL_RECHECKS.fetch_add(layout.metrics.rechecks as u64, Ordering::Relaxed);
    TOTAL_FRAGMENTS.fetch_add(layout.metrics.fragments as u64, Ordering::Relaxed);
}

/// Process-wide relaxation totals since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelaxTotals {
    /// Full fragment solves.
    pub layouts: u64,
    /// Incremental patches.
    pub patches: u64,
    /// Cumulative fixed-point iterations.
    pub iterations: u64,
    /// Cumulative branch fit checks (the worklist skips the rest).
    pub rechecks: u64,
    /// Cumulative fragment count across solves (divide by `layouts +
    /// patches` for the average model size).
    pub fragments: u64,
}

/// Snapshot of the process-wide relaxation totals.
pub fn relax_totals() -> RelaxTotals {
    RelaxTotals {
        layouts: TOTAL_LAYOUTS.load(Ordering::Relaxed),
        patches: TOTAL_PATCHES.load(Ordering::Relaxed),
        iterations: TOTAL_ITERATIONS.load(Ordering::Relaxed),
        rechecks: TOTAL_RECHECKS.load(Ordering::Relaxed),
        fragments: TOTAL_FRAGMENTS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::x86::Mnemonic;

    /// The exact scenario from the paper's §II listing: a forward `jmp` over
    /// a 0x7f-byte gap fits rel8; inserting a single NOP before the target
    /// pushes it to rel32, moving the target down by 4 bytes (1 for the NOP,
    /// 3 for the wider branch).
    #[test]
    fn paper_relaxation_example() {
        let body: String = std::iter::repeat("\tnop\n").take(0x7f).collect();
        let asm = format!(
            "main:\n\tpush %rbp\n\tmov %rsp, %rbp\n\tmovl $5, -4(%rbp)\n\tjmp .Lc\n{body}.Lc:\n\tcmpl $0, -4(%rbp)\n\tjne .Lb\n"
        );
        // Layout without the extra NOP: jmp at 0xb, target .Lc at 0x8c.
        let unit = MaoUnit::parse(&asm).unwrap();
        let layout = relax(&unit).unwrap();
        let jmp_id = unit
            .entries()
            .iter()
            .position(|e| e.insn().is_some_and(|i| i.mnemonic == Mnemonic::Jmp))
            .unwrap();
        assert_eq!(layout.addr[jmp_id], 0xb);
        assert_eq!(layout.size[jmp_id], 2, "jmp fits rel8");
        let lc = unit.find_label(".Lc").unwrap();
        assert_eq!(layout.addr[lc], 0x8c);

        // Insert one more NOP before .Lc: displacement 0x80 no longer fits
        // rel8, so the jmp becomes 5 bytes and .Lc lands at 0x90.
        let asm2 = asm.replace(".Lc:", "\tnop\n.Lc:");
        let unit2 = MaoUnit::parse(&asm2).unwrap();
        let layout2 = relax(&unit2).unwrap();
        let jmp_id2 = unit2
            .entries()
            .iter()
            .position(|e| e.insn().is_some_and(|i| i.mnemonic == Mnemonic::Jmp))
            .unwrap();
        assert_eq!(layout2.size[jmp_id2], 5, "jmp widened to rel32");
        let lc2 = unit2.find_label(".Lc").unwrap();
        assert_eq!(layout2.addr[lc2], 0x90);
        // jne at the end: backward branch to .Lb does not exist -> external.
        assert!(layout2.iterations >= 2);
    }

    #[test]
    fn backward_branch_stays_short() {
        let unit = MaoUnit::parse(".L1:\n\tnop\n\tjmp .L1\n").unwrap();
        let layout = relax(&unit).unwrap();
        let jmp = 2;
        assert_eq!(layout.size[jmp], 2);
        assert_eq!(branch_displacement(&unit, &layout, jmp), Some(-3));
    }

    #[test]
    fn external_target_uses_rel32() {
        let unit = MaoUnit::parse("\tjmp external_symbol\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.size[0], 5);
    }

    #[test]
    fn call_is_always_rel32() {
        let unit = MaoUnit::parse("f:\n\tcall f\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.size[1], 5);
        // Calls are fixed-size, not relaxable: no branch form is recorded
        // (matching the original engine, whose branch-form map never held
        // them either).
        assert_eq!(layout.branch_form[1], None);
    }

    #[test]
    fn align_directive_advances_cursor() {
        let unit = MaoUnit::parse("\tnop\n\t.p2align 4\n.L:\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.addr[0], 0);
        assert_eq!(layout.size[1], 15); // pad 1 -> 16
        assert_eq!(layout.addr[2], 16); // label after align
        assert_eq!(layout.addr[3], 16);
    }

    #[test]
    fn align_max_skip_abandons() {
        // .p2align 4,,3 at offset 1 would need 15 bytes > 3: abandoned.
        let unit = MaoUnit::parse("\tnop\n\t.p2align 4,,3\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.size[1], 0);
        assert_eq!(layout.addr[2], 1);
    }

    #[test]
    fn sections_have_independent_addresses() {
        let unit =
            MaoUnit::parse(".text\n\tnop\n.section .rodata\n\t.long 1\n.text\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        // .long starts at rodata offset 0 (entry 3; entry 2 is .section).
        assert_eq!(layout.addr[3], 0);
        assert_eq!(layout.size[3], 4);
        // ret resumes .text at offset 1 (after the nop).
        assert_eq!(layout.addr[5], 1);
    }

    #[test]
    fn chained_widening_converges() {
        // Two branches at ~0x7f distance where widening the first pushes the
        // second over the edge too.
        let pad: String = std::iter::repeat("\tnop\n").take(0x7c).collect();
        let asm = format!("\tjmp .La\n\tjmp .Lb\n{pad}.La:\n\tnop\n\tnop\n.Lb:\n\tret\n");
        let unit = MaoUnit::parse(&asm).unwrap();
        let layout = relax(&unit).unwrap();
        // First jmp: end 2 -> .La at 2+0x7c... both must agree with sizes.
        assert!(layout.iterations >= 2);
        for id in [0usize, 1usize] {
            let delta = branch_displacement(&unit, &layout, id).unwrap();
            assert!(layout.form(id).fits(delta));
        }
    }

    #[test]
    fn decode_lines_helper() {
        assert_eq!(Layout::decode_lines(0, 16), 1);
        assert_eq!(Layout::decode_lines(0, 17), 2);
        assert_eq!(Layout::decode_lines(15, 17), 2);
        assert_eq!(Layout::decode_lines(16, 32), 1);
        assert_eq!(Layout::decode_lines(5, 5), 0);
        // The Figure 4 scenario: ~70 bytes starting mid-line spans 6 lines.
        assert_eq!(Layout::decode_lines(10, 76), 5);
    }

    #[test]
    fn span_size() {
        let unit = MaoUnit::parse("\tnop\n\tnop\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.span_size(0, 2), 3);
    }

    // -- fragment engine vs reference ------------------------------------

    fn fixtures() -> Vec<String> {
        let body: String = std::iter::repeat("\tnop\n").take(0x7f).collect();
        let pad: String = std::iter::repeat("\tnop\n").take(0x7c).collect();
        vec![
            String::new(),
            "\tnop\n".into(),
            ".L1:\n\tnop\n\tjmp .L1\n".into(),
            "\tjmp external_symbol\n".into(),
            "f:\n\tcall f\n".into(),
            "\tnop\n\t.p2align 4\n.L:\n\tret\n".into(),
            "\tnop\n\t.p2align 4,,3\n\tret\n".into(),
            ".text\n\tnop\n.section .rodata\n\t.long 1\n.text\n\tret\n".into(),
            format!("main:\n\tpush %rbp\n\tjmp .Lc\n{body}.Lc:\n\tjne .Lb\n"),
            format!("\tjmp .La\n\tjmp .Lb\n{pad}.La:\n\tnop\n\tnop\n.Lb:\n\tret\n"),
            // Duplicate labels: both engines must pick the first definition.
            ".La:\n\tnop\n\tjmp .La\n.La:\n\tret\n".into(),
        ]
    }

    #[test]
    fn fragment_engine_matches_reference_on_fixtures() {
        for asm in fixtures() {
            let unit = MaoUnit::parse(&asm).unwrap();
            let fragment = relax(&unit).unwrap();
            let reference = relax_reference(&unit).unwrap();
            assert!(
                fragment.agrees_with(&reference),
                "divergence on:\n{asm}\nfragment: {fragment:?}\nreference: {reference:?}"
            );
        }
    }

    /// Regression for the old split-brain resolvers: `relax()` used its own
    /// first-occurrence label map while `branch_displacement()` used the
    /// unit index. With duplicate labels both now go through
    /// `MaoUnit::find_label`, so the form chosen for a branch and the
    /// displacement encoded for it always describe the same target.
    #[test]
    fn duplicate_labels_resolve_to_first_definition_everywhere() {
        let unit = MaoUnit::parse(".La:\n\tnop\n\tjmp .La\n.La:\n\tret\n").unwrap();
        let jmp = 2;
        assert_eq!(unit.branch_target(jmp), Some(0));
        let layout = relax(&unit).unwrap();
        // Backward to the first .La: short form, negative displacement.
        assert_eq!(layout.form(jmp), BranchForm::Rel8);
        let delta = branch_displacement(&unit, &layout, jmp).unwrap();
        assert_eq!(delta, -3);
        assert!(layout.form(jmp).fits(delta));
    }

    #[test]
    fn metrics_describe_the_fixed_point() {
        let unit = MaoUnit::parse(".L1:\n\tnop\n\tjmp .L1\n\tnop\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        // nop / jmp / nop+ret coalesce around the single variable fragment.
        assert_eq!(layout.metrics.variable_fragments, 1);
        assert_eq!(layout.metrics.fragments, 3);
        assert_eq!(layout.metrics.passes, layout.iterations - 1);
        // One branch, never widened: checked once, in pass 1.
        assert_eq!(layout.metrics.rechecks, 1);
        assert!(!layout.metrics.patched);
    }

    // -- incremental patches ---------------------------------------------

    fn parse_entries(asm: &str) -> Vec<Entry> {
        MaoUnit::parse(asm).unwrap().entries().to_vec()
    }

    /// Patch `unit` through a `LayoutCache` and check the resulting layout
    /// against a from-scratch solve of an identically edited clone.
    fn check_patch(asm: &str, edits: EditSet) {
        let mut unit = MaoUnit::parse(asm).unwrap();
        let mut expected_unit = unit.clone();
        expected_unit.apply(edits.clone());
        let expected = relax(&expected_unit).unwrap();

        let mut cache = LayoutCache::new();
        cache.layout(&unit).unwrap();
        cache.patch(&mut unit, edits).unwrap();
        assert_eq!(unit.entries(), expected_unit.entries());
        let patched = cache.layout(&unit).unwrap();
        assert!(
            patched.agrees_with(&expected),
            "patched layout diverged on:\n{asm}\npatched: {patched:?}\nexpected: {expected:?}"
        );
        assert!(expected.agrees_with(&relax_reference(&expected_unit).unwrap()));
    }

    #[test]
    fn patch_insert_nop_matches_full_relax() {
        let body: String = std::iter::repeat("\tnop\n").take(0x7e).collect();
        let asm = format!("main:\n\tjmp .Lc\n{body}.Lc:\n\tret\n");
        let unit = MaoUnit::parse(&asm).unwrap();
        let lc = unit.find_label(".Lc").unwrap();
        // One NOP before the target: pushes the jmp from rel8 to rel32.
        let mut edits = EditSet::new();
        edits.insert_before(lc, parse_entries("\tnop\n"));
        check_patch(&asm, edits);
    }

    #[test]
    fn patch_delete_and_replace_matches_full_relax() {
        let asm = ".L1:\n\tnop\n\tnop\n\tjmp .L1\n\tret\n";
        let mut edits = EditSet::new();
        edits.delete(1);
        edits.replace(2, parse_entries("\tmov %rsp, %rbp\n"));
        check_patch(asm, edits);
    }

    #[test]
    fn patch_label_edits_match_full_relax() {
        // Deleting the first duplicate re-resolves the branch to the second.
        let asm = ".La:\n\tnop\n\tjmp .La\n.La:\n\tret\n";
        let mut edits = EditSet::new();
        edits.delete(0);
        check_patch(asm, edits);
    }

    #[test]
    fn patch_append_matches_full_relax() {
        let asm = "\tnop\n\tret\n";
        let mut edits = EditSet::new();
        edits.insert_before(usize::MAX, parse_entries("\t.p2align 4\n\tnop\n"));
        check_patch(asm, edits);
    }

    #[test]
    fn patch_section_edit_falls_back_to_full_solve() {
        let asm = "\tnop\n\tret\n";
        let mut edits = EditSet::new();
        edits.insert_before(usize::MAX, parse_entries(".section .rodata\n\t.long 7\n"));
        check_patch(asm, edits); // falls back internally; result still exact

        let mut unit = MaoUnit::parse(asm).unwrap();
        let mut cache = LayoutCache::new();
        cache.layout(&unit).unwrap();
        let mut edits = EditSet::new();
        edits.insert_before(usize::MAX, parse_entries(".section .rodata\n\t.long 7\n"));
        cache.patch(&mut unit, edits).unwrap();
        assert_eq!(cache.stats().fallbacks, 1);
    }

    #[test]
    fn patched_layout_reports_patch_metrics() {
        let asm = ".L1:\n\tnop\n\tjmp .L1\n\tret\n";
        let mut unit = MaoUnit::parse(asm).unwrap();
        let mut cache = LayoutCache::new();
        cache.layout(&unit).unwrap();
        let mut edits = EditSet::new();
        edits.insert_before(1, parse_entries("\tnop\n"));
        cache.patch(&mut unit, edits).unwrap();
        let layout = cache.layout(&unit).unwrap();
        assert!(layout.metrics.patched);
        let stats = cache.stats();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.patches, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn layout_cache_hits_on_unchanged_unit() {
        let unit = MaoUnit::parse("\tnop\n\tret\n").unwrap();
        let mut cache = LayoutCache::new();
        let a = cache.layout(&unit).unwrap();
        let b = cache.layout(&unit).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().solves, 1);
    }
}
