//! Repeated relaxation: the address/size fixed point.
//!
//! Relaxation picks `rel8` vs `rel32` encodings for label-targeting branches
//! based on branch-target distances, which in turn depend on every
//! instruction's length — a circular dependency the paper resolves by
//! iterating to a fixed point (§II): *"In the implementation there is a
//! built-in limit of 100 iterations, but in practice almost every relaxation
//! succeeds in a few iterations, and it never fails."*
//!
//! Our implementation is monotone — a branch once widened to `rel32` never
//! shrinks back — which, together with bounded alignment padding, guarantees
//! termination well inside the limit.

use std::collections::HashMap;

use mao_asm::{Directive, Entry};
use mao_x86::encode::{encoded_length, BranchForm};
use mao_x86::Mnemonic;

use crate::unit::{EntryId, MaoUnit};

/// Built-in iteration limit from the paper.
pub const MAX_ITERATIONS: usize = 100;

/// Relaxation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelaxError {
    /// An instruction could not be encoded (outside the supported subset).
    Encode {
        /// Entry id of the offending instruction.
        id: EntryId,
        /// Encoder message.
        message: String,
    },
    /// The fixed point was not reached within [`MAX_ITERATIONS`].
    DidNotConverge,
}

impl std::fmt::Display for RelaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelaxError::Encode { id, message } => {
                write!(f, "entry {id}: {message}")
            }
            RelaxError::DidNotConverge => {
                write!(
                    f,
                    "relaxation did not converge in {MAX_ITERATIONS} iterations"
                )
            }
        }
    }
}

impl std::error::Error for RelaxError {}

/// The result of relaxation: per-entry addresses and sizes.
///
/// Addresses are section-relative (each section starts at 0). Entries in
/// non-text sections get data-directive sizes; unknown directives are
/// size 0.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Section-relative start address of each entry.
    pub addr: Vec<u64>,
    /// Size in bytes of each entry (0 for labels and most directives).
    pub size: Vec<u32>,
    /// Chosen branch form for label-targeting branch entries.
    pub branch_form: HashMap<EntryId, BranchForm>,
    /// Iterations needed to reach the fixed point.
    pub iterations: usize,
}

impl Layout {
    /// Address of the first byte after entry `id`.
    pub fn end_addr(&self, id: EntryId) -> u64 {
        self.addr[id] + u64::from(self.size[id])
    }

    /// Total byte size of an id range (assumes same section, contiguous).
    pub fn span_size(&self, first: EntryId, last: EntryId) -> u64 {
        self.end_addr(last).saturating_sub(self.addr[first])
    }

    /// Number of 16-byte decode lines the byte range `[start, end)` touches.
    pub fn decode_lines(start: u64, end: u64) -> u64 {
        if end <= start {
            return 0;
        }
        (end - 1) / 16 - start / 16 + 1
    }
}

/// Is this a branch whose encoding relaxation must choose?
fn relaxable_branch(e: &Entry) -> bool {
    match e.insn() {
        Some(i) => i.mnemonic.is_branch() && i.target_label().is_some(),
        None => false,
    }
}

/// Run repeated relaxation over the whole unit.
///
/// Every section is laid out independently from address 0. Branches to
/// labels defined in the same section may use `rel8`; branches to anything
/// else (other sections, external symbols) are `rel32`.
pub fn relax(unit: &MaoUnit) -> Result<Layout, RelaxError> {
    let n = unit.len();
    let section_names = unit.section_names();
    // Section index per entry (sections with the same name share one space).
    let mut section_of: Vec<usize> = Vec::with_capacity(n);
    {
        let mut ids: HashMap<&str, usize> = HashMap::new();
        let mut next = 0usize;
        for name in &section_names {
            let id = *ids.entry(name).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            });
            section_of.push(id);
        }
    }

    let mut layout = Layout {
        addr: vec![0; n],
        size: vec![0; n],
        branch_form: HashMap::new(),
        iterations: 0,
    };

    // Optimistic start: all relaxable branches short.
    for (id, e) in unit.entries().iter().enumerate() {
        if relaxable_branch(e) {
            let form = if e.insn().map(|i| i.mnemonic) == Some(Mnemonic::Call) {
                BranchForm::Rel32
            } else {
                BranchForm::Rel8
            };
            layout.branch_form.insert(id, form);
        }
    }

    // Label -> (section, entry id). Addresses are re-read each iteration.
    let mut label_entry: HashMap<&str, EntryId> = HashMap::new();
    for (id, e) in unit.entries().iter().enumerate() {
        if let Entry::Label(l) = e {
            label_entry.entry(l.as_str()).or_insert(id);
        }
    }

    for iteration in 1..=MAX_ITERATIONS {
        layout.iterations = iteration;

        // 1. Assign addresses with current branch forms.
        let mut cursor: HashMap<usize, u64> = HashMap::new();
        let mut changed_addr = false;
        for (id, e) in unit.entries().iter().enumerate() {
            let sec = section_of[id];
            let pc = cursor.entry(sec).or_insert(0);
            // Alignment directives move the cursor before the entry "starts".
            if let Entry::Directive(Directive::Align(a)) = e {
                let align = a.alignment.max(1);
                let aligned = pc.next_multiple_of(align);
                let skip = aligned - *pc;
                let allowed = a.max_skip.map_or(true, |max| skip <= max);
                let new_pc = if allowed { aligned } else { *pc };
                if layout.addr[id] != *pc {
                    changed_addr = true;
                }
                layout.addr[id] = *pc;
                layout.size[id] = (new_pc - *pc) as u32;
                *pc = new_pc;
                continue;
            }
            if layout.addr[id] != *pc {
                changed_addr = true;
            }
            layout.addr[id] = *pc;
            let size: u64 = match e {
                Entry::Label(_) => 0,
                Entry::Insn(i) => {
                    let form = layout
                        .branch_form
                        .get(&id)
                        .copied()
                        .unwrap_or(BranchForm::Rel32);
                    encoded_length(i, form).map_err(|e| RelaxError::Encode {
                        id,
                        message: e.to_string(),
                    })? as u64
                }
                Entry::Directive(d) => d.data_size().unwrap_or(0),
            };
            if layout.size[id] != size as u32 {
                changed_addr = true;
            }
            layout.size[id] = size as u32;
            *pc += size;
        }

        // 2. Widen branches whose target no longer fits rel8.
        let mut widened = false;
        let short_ids: Vec<EntryId> = layout
            .branch_form
            .iter()
            .filter(|&(_, form)| *form == BranchForm::Rel8)
            .map(|(&id, _)| id)
            .collect();
        for id in short_ids {
            let insn = unit.insn(id).expect("branch entries are instructions");
            let target = insn.target_label().expect("relaxable branch has label");
            let fits = match label_entry.get(target) {
                Some(&tid) if section_of[tid] == section_of[id] => {
                    let delta = layout.addr[tid] as i64 - layout.end_addr(id) as i64;
                    BranchForm::Rel8.fits(delta)
                }
                // Cross-section or external target: must be rel32.
                _ => false,
            };
            if !fits {
                layout.branch_form.insert(id, BranchForm::Rel32);
                widened = true;
            }
        }

        if !widened && !changed_addr && iteration > 1 {
            return Ok(layout);
        }
        if !widened && iteration > 1 {
            // Addresses moved but no branch changed: one more pass will
            // confirm stability; loop continues.
        }
    }
    Err(RelaxError::DidNotConverge)
}

/// Relative displacement of a relaxed branch at `id` to its target, for
/// encoding: `target_addr - end_of_branch`.
pub fn branch_displacement(unit: &MaoUnit, layout: &Layout, id: EntryId) -> Option<i64> {
    let insn = unit.insn(id)?;
    let target = insn.target_label()?;
    let tid = unit.find_label(target)?;
    Some(layout.addr[tid] as i64 - layout.end_addr(id) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact scenario from the paper's §II listing: a forward `jmp` over
    /// a 0x7f-byte gap fits rel8; inserting a single NOP before the target
    /// pushes it to rel32, moving the target down by 4 bytes (1 for the NOP,
    /// 3 for the wider branch).
    #[test]
    fn paper_relaxation_example() {
        let body: String = std::iter::repeat("\tnop\n").take(0x7f).collect();
        let asm = format!(
            "main:\n\tpush %rbp\n\tmov %rsp, %rbp\n\tmovl $5, -4(%rbp)\n\tjmp .Lc\n{body}.Lc:\n\tcmpl $0, -4(%rbp)\n\tjne .Lb\n"
        );
        // Layout without the extra NOP: jmp at 0xb, target .Lc at 0x8c.
        let unit = MaoUnit::parse(&asm).unwrap();
        let layout = relax(&unit).unwrap();
        let jmp_id = unit
            .entries()
            .iter()
            .position(|e| e.insn().is_some_and(|i| i.mnemonic == Mnemonic::Jmp))
            .unwrap();
        assert_eq!(layout.addr[jmp_id], 0xb);
        assert_eq!(layout.size[jmp_id], 2, "jmp fits rel8");
        let lc = unit.find_label(".Lc").unwrap();
        assert_eq!(layout.addr[lc], 0x8c);

        // Insert one more NOP before .Lc: displacement 0x80 no longer fits
        // rel8, so the jmp becomes 5 bytes and .Lc lands at 0x90.
        let asm2 = asm.replace(".Lc:", "\tnop\n.Lc:");
        let unit2 = MaoUnit::parse(&asm2).unwrap();
        let layout2 = relax(&unit2).unwrap();
        let jmp_id2 = unit2
            .entries()
            .iter()
            .position(|e| e.insn().is_some_and(|i| i.mnemonic == Mnemonic::Jmp))
            .unwrap();
        assert_eq!(layout2.size[jmp_id2], 5, "jmp widened to rel32");
        let lc2 = unit2.find_label(".Lc").unwrap();
        assert_eq!(layout2.addr[lc2], 0x90);
        // jne at the end: backward branch to .Lb does not exist -> external.
        assert!(layout2.iterations >= 2);
    }

    #[test]
    fn backward_branch_stays_short() {
        let unit = MaoUnit::parse(".L1:\n\tnop\n\tjmp .L1\n").unwrap();
        let layout = relax(&unit).unwrap();
        let jmp = 2;
        assert_eq!(layout.size[jmp], 2);
        assert_eq!(branch_displacement(&unit, &layout, jmp), Some(-3));
    }

    #[test]
    fn external_target_uses_rel32() {
        let unit = MaoUnit::parse("\tjmp external_symbol\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.size[0], 5);
    }

    #[test]
    fn call_is_always_rel32() {
        let unit = MaoUnit::parse("f:\n\tcall f\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.size[1], 5);
    }

    #[test]
    fn align_directive_advances_cursor() {
        let unit = MaoUnit::parse("\tnop\n\t.p2align 4\n.L:\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.addr[0], 0);
        assert_eq!(layout.size[1], 15); // pad 1 -> 16
        assert_eq!(layout.addr[2], 16); // label after align
        assert_eq!(layout.addr[3], 16);
    }

    #[test]
    fn align_max_skip_abandons() {
        // .p2align 4,,3 at offset 1 would need 15 bytes > 3: abandoned.
        let unit = MaoUnit::parse("\tnop\n\t.p2align 4,,3\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.size[1], 0);
        assert_eq!(layout.addr[2], 1);
    }

    #[test]
    fn sections_have_independent_addresses() {
        let unit =
            MaoUnit::parse(".text\n\tnop\n.section .rodata\n\t.long 1\n.text\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        // .long starts at rodata offset 0 (entry 3; entry 2 is .section).
        assert_eq!(layout.addr[3], 0);
        assert_eq!(layout.size[3], 4);
        // ret resumes .text at offset 1 (after the nop).
        assert_eq!(layout.addr[5], 1);
    }

    #[test]
    fn chained_widening_converges() {
        // Two branches at ~0x7f distance where widening the first pushes the
        // second over the edge too.
        let pad: String = std::iter::repeat("\tnop\n").take(0x7c).collect();
        let asm = format!("\tjmp .La\n\tjmp .Lb\n{pad}.La:\n\tnop\n\tnop\n.Lb:\n\tret\n");
        let unit = MaoUnit::parse(&asm).unwrap();
        let layout = relax(&unit).unwrap();
        // First jmp: end 2 -> .La at 2+0x7c... both must agree with sizes.
        assert!(layout.iterations >= 2);
        for id in [0usize, 1usize] {
            let delta = branch_displacement(&unit, &layout, id).unwrap();
            let form = layout.branch_form[&id];
            assert!(form.fits(delta));
        }
    }

    #[test]
    fn decode_lines_helper() {
        assert_eq!(Layout::decode_lines(0, 16), 1);
        assert_eq!(Layout::decode_lines(0, 17), 2);
        assert_eq!(Layout::decode_lines(15, 17), 2);
        assert_eq!(Layout::decode_lines(16, 32), 1);
        assert_eq!(Layout::decode_lines(5, 5), 0);
        // The Figure 4 scenario: ~70 bytes starting mid-line spans 6 lines.
        assert_eq!(Layout::decode_lines(10, 76), 5);
    }

    #[test]
    fn span_size() {
        let unit = MaoUnit::parse("\tnop\n\tnop\n\tret\n").unwrap();
        let layout = relax(&unit).unwrap();
        assert_eq!(layout.span_size(0, 2), 3);
    }
}
