//! Loop detection after Havlak: the loop structure graph (LSG).
//!
//! The paper (§II): *"MAO offers a loop detection mechanism based on Havlak.
//! It builds a hierarchical loop structure graph (LSG) representing the
//! nesting relationships of a given loop nest. ... The algorithm allows
//! distinguishing between reducible and irreducible loops."*
//!
//! This is Havlak's union-find refinement of Tarjan's interval algorithm
//! (*Nesting of reducible and irreducible loops*, TOPLAS 1997): one DFS, one
//! reverse-order pass collapsing loop bodies with union-find.

use crate::cfg::{BlockId, Cfg};

/// Classification of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Natural loop with a single-entry header.
    Reducible,
    /// Multiple-entry loop; passes decide their own policy for these.
    Irreducible,
    /// Single-block self loop.
    SelfLoop,
}

/// One loop in the LSG.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header block.
    pub header: BlockId,
    /// Kind.
    pub kind: LoopKind,
    /// Blocks directly in this loop, including the header and the headers of
    /// directly nested loops (but not the nested loops' other blocks).
    pub blocks: Vec<BlockId>,
    /// Parent loop index in [`LoopNest::loops`], `None` for outermost loops.
    pub parent: Option<usize>,
    /// Child loop indices.
    pub children: Vec<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
}

impl Loop {
    /// All blocks of this loop including nested loops' blocks.
    pub fn all_blocks(&self, nest: &LoopNest) -> Vec<BlockId> {
        let mut out = self.blocks.clone();
        for &c in &self.children {
            for b in nest.loops[c].all_blocks(nest) {
                if !out.contains(&b) {
                    out.push(b);
                }
            }
        }
        out
    }
}

/// The hierarchical loop structure graph of one function.
#[derive(Debug, Clone, Default)]
pub struct LoopNest {
    /// All loops, inner loops after their outer loops.
    pub loops: Vec<Loop>,
}

impl LoopNest {
    /// Number of loops found.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// No loops?
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Indices of loops with no children (the innermost ones — where the
    /// alignment passes operate).
    pub fn innermost(&self) -> Vec<usize> {
        (0..self.loops.len())
            .filter(|&i| self.loops[i].children.is_empty())
            .collect()
    }

    /// The innermost loop containing block `b`, if any.
    pub fn loop_of(&self, b: BlockId) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, l) in self.loops.iter().enumerate() {
            if l.blocks.contains(&b) {
                best = match best {
                    Some(j) if self.loops[j].depth >= l.depth => Some(j),
                    _ => Some(i),
                };
            }
        }
        best
    }
}

/// Union-find over block indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, child: usize, header: usize) {
        let c = self.find(child);
        let h = self.find(header);
        self.parent[c] = h;
    }
}

/// Find all loops of `cfg` with Havlak's algorithm.
pub fn find_loops(cfg: &Cfg) -> LoopNest {
    let n = cfg.len();
    if n == 0 {
        return LoopNest::default();
    }

    // 1. DFS numbering from the entry block.
    const UNVISITED: usize = usize::MAX;
    let mut number = vec![UNVISITED; n]; // block -> dfs index
    let mut last = vec![0usize; n]; // dfs index -> max dfs index in subtree
    let mut nodes: Vec<BlockId> = Vec::with_capacity(n); // dfs index -> block

    // Iterative DFS recording preorder numbers and subtree extents.
    {
        let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
        number[0] = 0;
        nodes.push(0);
        while let Some(&mut (b, ref mut child_idx)) = stack.last_mut() {
            if *child_idx < cfg.blocks[b].succs.len() {
                let s = cfg.blocks[b].succs[*child_idx];
                *child_idx += 1;
                if number[s] == UNVISITED {
                    number[s] = nodes.len();
                    nodes.push(s);
                    stack.push((s, 0));
                }
            } else {
                last[number[b]] = nodes.len() - 1;
                stack.pop();
            }
        }
    }
    let dfs_count = nodes.len();
    let is_ancestor = |w: usize, v: usize, last: &[usize]| w <= v && v <= last[w];

    // 2. Split predecessors into back and non-back edges (in DFS space).
    let mut back_preds: Vec<Vec<usize>> = vec![Vec::new(); dfs_count];
    let mut non_back_preds: Vec<Vec<usize>> = vec![Vec::new(); dfs_count];
    for w in 0..dfs_count {
        let block = nodes[w];
        for &pb in &cfg.blocks[block].preds {
            if number[pb] == UNVISITED {
                continue; // unreachable predecessor
            }
            let v = number[pb];
            if is_ancestor(w, v, &last) {
                back_preds[w].push(v);
            } else {
                non_back_preds[w].push(v);
            }
        }
    }

    // 3. Reverse-order collapse with union-find.
    #[derive(Clone, Copy, PartialEq)]
    enum NodeType {
        NonHeader,
        Reducible,
        SelfLoop,
        Irreducible,
    }
    let mut types = vec![NodeType::NonHeader; dfs_count];
    let mut uf = UnionFind::new(dfs_count);
    // header[v] in DFS space: innermost loop header containing v.
    let mut header: Vec<Option<usize>> = vec![None; dfs_count];
    // Raw loops discovered: (header dfs, kind, body dfs list).
    let mut raw: Vec<(usize, LoopKind, Vec<usize>)> = Vec::new();

    for w in (0..dfs_count).rev() {
        let mut node_pool: Vec<usize> = Vec::new();
        for &v in &back_preds[w] {
            if v != w {
                let r = uf.find(v);
                if !node_pool.contains(&r) {
                    node_pool.push(r);
                }
            } else {
                types[w] = NodeType::SelfLoop;
            }
        }
        if !node_pool.is_empty() && types[w] == NodeType::NonHeader {
            types[w] = NodeType::Reducible;
        }

        let mut work_list = node_pool.clone();
        while let Some(x) = work_list.pop() {
            for i in 0..non_back_preds[x].len() {
                let y = non_back_preds[x][i];
                let yr = uf.find(y);
                if !is_ancestor(w, yr, &last) {
                    // Entry into the loop not through the header.
                    types[w] = NodeType::Irreducible;
                    if !non_back_preds[w].contains(&yr) {
                        non_back_preds[w].push(yr);
                    }
                } else if yr != w && !node_pool.contains(&yr) {
                    node_pool.push(yr);
                    work_list.push(yr);
                }
            }
        }

        if !node_pool.is_empty() || types[w] == NodeType::SelfLoop {
            let kind = match types[w] {
                NodeType::SelfLoop => LoopKind::SelfLoop,
                NodeType::Irreducible => LoopKind::Irreducible,
                _ => LoopKind::Reducible,
            };
            for &x in &node_pool {
                header[x] = Some(w);
                uf.union(x, w);
            }
            raw.push((w, kind, node_pool));
        }
    }

    // 4. Build the nest: loops were discovered inner-first (reverse DFS);
    //    nesting comes from the header[] chain of each loop's header node.
    let mut nest = LoopNest::default();
    // Map header dfs -> loop index; process outer loops first.
    raw.reverse();
    let mut loop_of_header: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for (hdr, kind, body) in raw {
        let parent = header[hdr].and_then(|h| loop_of_header.get(&h).copied());
        let depth = parent.map_or(1, |p| nest.loops[p].depth + 1);
        let mut blocks: Vec<BlockId> = vec![nodes[hdr]];
        for v in body {
            let b = nodes[v];
            if !blocks.contains(&b) {
                blocks.push(b);
            }
        }
        let idx = nest.loops.len();
        nest.loops.push(Loop {
            header: nodes[hdr],
            kind,
            blocks,
            parent,
            children: Vec::new(),
            depth,
        });
        if let Some(p) = parent {
            nest.loops[p].children.push(idx);
        }
        loop_of_header.insert(hdr, idx);
    }
    nest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::MaoUnit;

    fn loops_for(text: &str) -> (Cfg, LoopNest) {
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        let nest = find_loops(&cfg);
        (cfg, nest)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (_c, nest) = loops_for(".type f, @function\nf:\n\tnop\n\tret\n");
        assert!(nest.is_empty());
    }

    #[test]
    fn simple_loop() {
        let (_c, nest) = loops_for(
            r#"
	.type	f, @function
f:
	movl $0, %eax
.L1:
	addl $1, %eax
	cmpl $10, %eax
	jne .L1
	ret
"#,
        );
        assert_eq!(nest.len(), 1);
        let l = &nest.loops[0];
        assert_eq!(l.kind, LoopKind::SelfLoop);
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn two_block_loop_is_reducible() {
        let (_c, nest) = loops_for(
            r#"
	.type	f, @function
f:
.L1:
	cmpl $0, %eax
	je .Lbody
	ret
.Lbody:
	addl $1, %eax
	jmp .L1
"#,
        );
        assert_eq!(nest.len(), 1);
        assert_eq!(nest.loops[0].kind, LoopKind::Reducible);
        assert!(nest.loops[0].blocks.len() >= 2);
    }

    #[test]
    fn nested_loops() {
        let (_c, nest) = loops_for(
            r#"
	.type	f, @function
f:
	movl $0, %eax
.Louter:
	movl $0, %ebx
.Linner:
	addl $1, %ebx
	cmpl $2, %ebx
	jne .Linner
	addl $1, %eax
	cmpl $2, %eax
	jne .Louter
	ret
"#,
        );
        assert_eq!(nest.len(), 2);
        let inner_idx = nest
            .loops
            .iter()
            .position(|l| l.depth == 2)
            .expect("an inner loop");
        let inner = &nest.loops[inner_idx];
        let outer = &nest.loops[inner.parent.unwrap()];
        assert_eq!(outer.depth, 1);
        assert!(outer.children.contains(&inner_idx));
        assert_eq!(nest.innermost(), vec![inner_idx]);
        // loop_of picks the innermost containing loop for the inner header.
        assert_eq!(nest.loop_of(inner.header), Some(inner_idx));
    }

    #[test]
    fn irreducible_loop_detected() {
        // Two entries into the cycle .La <-> .Lb.
        let (_c, nest) = loops_for(
            r#"
	.type	f, @function
f:
	cmpl $0, %eax
	je .Lb
.La:
	addl $1, %eax
	cmpl $5, %eax
	jl .Lb
	ret
.Lb:
	addl $2, %eax
	cmpl $9, %eax
	jl .La
	ret
"#,
        );
        assert!(
            nest.loops.iter().any(|l| l.kind == LoopKind::Irreducible),
            "found: {:?}",
            nest.loops.iter().map(|l| l.kind).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_blocks_includes_children() {
        let (_c, nest) = loops_for(
            r#"
	.type	f, @function
f:
.Louter:
	movl $0, %ebx
.Linner:
	addl $1, %ebx
	jne .Linner
	cmpl $2, %eax
	jne .Louter
	ret
"#,
        );
        let outer_idx = nest.loops.iter().position(|l| l.depth == 1).unwrap();
        let all = nest.loops[outer_idx].all_blocks(&nest);
        let inner_idx = nest.loops.iter().position(|l| l.depth == 2).unwrap();
        for b in &nest.loops[inner_idx].blocks {
            assert!(all.contains(b));
        }
    }

    /// Build a [`Cfg`] directly from an edge list — no assembly, no parser.
    /// Havlak runs purely on block structure, so hand-built graphs let the
    /// tests pin down exactly which shapes each classification covers.
    fn cfg_from_edges(n: usize, edges: &[(usize, usize)]) -> Cfg {
        let mut blocks = vec![crate::cfg::BasicBlock::default(); n];
        for &(a, b) in edges {
            blocks[a].succs.push(b);
            blocks[b].preds.push(a);
        }
        Cfg {
            blocks,
            unresolved_indirect: false,
            resolved_indirect: 0,
        }
    }

    #[test]
    fn hand_built_reducible_loop() {
        // 0 -> 1 -> 2 -> 3, with the back edge 2 -> 1: one natural loop
        // headed at 1 with body {1, 2}.
        let cfg = cfg_from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let nest = find_loops(&cfg);
        assert_eq!(nest.len(), 1);
        let l = &nest.loops[0];
        assert_eq!(l.kind, LoopKind::Reducible);
        assert_eq!(l.header, 1);
        let mut blocks = l.blocks.clone();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![1, 2]);
    }

    #[test]
    fn hand_built_self_loop() {
        let cfg = cfg_from_edges(3, &[(0, 1), (1, 1), (1, 2)]);
        let nest = find_loops(&cfg);
        assert_eq!(nest.len(), 1);
        assert_eq!(nest.loops[0].kind, LoopKind::SelfLoop);
        assert_eq!(nest.loops[0].header, 1);
    }

    #[test]
    fn hand_built_irreducible_region() {
        // The classic two-entry cycle: both 1 and 2 are entered from the
        // entry block, and they branch to each other. Neither dominates the
        // other, so the region is irreducible.
        let cfg = cfg_from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 1), (1, 3)]);
        let nest = find_loops(&cfg);
        assert!(
            nest.loops.iter().any(|l| l.kind == LoopKind::Irreducible),
            "found: {:?}",
            nest.loops.iter().map(|l| l.kind).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hand_built_nested_loops() {
        // Outer loop headed at 1 (back edge 3 -> 1) containing an inner
        // loop headed at 2 (back edge 3 -> 2).
        let cfg = cfg_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 2), (3, 1), (1, 4)]);
        let nest = find_loops(&cfg);
        assert_eq!(nest.len(), 2);
        let inner_idx = nest.loops.iter().position(|l| l.header == 2).unwrap();
        let outer_idx = nest.loops.iter().position(|l| l.header == 1).unwrap();
        assert_eq!(nest.loops[inner_idx].depth, 2);
        assert_eq!(nest.loops[outer_idx].depth, 1);
        assert_eq!(nest.loops[inner_idx].parent, Some(outer_idx));
        assert!(nest.loops[outer_idx].children.contains(&inner_idx));
        assert_eq!(nest.innermost(), vec![inner_idx]);
        assert_eq!(nest.loop_of(3), Some(inner_idx));
    }

    #[test]
    fn loop_spanning_a_section_split_is_detected() {
        // The paper's cross-section case: a function interrupted mid-body by
        // a .rodata jump table and resumed in .text. The loop's back branch
        // lives in the second span; Havlak must still see one reducible
        // loop across the split.
        let (cfg, nest) = loops_for(
            r#"
	.text
	.type	f, @function
f:
	movl $0, %eax
.Lhead:
	addl $1, %eax
	jmp .Ltail
	.section	.rodata
.Ltable:
	.quad	.Lhead
	.text
.Ltail:
	cmpl $4, %eax
	jne .Lhead
	ret
"#,
        );
        assert!(cfg.len() >= 3, "spans produce a multi-block CFG");
        assert_eq!(nest.len(), 1);
        assert_eq!(nest.loops[0].kind, LoopKind::Reducible);
        assert!(nest.loops[0].blocks.len() >= 2);
    }

    #[test]
    fn unreachable_blocks_ignored() {
        let (_c, nest) = loops_for(
            r#"
	.type	f, @function
f:
	ret
.Ldead:
	jmp .Ldead
"#,
        );
        // The dead self-loop is not reachable from entry; Havlak runs on the
        // DFS tree only.
        assert!(nest.is_empty());
    }
}
