//! The `mao` command-line driver.
//!
//! Mirrors the paper's invocation style:
//!
//! ```text
//! mao --mao=LFIND=trace[0]:ASM=o[/dev/null] in.s
//! ```
//!
//! `--mao=` options select and order the passes; everything else is treated
//! as an input assembly file (the real MAO forwards unknown options to gas;
//! this reproduction has no gas behind it, so unknown options are reported).
//! The pseudo-passes `READ` (implicit first) and `ASM` (emission, with an
//! `o[path]` option) frame the pipeline exactly as §III.A describes.

use std::io::Write as _;
use std::process::ExitCode;

use mao::pass::{parse_invocations, registry, run_pipeline_with, PassInvocation, PipelineConfig};
use mao::MaoUnit;

fn usage() -> &'static str {
    "usage: mao [--mao=PASS[=opt[val],...][:PASS...]]... [--jobs N] [--list-passes] input.s\n\
     \n\
     --jobs N   worker threads for function-level passes (0 = all cores;\n\
     \x20           default 1, or the MAO_JOBS environment variable when set).\n\
     \x20           Output is byte-identical for every N.\n\
     The ASM pseudo-pass emits assembly: ASM=o[/path/to/out.s] (default stdout).\n\
     Without any ASM pass, the transformed unit is emitted to stdout."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut option_strings: Vec<String> = Vec::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut list_passes = false;
    // Default from the environment; --jobs on the command line wins.
    let mut jobs: usize = std::env::var("MAO_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(rest) = arg.strip_prefix("--mao=") {
            option_strings.push(rest.to_string());
        } else if arg == "--list-passes" {
            list_passes = true;
        } else if arg == "--jobs" {
            let Some(n) = iter.next().and_then(|v| v.parse().ok()) else {
                eprintln!("mao: --jobs needs a numeric argument (0 = all cores)");
                return ExitCode::FAILURE;
            };
            jobs = n;
        } else if let Some(rest) = arg.strip_prefix("--jobs=") {
            let Ok(n) = rest.parse() else {
                eprintln!("mao: --jobs needs a numeric argument (0 = all cores)");
                return ExitCode::FAILURE;
            };
            jobs = n;
        } else if arg == "--help" || arg == "-h" {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        } else if arg.starts_with('-') {
            eprintln!("mao: unknown option `{arg}` (gas passthrough is not supported)");
            return ExitCode::FAILURE;
        } else {
            inputs.push(arg.clone());
        }
    }

    if list_passes {
        let reg = registry();
        println!("{:<10} description", "pass");
        for (name, factory) in &reg {
            println!("{:<10} {}", name, factory().description());
        }
        println!("{:<10} emit assembly output: ASM=o[path]", "ASM");
        return ExitCode::SUCCESS;
    }

    let Some(input) = inputs.first() else {
        eprintln!("mao: no input file\n{}", usage());
        return ExitCode::FAILURE;
    };

    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mao: cannot read `{input}`: {e}");
            return ExitCode::FAILURE;
        }
    };

    // READ: parsing is "a pass as well, but called by default as the first
    // pass" (§III.A).
    let mut unit = match MaoUnit::parse(&text) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("mao: {input}:{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut invocations: Vec<PassInvocation> = Vec::new();
    for s in &option_strings {
        match parse_invocations(s) {
            Ok(mut invs) => invocations.append(&mut invs),
            Err(e) => {
                eprintln!("mao: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Split out ASM pseudo-passes; run optimization segments between them.
    let config = PipelineConfig { jobs };
    let mut emitted = false;
    let mut segment: Vec<PassInvocation> = Vec::new();
    let run_segment = |unit: &mut MaoUnit, segment: &mut Vec<PassInvocation>| -> bool {
        if segment.is_empty() {
            return true;
        }
        match run_pipeline_with(unit, segment, None, &config) {
            Ok(report) => {
                for line in &report.trace {
                    eprintln!("[mao] {line}");
                }
                for (name, stats) in &report.passes {
                    if stats.transformations > 0 || stats.matches > 0 {
                        eprintln!(
                            "[mao] {name}: {} transformations, {} matches",
                            stats.transformations, stats.matches
                        );
                    }
                }
                segment.clear();
                true
            }
            Err(e) => {
                eprintln!("mao: {e}");
                false
            }
        }
    };

    for inv in invocations {
        if inv.name == "ASM" {
            if !run_segment(&mut unit, &mut segment) {
                return ExitCode::FAILURE;
            }
            let out = unit.emit();
            match inv.options.get("o") {
                Some("-") | None => {
                    print!("{out}");
                    let _ = std::io::stdout().flush();
                }
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &out) {
                        eprintln!("mao: cannot write `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            emitted = true;
        } else if inv.name == "READ" {
            // Already performed; accept for command-line compatibility.
        } else {
            segment.push(inv);
        }
    }
    if !run_segment(&mut unit, &mut segment) {
        return ExitCode::FAILURE;
    }
    if !emitted {
        print!("{}", unit.emit());
        let _ = std::io::stdout().flush();
    }
    ExitCode::SUCCESS
}
