//! Edge-profile construction from hardware event samples.
//!
//! The paper (§II): *"Similar to Chen \[3\] we plan to construct edge
//! profiles from this information as future work, as that information can
//! make a large performance difference in certain contexts."* This module
//! implements that future work: PMU samples land on instructions; summing
//! them per basic block gives noisy block weights; flow conservation
//! (weight(b) = Σ incoming = Σ outgoing) then smooths the noise and
//! assigns frequencies to CFG edges.

use std::collections::HashMap;

use crate::cfg::{BlockId, Cfg};
use crate::profile::Profile;
use crate::unit::{Function, MaoUnit};

/// Estimated execution frequencies for one function's CFG.
#[derive(Debug, Clone, Default)]
pub struct EdgeProfile {
    /// Estimated execution count per block.
    pub block_weight: Vec<f64>,
    /// Estimated traversal count per (from, to) edge.
    pub edge_weight: HashMap<(BlockId, BlockId), f64>,
}

impl EdgeProfile {
    /// Weight of one edge (0 if absent).
    pub fn edge(&self, from: BlockId, to: BlockId) -> f64 {
        self.edge_weight.get(&(from, to)).copied().unwrap_or(0.0)
    }

    /// The hottest block.
    pub fn hottest_block(&self) -> Option<BlockId> {
        self.block_weight
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(b, _)| b)
    }

    /// Estimated taken-probability of a conditional branch terminating
    /// `block` with `taken_succ` as its branch-target successor.
    pub fn taken_probability(&self, block: BlockId, taken_succ: BlockId) -> f64 {
        let total = self.block_weight[block];
        if total <= 0.0 {
            return 0.0;
        }
        (self.edge(block, taken_succ) / total).clamp(0.0, 1.0)
    }
}

/// Build an edge profile for `function` from event samples.
///
/// `event` names the PMU event whose per-site counts seed the block
/// weights (sites are instruction ordinals within the function, the same
/// keying the [`Profile`] uses). Iterative flow balancing then reconciles
/// the seeds: each round sets every block to the average of its own
/// weight, its incoming flow, and its outgoing flow, and splits flows
/// proportionally — after a few rounds sampling noise is spread along the
/// paths the samples support.
pub fn edge_profile(
    unit: &MaoUnit,
    function: &Function,
    cfg: &Cfg,
    profile: &Profile,
    event: &str,
) -> EdgeProfile {
    let n = cfg.len();
    let mut out = EdgeProfile {
        block_weight: vec![0.0; n],
        edge_weight: HashMap::new(),
    };
    if n == 0 {
        return out;
    }

    // 1. Seed block weights from samples (sites are instruction ordinals).
    let counts = profile.events.get(event);
    let mut site_of_entry: HashMap<usize, usize> = HashMap::new();
    for (ord, id) in function
        .entry_ids()
        .filter(|&id| unit.insn(id).is_some())
        .enumerate()
    {
        site_of_entry.insert(id, ord);
    }
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut w = 0.0;
        let mut insns = 0u32;
        for (id, _) in block.insns(unit) {
            insns += 1;
            if let (Some(counts), Some(&ord)) = (counts, site_of_entry.get(&id)) {
                let site = crate::profile::Site::new(&function.name, ord);
                w += counts.get(&site).copied().unwrap_or(0) as f64;
            }
        }
        // Samples accumulate per instruction: normalize by block length so
        // long blocks are not over-weighted.
        out.block_weight[b] = if insns > 0 { w / f64::from(insns) } else { 0.0 };
    }

    // 2. Flow balancing.
    for _ in 0..16 {
        // Split each block's weight across its out-edges proportionally to
        // the current successor weights.
        out.edge_weight.clear();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if block.succs.is_empty() {
                continue;
            }
            let total_succ: f64 = block.succs.iter().map(|&s| out.block_weight[s]).sum();
            for &s in &block.succs {
                let share = if total_succ > 0.0 {
                    out.block_weight[s] / total_succ
                } else {
                    1.0 / block.succs.len() as f64
                };
                *out.edge_weight.entry((b, s)).or_insert(0.0) += out.block_weight[b] * share;
            }
        }
        // Re-estimate block weights from flow conservation.
        let mut next = out.block_weight.clone();
        for (b, block) in cfg.blocks.iter().enumerate() {
            let inflow: f64 = block.preds.iter().map(|&p| out.edge(p, b)).sum();
            let outflow: f64 = block.succs.iter().map(|&s| out.edge(b, s)).sum();
            let mut terms = vec![out.block_weight[b]];
            if !block.preds.is_empty() {
                terms.push(inflow);
            }
            if !block.succs.is_empty() {
                terms.push(outflow);
            }
            next[b] = terms.iter().sum::<f64>() / terms.len() as f64;
        }
        out.block_weight = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Site;

    const LOOPY: &str = r#"
	.type	f, @function
f:
	movl $0, %eax
.Lloop:
	addl $1, %eax
	cmpl $100, %eax
	jne .Lloop
	ret
"#;

    fn samples_on(function: &str, weights: &[(usize, u64)]) -> Profile {
        let mut p = Profile::new();
        for &(ord, count) in weights {
            p.add_event("CPU_CYCLES", Site::new(function, ord), count);
        }
        p
    }

    #[test]
    fn loop_block_dominates() {
        let unit = MaoUnit::parse(LOOPY).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        // Instruction ordinals: 0 movl (entry), 1..=3 loop body, 4 ret.
        let profile = samples_on("f", &[(0, 1), (1, 100), (2, 95), (3, 102), (4, 1)]);
        let ep = edge_profile(&unit, &f, &cfg, &profile, "CPU_CYCLES");
        let loop_block = cfg
            .block_of(unit.find_label(".Lloop").unwrap())
            .or_else(|| cfg.block_of(unit.find_label(".Lloop").unwrap() + 1))
            .expect("loop body block");
        assert_eq!(ep.hottest_block(), Some(loop_block));
        // The back edge carries almost all of the loop block's flow.
        let p_taken = ep.taken_probability(loop_block, loop_block);
        assert!(p_taken > 0.8, "back edge probability {p_taken}");
    }

    #[test]
    fn flow_conservation_smooths_missing_samples() {
        // No samples at all on the middle block: conservation fills it in.
        let text = r#"
	.type	f, @function
f:
	movl $1, %eax
	nop
.Lmid:
	addl $1, %eax
	nop
.Lend:
	ret
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        let profile = samples_on("f", &[(0, 50), (1, 50), (4, 50)]);
        let ep = edge_profile(&unit, &f, &cfg, &profile, "CPU_CYCLES");
        // The unsampled middle block inherits weight from its neighbours.
        let mid = cfg.block_of(unit.find_label(".Lmid").unwrap() + 1).unwrap();
        assert!(
            ep.block_weight[mid] > 10.0,
            "conservation fills the gap: {:?}",
            ep.block_weight
        );
    }

    #[test]
    fn empty_profile_gives_zero_weights() {
        let unit = MaoUnit::parse(LOOPY).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        let ep = edge_profile(&unit, &f, &cfg, &Profile::new(), "CPU_CYCLES");
        assert!(ep.block_weight.iter().all(|&w| w == 0.0));
        assert_eq!(ep.edge(0, 0), 0.0);
    }

    #[test]
    fn diamond_split_probabilities() {
        let text = r#"
	.type	f, @function
f:
	cmpl $0, %edi
	je .Lcold
	movl $1, %eax
	nop
	jmp .Lout
.Lcold:
	movl $2, %eax
	nop
.Lout:
	ret
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        // Hot path gets 9x the samples of the cold path.
        let profile = samples_on("f", &[(0, 10), (1, 10), (2, 90), (3, 90), (5, 10), (6, 10)]);
        let ep = edge_profile(&unit, &f, &cfg, &profile, "CPU_CYCLES");
        let cold = cfg
            .block_of(unit.find_label(".Lcold").unwrap() + 1)
            .unwrap();
        let p_cold = ep.taken_probability(0, cold);
        assert!(p_cold < 0.35, "cold edge probability {p_cold}");
    }
}
