//! `ADDADD` — add/add sequence folding (paper §III.B.d).
//!
//! GCC 4.3 emitted patterns of multiple immediate adds to the same register:
//!
//! ```text
//! add/sub rX, IMM1
//! ... no re-definition/use of rX,
//! ... no use of condition codes
//! add/sub rX, IMM2
//! ```
//!
//! which fold into a single add/sub of the combined constant. The flag
//! condition matters: the first add's flags must not be observed (the fold
//! removes them); the second add's flags are recomputed and remain correct
//! only in the sense that they now describe the combined operation — which
//! is precisely what any consumer after the fold sees.

use crate::isa::x86::{def_use, Mnemonic, Operand, Width};
use mao_obs::TraceEvent;

use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The add/add folding pass.
#[derive(Debug, Default)]
pub struct AddAddFold;

/// Is this `add $imm, %reg` or `sub $imm, %reg`? Returns the signed delta.
fn as_imm_addsub(
    insn: &crate::isa::x86::Instruction,
) -> Option<(i64, crate::isa::x86::Reg, Width)> {
    let sign = match insn.mnemonic {
        Mnemonic::Add => 1,
        Mnemonic::Sub => -1,
        _ => return None,
    };
    if insn.lock {
        return None;
    }
    match (insn.operands.first(), insn.operands.get(1)) {
        (Some(Operand::Imm(v)), Some(Operand::Reg(r))) if r.id.is_gpr() && !r.high8 => {
            Some((sign * v, *r, insn.width()))
        }
        _ => None,
    }
}

/// Build the folded instruction (prefers `add` for non-negative deltas so
/// immediates stay small and positive where possible).
fn folded(delta: i64, reg: crate::isa::x86::Reg, width: Width) -> crate::isa::x86::Instruction {
    if delta >= 0 {
        crate::isa::x86::insn::build::add(width, Operand::Imm(delta), reg)
    } else {
        crate::isa::x86::insn::build::sub(width, Operand::Imm(-delta), reg)
    }
}

impl MaoPass for AddAddFold {
    fn name(&self) -> &'static str {
        "ADDADD"
    }

    fn description(&self) -> &'static str {
        "fold sequences of immediate add/sub on the same register"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let analyze_only = ctx.options.has("count-only");
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let mut edits = EditSet::new();
            for block in &cfg.blocks {
                let insns: Vec<_> = block.insns(unit).collect();
                // A fold consumes two instructions; track consumed first-halves
                // so chains fold pairwise left-to-right within one run.
                let mut consumed = vec![false; insns.len()];
                for (pos, &(first_id, first)) in insns.iter().enumerate() {
                    if consumed[pos] {
                        continue;
                    }
                    let Some((d1, reg, width)) = as_imm_addsub(first) else {
                        continue;
                    };
                    // Scan forward for the matching second add/sub.
                    for (off, &(second_id, second)) in insns[pos + 1..].iter().enumerate() {
                        let between_pos = pos + 1 + off;
                        if let Some((d2, reg2, width2)) = as_imm_addsub(second) {
                            if reg2.id == reg.id {
                                if reg2 == reg && width2 == width {
                                    let total = match d1.checked_add(d2) {
                                        Some(t) if i32::try_from(t).is_ok() => t,
                                        _ => break,
                                    };
                                    fctx.stats.matched(1);
                                    if !analyze_only {
                                        edits.delete(first_id);
                                        edits.replace_insn(second_id, folded(total, reg, width));
                                        consumed[between_pos] = true;
                                        fctx.stats.transformed(1);
                                    }
                                }
                                break;
                            }
                        }
                        // Abort conditions: re-definition/use of rX, use of
                        // condition codes, or a barrier.
                        let du = def_use(second);
                        if du.barrier
                            || du.defs_reg(reg.id)
                            || du.uses_reg(reg.id)
                            || !du.flags_use.is_empty()
                        {
                            break;
                        }
                    }
                }
            }
            Ok(edits)
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!("ADDADD: {} folds", stats.transformations))
                .field("folds", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;

    fn run(text: &str) -> (MaoUnit, PassStats) {
        let mut unit = MaoUnit::parse(text).unwrap();
        let mut ctx = PassContext::default();
        let stats = AddAddFold.run(&mut unit, &mut ctx).unwrap();
        (unit, stats)
    }

    const HEADER: &str = ".type f, @function\nf:\n";

    #[test]
    fn adjacent_adds_fold() {
        let (unit, stats) = run(&format!(
            "{HEADER}\taddl $3, %eax\n\taddl $4, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        let text = unit.emit();
        assert!(text.contains("addl $7, %eax"), "{text}");
        assert_eq!(text.matches("addl").count(), 1);
    }

    #[test]
    fn add_sub_becomes_difference() {
        let (unit, stats) = run(&format!(
            "{HEADER}\taddl $3, %eax\n\tsubl $10, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        assert!(unit.emit().contains("subl $7, %eax"));
    }

    #[test]
    fn fold_with_unrelated_instructions_between() {
        let (unit, stats) = run(&format!(
            "{HEADER}\taddq $8, %rdi\n\tmovl %ebx, %ecx\n\taddq $8, %rdi\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        assert!(unit.emit().contains("addq $16, %rdi"));
    }

    #[test]
    fn use_between_blocks_fold() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\taddl $3, %eax\n\tmovl %eax, %ebx\n\taddl $4, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn flag_read_between_blocks_fold() {
        // The jcc consumes the first add's flags.
        let (_unit, stats) = run(&format!(
            "{HEADER}\taddl $3, %eax\n\tje .L\n\taddl $4, %eax\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn memory_destination_not_folded() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\taddl $3, (%rdi)\n\taddl $4, (%rdi)\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn width_mismatch_not_folded() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\taddl $3, %eax\n\taddq $4, %rax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn chain_of_three_folds_once_per_run() {
        let (unit, stats) = run(&format!(
            "{HEADER}\taddl $1, %eax\n\taddl $2, %eax\n\taddl $3, %eax\n\tret\n"
        ));
        // First pair folds; the third needs another run (classic peephole).
        assert_eq!(stats.transformations, 1);
        let mut unit2 = unit;
        let mut ctx = PassContext::default();
        let stats2 = AddAddFold.run(&mut unit2, &mut ctx).unwrap();
        assert_eq!(stats2.transformations, 1);
        assert!(unit2.emit().contains("addl $6, %eax"));
    }

    #[test]
    fn overflow_is_left_alone() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\taddl $2000000000, %eax\n\taddl $2000000000, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn cancelling_pair_folds_to_zero_add() {
        let (unit, stats) = run(&format!(
            "{HEADER}\taddl $5, %eax\n\tsubl $5, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        assert!(unit.emit().contains("addl $0, %eax"));
    }
}
