//! `BRALIGN` — branch de-aliasing (paper §III.C.g).
//!
//! Many Intel branch-predictor structures are indexed by `PC >> 5`. When two
//! short-running loops place their back branches inside the same 32-byte
//! bucket, both branches share one predictor entry and keep evicting each
//! other's history — the paper found a 3% whole-benchmark win from simply
//! moving the second branch into the next bucket with NOPs.
//!
//! The pass finds pairs of *conditional back branches* whose instruction
//! addresses fall in the same `PC >> shift` bucket and pads the second one
//! into the next bucket. Relaxation re-runs between fixes because padding
//! moves everything downstream (the phase-ordering hazard §II discusses).

use crate::isa::x86::Instruction;
use mao_asm::Entry;
use mao_obs::TraceEvent;

use crate::pass::{MaoPass, PassContext, PassError, PassStats};
use crate::passes::layout_util::LayoutProvider;
use crate::unit::{EditSet, EntryId, MaoUnit};

/// The branch de-aliasing pass.
#[derive(Debug, Default)]
pub struct BranchAlign;

/// Conditional back branches of a function with their addresses.
fn back_branches(
    unit: &MaoUnit,
    function: &crate::unit::Function,
    layout: &crate::relax::Layout,
) -> Vec<(EntryId, u64)> {
    let mut out = Vec::new();
    for id in function.entry_ids() {
        let Some(insn) = unit.insn(id) else { continue };
        if !insn.mnemonic.is_cond_branch() {
            continue;
        }
        let Some(tid) = unit.branch_target(id) else {
            continue;
        };
        if layout.addr[tid] <= layout.addr[id] {
            out.push((id, layout.addr[id]));
        }
    }
    out
}

impl MaoPass for BranchAlign {
    fn name(&self) -> &'static str {
        "BRALIGN"
    }

    fn description(&self) -> &'static str {
        "separate back branches that alias in the PC>>5-indexed predictor"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let mut stats = PassStats::default();
        // Predictor index shift comes from the installed cost model (PC>>5
        // on the built-in Core-2-like table); an explicit option overrides.
        let model_shift = u64::from(crate::isa::x86::cost::current().machine.predictor_shift);
        let shift = ctx.options.get_u64("shift", model_shift.min(16).max(1));
        let bucket = 1u64 << shift;
        // A couple of rounds: fixing one pair can move later branches into
        // (or out of) aliasing.
        let max_rounds = ctx.options.get_u64("rounds", 8);
        // Edits go through the provider so each fix costs an incremental
        // layout patch instead of a from-scratch relaxation.
        let mut provider = LayoutProvider::new(ctx);
        let mut trace: Vec<String> = Vec::new();
        for _ in 0..max_rounds {
            let before_round = stats.transformations;
            let mut k = 0;
            loop {
                let Some(function) = unit.functions_cached().get(k).cloned() else {
                    break;
                };
                let layout = provider.layout(unit)?;
                let branches = back_branches(unit, &function, &layout);
                let mut edits = EditSet::new();
                for pair in branches.windows(2) {
                    let (first_id, first_addr) = pair[0];
                    let (second_id, second_addr) = pair[1];
                    if first_addr >> shift != second_addr >> shift || first_id == second_id {
                        continue;
                    }
                    stats.matched(1);
                    let pad = (second_addr / bucket + 1) * bucket - second_addr;
                    trace.push(format!(
                        "{}: branches at {:#x}/{:#x} share bucket {:#x}; padding {} bytes",
                        function.name,
                        first_addr,
                        second_addr,
                        first_addr >> shift,
                        pad,
                    ));
                    let pad_entries: Vec<Entry> = Instruction::nop_pad(pad as usize)
                        .into_iter()
                        .map(|i| Entry::Insn(i.into()))
                        .collect();
                    edits.insert_before(second_id, pad_entries);
                    stats.transformed(1);
                    break; // one fix per function per round, then re-relax
                }
                if !edits.is_empty() {
                    provider.apply(unit, edits)?;
                }
                k += 1;
            }
            // Fixed point: stop when a full sweep changed nothing.
            if stats.transformations == before_round {
                break;
            }
            // Check for remaining aliasing; if none, stop early.
            let mut any_alias = false;
            let layout = provider.layout(unit)?;
            for function in unit.functions() {
                let branches = back_branches(unit, &function, &layout);
                if branches
                    .windows(2)
                    .any(|p| p[0].1 >> shift == p[1].1 >> shift)
                {
                    any_alias = true;
                    break;
                }
            }
            if !any_alias {
                break;
            }
        }
        if let Some(note) = provider.note() {
            stats.notes.push(note);
        }
        for line in trace {
            ctx.trace(2, || TraceEvent::new(line));
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;
    use crate::relax::relax;

    /// The §III.C.g shape: a two-deep nest of short loops whose back
    /// branches land in the same 32-byte bucket.
    fn nested_short_loops() -> &'static str {
        r#"
	.type	f, @function
f:
	movl $0, %eax
.Louter:
	movl $0, %ebx
.Linner:
	addl $1, %ebx
	cmpl $2, %ebx
	jne .Linner
	addl $1, %eax
	addl $2, %ebx
	cmpl $2, %eax
	jne .Louter
	ret
"#
    }

    fn branch_addrs(unit: &MaoUnit) -> Vec<u64> {
        let layout = relax(unit).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        back_branches(unit, &f, &layout)
            .into_iter()
            .map(|(_, a)| a)
            .collect()
    }

    #[test]
    fn aliasing_branches_are_separated() {
        let mut unit = MaoUnit::parse(nested_short_loops()).unwrap();
        let before = branch_addrs(&unit);
        assert_eq!(before.len(), 2);
        assert_eq!(before[0] >> 5, before[1] >> 5, "precondition: aliasing");

        let mut ctx = PassContext::default();
        let stats = BranchAlign.run(&mut unit, &mut ctx).unwrap();
        assert!(stats.transformations >= 1);

        let after = branch_addrs(&unit);
        assert_ne!(after[0] >> 5, after[1] >> 5, "buckets differ: {after:?}");
    }

    #[test]
    fn non_aliasing_untouched() {
        // Pad the outer loop body so the branches straddle a boundary.
        let text =
            nested_short_loops().replace("\taddl $1, %eax\n", &"\taddl $1, %eax\n".repeat(12));
        let mut unit = MaoUnit::parse(&text).unwrap();
        let before = branch_addrs(&unit);
        if before[0] >> 5 == before[1] >> 5 {
            // Layout happened to alias anyway; skip this configuration.
            return;
        }
        let emitted = unit.emit();
        let mut ctx = PassContext::default();
        let stats = BranchAlign.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
        assert_eq!(unit.emit(), emitted);
    }

    #[test]
    fn forward_branches_ignored() {
        let mut unit = MaoUnit::parse(
            ".type f, @function\nf:\n\tje .La\n\tnop\n.La:\n\tje .Lb\n\tnop\n.Lb:\n\tret\n",
        )
        .unwrap();
        let mut ctx = PassContext::default();
        let stats = BranchAlign.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn custom_shift_option() {
        // With shift=10 (1 KiB buckets) the two branches of the nest alias;
        // padding to the next 1 KiB bucket would be enormous, but the pass
        // still performs it — verify the bucket separation honours shift.
        let mut unit = MaoUnit::parse(nested_short_loops()).unwrap();
        let mut ctx = PassContext::from_options(
            crate::pass::PassOptions::new()
                .with("shift", "4")
                .with("rounds", "4"),
        );
        BranchAlign.run(&mut unit, &mut ctx).unwrap();
        let after = branch_addrs(&unit);
        assert_ne!(after[0] >> 4, after[1] >> 4);
    }
}
