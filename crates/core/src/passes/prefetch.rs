//! `PREFNTA` — inverse prefetching (paper §III.E.k).
//!
//! On Core-2, preceding a load with a `prefetchnta` to the same address
//! makes the load non-temporal: the line fills a single way of the cache
//! instead of polluting the whole set. The paper pairs this with *"a novel
//! memory reuse distance profiler to identify loads with little reuse"*.
//!
//! This pass consumes the reuse-distance side of a [`Profile`]: loads whose
//! measured reuse distance exceeds a threshold (i.e. the data will be
//! evicted before any reuse) get the prefetch treatment.
//!
//! Options: `threshold[N]` — minimum reuse distance in cache lines to
//! qualify (default 8192, i.e. beyond a 512 KiB L2 at 64 B lines).

use crate::isa::x86::operand::Operand;
use crate::isa::x86::{def_use, Instruction, Mnemonic};
use mao_asm::Entry;
use mao_obs::TraceEvent;

use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::profile::Site;
use crate::unit::{EditSet, MaoUnit};

/// The inverse-prefetching pass.
#[derive(Debug, Default)]
pub struct InversePrefetch;

impl MaoPass for InversePrefetch {
    fn name(&self) -> &'static str {
        "PREFNTA"
    }

    fn description(&self) -> &'static str {
        "make low-reuse loads non-temporal via prefetchnta insertion"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let threshold = ctx.options.get_u64("threshold", 8192);
        if ctx.profile.is_none() {
            ctx.trace(1, || {
                TraceEvent::new("PREFNTA: no profile attached; nothing to do")
            });
            return Ok(PassStats::default());
        }
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let profile = fctx.profile.expect("checked above");
            let mut edits = EditSet::new();
            let mut insn_index = 0usize;
            for id in function.entry_ids() {
                let Some(insn) = unit.insn(id) else { continue };
                let this_index = insn_index;
                insn_index += 1;
                // A plain load with an addressable memory source.
                let du = def_use(insn);
                if !du.mem_read || du.mem_write || insn.mnemonic == Mnemonic::Prefetchnta {
                    continue;
                }
                let Some(Operand::Mem(mem)) = insn.operands.first() else {
                    continue;
                };
                let site = Site::new(&function.name, this_index);
                let Some(distance) = profile.reuse_distance(&site) else {
                    continue;
                };
                if distance < threshold {
                    continue;
                }
                fctx.stats.matched(1);
                let prefetch =
                    Instruction::new(Mnemonic::Prefetchnta, vec![Operand::Mem(mem.clone())]);
                edits.insert_before(id, vec![Entry::Insn(prefetch.into())]);
                fctx.stats.transformed(1);
            }
            Ok(edits)
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "PREFNTA: {} loads made non-temporal",
                stats.transformations
            ))
            .field("converted", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{PassContext, PassOptions};
    use crate::profile::Profile;

    const SAMPLE: &str = r#"
	.type	f, @function
f:
	movq (%rdi), %rax
	movq 8(%rdi), %rbx
	addq %rbx, %rax
	ret
"#;

    fn ctx_with_profile(profile: Profile, threshold: Option<&str>) -> PassContext {
        let mut opts = PassOptions::new();
        if let Some(t) = threshold {
            opts.set("threshold", t);
        }
        let mut ctx = PassContext::from_options(opts);
        ctx.profile = Some(profile);
        ctx
    }

    #[test]
    fn low_reuse_load_gets_prefetch() {
        let mut profile = Profile::new();
        // Instruction index 0 = the first movq; huge reuse distance.
        profile.set_reuse_distance(Site::new("f", 0), 1_000_000);
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let mut ctx = ctx_with_profile(profile, None);
        let stats = InversePrefetch.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 1);
        let text = unit.emit();
        let pf = text.find("prefetchnta (%rdi)").expect("prefetch inserted");
        let ld = text.find("movq (%rdi), %rax").unwrap();
        assert!(pf < ld, "prefetch precedes the load");
    }

    #[test]
    fn high_reuse_load_untouched() {
        let mut profile = Profile::new();
        profile.set_reuse_distance(Site::new("f", 0), 4); // hot data
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let mut ctx = ctx_with_profile(profile, None);
        let stats = InversePrefetch.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn threshold_option_respected() {
        let mut profile = Profile::new();
        profile.set_reuse_distance(Site::new("f", 1), 100);
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let mut ctx = ctx_with_profile(profile, Some("50"));
        let stats = InversePrefetch.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 1);
        assert!(unit.emit().contains("prefetchnta 8(%rdi)"));
    }

    #[test]
    fn no_profile_is_a_noop() {
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let before = unit.emit();
        let mut ctx = PassContext::default();
        let stats = InversePrefetch.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
        assert_eq!(unit.emit(), before);
    }

    #[test]
    fn stores_not_prefetched() {
        let text = ".type f, @function\nf:\n\tmovq %rax, (%rdi)\n\tret\n";
        let mut profile = Profile::new();
        profile.set_reuse_distance(Site::new("f", 0), 1_000_000);
        let mut unit = MaoUnit::parse(text).unwrap();
        let mut ctx = ctx_with_profile(profile, None);
        let stats = InversePrefetch.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn idempotence_prefetch_not_reprefetched() {
        // After one run the indices shift; rerunning with the same profile
        // must not prefetch the prefetch.
        let mut profile = Profile::new();
        profile.set_reuse_distance(Site::new("f", 0), 1_000_000);
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let mut ctx = ctx_with_profile(profile.clone(), None);
        InversePrefetch.run(&mut unit, &mut ctx).unwrap();
        let mut ctx = ctx_with_profile(profile, None);
        let stats = InversePrefetch.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0, "{}", unit.emit());
    }
}
