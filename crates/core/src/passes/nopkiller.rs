//! `NOPKILL` — the Nop Killer (paper §III.E.j).
//!
//! Compilers insert alignment directives "based on some rough ideas about an
//! underlying micro-architecture"; the assembler expands them into NOPs.
//! This pass removes both the alignment directives and existing NOP
//! instructions from text sections, to measure how much those crude
//! alignments actually help. The paper found the performance effect mostly
//! in the noise, with ~1% code-size improvement.
//!
//! Options: `keep-aligns` (only kill NOP instructions), `keep-nops` (only
//! kill alignment directives).

use mao_asm::{Directive, Entry};
use mao_obs::TraceEvent;

use crate::pass::{MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The alignment-removal pass.
#[derive(Debug, Default)]
pub struct NopKiller;

impl MaoPass for NopKiller {
    fn name(&self) -> &'static str {
        "NOPKILL"
    }

    fn description(&self) -> &'static str {
        "remove alignment directives and padding NOPs from text sections"
    }

    fn supported_isas(&self) -> &'static [crate::isa::IsaId] {
        &crate::isa::IsaId::ALL
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let mut stats = PassStats::default();
        let kill_aligns = !ctx.options.has("keep-aligns");
        let kill_nops = !ctx.options.has("keep-nops");
        let names = unit.section_names();
        let mut edits = EditSet::new();
        for (id, entry) in unit.entries().iter().enumerate() {
            let in_text = names[id] == ".text" || names[id].starts_with(".text.");
            if !in_text {
                continue;
            }
            match entry {
                Entry::Directive(Directive::Align(_)) if kill_aligns => {
                    edits.delete(id);
                    stats.transformed(1);
                }
                Entry::Insn(i) if kill_nops && i.is_nop() => {
                    edits.delete(id);
                    stats.transformed(1);
                }
                _ => {}
            }
        }
        stats.matched(stats.transformations);
        unit.apply(edits);
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "NOPKILL: removed {} entries",
                stats.transformations
            ))
            .field("removed", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{PassContext, PassOptions};

    const SAMPLE: &str = r#"
	.text
	.type	f, @function
	.p2align 4,,15
f:
	nop
	nopw 0(%rax,%rax,1)
	addl $1, %eax
	.p2align 3
.L:
	ret
	.section	.rodata
	.align 8
.LC:
	.long 1
"#;

    #[test]
    fn kills_text_aligns_and_nops() {
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let stats = NopKiller
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        // 2 p2aligns + 2 nops.
        assert_eq!(stats.transformations, 4);
        let text = unit.emit();
        assert!(!text.contains(".p2align"));
        assert!(!text.contains("\tnop"));
        // rodata .align untouched.
        assert!(text.contains(".align 8"));
        assert!(text.contains("addl"));
    }

    #[test]
    fn keep_aligns_option() {
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let stats = NopKiller
            .run(
                &mut unit,
                &mut PassContext::from_options(PassOptions::new().with("keep-aligns", "")),
            )
            .unwrap();
        assert_eq!(stats.transformations, 2);
        assert!(unit.emit().contains(".p2align"));
    }

    #[test]
    fn keep_nops_option() {
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let stats = NopKiller
            .run(
                &mut unit,
                &mut PassContext::from_options(PassOptions::new().with("keep-nops", "")),
            )
            .unwrap();
        assert_eq!(stats.transformations, 2);
        assert!(unit.emit().contains("\tnop"));
    }

    #[test]
    fn code_size_shrinks() {
        use crate::relax::relax;
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let before: u64 = {
            let l = relax(&unit).unwrap();
            (0..unit.len()).map(|i| u64::from(l.size[i])).sum()
        };
        NopKiller
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        let after: u64 = {
            let l = relax(&unit).unwrap();
            (0..unit.len()).map(|i| u64::from(l.size[i])).sum()
        };
        assert!(after < before, "{after} < {before}");
    }
}
