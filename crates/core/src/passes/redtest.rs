//! `REDTEST` — redundant test removal (paper §III.B.b).
//!
//! GCC does not model the x86 condition codes well and emits
//!
//! ```text
//! subl  $16, %r15d
//! testl %r15d, %r15d    # redundant: subl already set the flags
//! ```
//!
//! `test r, r` computes SF/ZF/PF from `r` and clears CF/OF. A preceding
//! instruction that wrote `r` *and* set SF/ZF/PF from the same result makes
//! the test redundant — **provided** every consumer reads only flags the two
//! instructions agree on (SF/ZF/PF; CF/OF generally differ). The paper:
//! *"MAO precisely models the x86/64 condition codes, enabling it to remove
//! the redundant tests."* The precision lives in [`crate::isa::x86::Cond::flags_read`]
//! and the flag liveness walk.

use crate::isa::x86::{def_use, Flags, Mnemonic, Operand, Width};
use mao_obs::TraceEvent;

use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The redundant test removal pass.
#[derive(Debug, Default)]
pub struct RedundantTest;

/// Is `insn` a same-register `test r, r`?
fn is_self_test(insn: &crate::isa::x86::Instruction) -> Option<(crate::isa::x86::Reg, Width)> {
    if insn.mnemonic != Mnemonic::Test {
        return None;
    }
    match (insn.operands.first(), insn.operands.get(1)) {
        (Some(Operand::Reg(a)), Some(Operand::Reg(b))) if a == b && !a.high8 => {
            Some((*a, insn.width()))
        }
        _ => None,
    }
}

/// Does `prev` define register `reg` as its destination *and* set SF/ZF/PF
/// from the result, with the same operand width?
fn sets_result_flags_for(
    prev: &crate::isa::x86::Instruction,
    reg: crate::isa::x86::Reg,
    width: Width,
) -> bool {
    use Mnemonic as M;
    let result_flag_setter = match prev.mnemonic {
        M::Add | M::Sub | M::Adc | M::Sbb | M::And | M::Or | M::Xor | M::Neg | M::Inc | M::Dec => {
            true
        }
        // Shifts set result flags only for non-zero counts; a dynamic %cl
        // count may be zero (flags unchanged) so only constant counts apply.
        M::Shl | M::Shr | M::Sar => match prev.operands.first() {
            Some(Operand::Imm(n)) => *n != 0,
            None => true, // implicit shift-by-1
            _ => false,   // %cl count
        },
        _ => false,
    };
    if !result_flag_setter || prev.width() != width {
        return false;
    }
    matches!(prev.dest(), Some(Operand::Reg(d)) if d.id == reg.id && d.width == width && !d.high8)
}

impl MaoPass for RedundantTest {
    fn name(&self) -> &'static str {
        "REDTEST"
    }

    fn description(&self) -> &'static str {
        "remove test instructions whose flags were already set by a prior ALU op"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let analyze_only = ctx.options.has("count-only");
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let liveness = fctx.liveness(unit, function);
            let mut edits = EditSet::new();
            for (b, block) in cfg.blocks.iter().enumerate() {
                let insns: Vec<_> = block.insns(unit).collect();
                for (pos, &(id, insn)) in insns.iter().enumerate() {
                    let Some((reg, width)) = is_self_test(insn) else {
                        continue;
                    };
                    // Find the previous instruction that defines flags or the
                    // register; both searches stop at the same place.
                    let mut verdict = false;
                    for &(_, prev) in insns[..pos].iter().rev() {
                        let du = def_use(prev);
                        if du.barrier {
                            break;
                        }
                        if !du.flags_killed().is_empty() {
                            // The nearest flag writer: it must be our
                            // result-flag setter on the same register, with
                            // no redefinition of the register in between
                            // (it *is* the defining instruction, so any
                            // later def would have been seen first).
                            verdict = sets_result_flags_for(prev, reg, width);
                            break;
                        }
                        if du.defs_reg(reg.id) {
                            // Register changed after the last flag write:
                            // flags no longer describe its value.
                            break;
                        }
                    }
                    if !verdict {
                        continue;
                    }
                    // Consumers: flags read after the test must be a subset
                    // of the result flags (SF/ZF/PF), where test and the ALU
                    // op agree.
                    let consumed = liveness.flags_live_after(unit, &cfg, b, id);
                    if !Flags::RESULT.contains(consumed) {
                        continue;
                    }
                    fctx.stats.matched(1);
                    if !analyze_only {
                        edits.delete(id);
                        fctx.stats.transformed(1);
                    }
                }
            }
            Ok(edits)
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!("REDTEST: {} removed", stats.transformations))
                .field("removed", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;

    fn run(text: &str) -> (MaoUnit, PassStats) {
        let mut unit = MaoUnit::parse(text).unwrap();
        let mut ctx = PassContext::default();
        let stats = RedundantTest.run(&mut unit, &mut ctx).unwrap();
        (unit, stats)
    }

    const HEADER: &str = ".type f, @function\nf:\n";

    #[test]
    fn paper_pattern_removed() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        assert!(!unit.emit().contains("test"));
    }

    #[test]
    fn kept_when_consumer_reads_carry() {
        // jae reads CF: sub sets CF from the subtraction, test clears it —
        // NOT equivalent.
        let (unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjae .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
        assert!(unit.emit().contains("test"));
    }

    #[test]
    fn kept_when_consumer_reads_signed_less() {
        // jl reads SF != OF; OF differs between sub and test.
        let (_unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjl .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn removed_for_js_consumer() {
        // js reads SF only — produced identically by subl and testl.
        let (_unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjs .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
    }

    #[test]
    fn kept_when_register_redefined_between() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %r15d\n\tmovl %eax, %r15d\n\ttestl %r15d, %r15d\n\tje .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn kept_when_other_reg_set_flags() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %eax\n\ttestl %r15d, %r15d\n\tje .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn kept_for_width_mismatch() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tsubq $16, %r15\n\ttestl %r15d, %r15d\n\tje .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn kept_after_shift_by_cl() {
        // Count in %cl may be zero: flags would be unchanged, so the test is
        // load-bearing.
        let (_unit, stats) = run(&format!(
            "{HEADER}\tshll %cl, %r15d\n\ttestl %r15d, %r15d\n\tje .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn removed_after_shift_by_imm() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tshll $3, %r15d\n\ttestl %r15d, %r15d\n\tje .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
    }

    #[test]
    fn flags_consumed_in_successor_block() {
        // The jcc lives in the next block; liveness must still see it.
        let (_unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n.Lmid:\n\tjae .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0, "jae in successor reads CF");
        let (_unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n.Lmid:\n\tje .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1, "je in successor reads only ZF");
    }

    #[test]
    fn mov_between_does_not_block() {
        // mov writes no flags and a different register.
        let (_unit, stats) = run(&format!(
            "{HEADER}\tsubl $16, %r15d\n\tmovl %eax, %ebx\n\ttestl %r15d, %r15d\n\tje .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
    }
}
