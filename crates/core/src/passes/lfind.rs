//! `LFIND` — loop finding and reporting.
//!
//! The pass named in the paper's example invocation
//! (`mao --mao=LFIND=trace[0]:ASM=o[/dev/null] in.s`): run loop recognition
//! over every function and report the loop structure graph through the
//! tracing facility. Analysis-only; `matches` counts loops found.

use mao_obs::TraceEvent;

use crate::loops::{LoopKind, LoopNest};
use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The loop-finding pass.
#[derive(Debug, Default)]
pub struct LoopFinder;

fn describe(nest: &LoopNest, idx: usize, out: &mut Vec<String>, indent: usize) {
    let l = &nest.loops[idx];
    let kind = match l.kind {
        LoopKind::Reducible => "reducible",
        LoopKind::Irreducible => "irreducible",
        LoopKind::SelfLoop => "self-loop",
    };
    out.push(format!(
        "{:indent$}loop depth {} ({kind}): header block {}, {} block(s)",
        "",
        l.depth,
        l.header,
        l.blocks.len(),
        indent = indent * 2,
    ));
    for &c in &l.children {
        describe(nest, c, out, indent + 1);
    }
}

impl MaoPass for LoopFinder {
    fn name(&self) -> &'static str {
        "LFIND"
    }

    fn description(&self) -> &'static str {
        "find loops and report the loop structure graph"
    }

    fn supported_isas(&self) -> &'static [crate::isa::IsaId] {
        &crate::isa::IsaId::ALL
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let nest = fctx.loops(unit, function);
            fctx.stats.matched(nest.len());
            if nest.is_empty() {
                return Ok(EditSet::new());
            }
            let mut lines = vec![format!(
                "{}: {} loop(s){}",
                function.name,
                nest.len(),
                if cfg.unresolved_indirect {
                    " [function flagged: unresolved indirect branch]"
                } else {
                    ""
                }
            )];
            for (i, l) in nest.loops.iter().enumerate() {
                if l.parent.is_none() {
                    describe(&nest, i, &mut lines, 1);
                }
            }
            for line in lines {
                fctx.trace(1, || TraceEvent::new(line));
            }
            Ok(EditSet::new())
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!("LFIND: {} loop(s) total", stats.matches))
                .field("loops", stats.matches)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{PassContext, PassOptions};

    const NESTED: &str = r#"
	.type	f, @function
f:
	movl $0, %eax
.Louter:
	movl $0, %ebx
.Linner:
	addl $1, %ebx
	cmpl $2, %ebx
	jne .Linner
	addl $1, %eax
	cmpl $2, %eax
	jne .Louter
	ret
"#;

    #[test]
    fn finds_and_reports_nest() {
        let mut unit = MaoUnit::parse(NESTED).unwrap();
        let mut ctx = PassContext::from_options(PassOptions::new().with("trace", "1"));
        let stats = LoopFinder.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.matches, 2);
        assert_eq!(stats.transformations, 0, "analysis-only");
        let text = ctx.rendered_trace().join("\n");
        assert!(text.contains("f: 2 loop(s)"), "{text}");
        assert!(text.contains("depth 1"));
        assert!(text.contains("depth 2"));
    }

    #[test]
    fn does_not_modify_the_unit() {
        let mut unit = MaoUnit::parse(NESTED).unwrap();
        let before = unit.emit();
        LoopFinder
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        assert_eq!(unit.emit(), before);
    }

    #[test]
    fn flags_unresolved_functions() {
        let mut unit =
            MaoUnit::parse(".type f, @function\nf:\n.L:\n\taddl $1, %eax\n\tjne .L\n\tjmp *%rax\n")
                .unwrap();
        let mut ctx = PassContext::from_options(PassOptions::new().with("trace", "1"));
        LoopFinder.run(&mut unit, &mut ctx).unwrap();
        let text = ctx.rendered_trace().join("\n");
        assert!(text.contains("flagged"), "{text}");
    }
}
