//! `NOPIN` — the Nopinizer (paper §III.E.i).
//!
//! Inspired by blind optimization (Knights/Mytkowicz/Diwan): insert *random*
//! NOP sequences into the code stream to shift code around and expose
//! micro-architectural cliffs (alias constraints, predictor limits). The
//! paper: *"A random number seed can be specified to produce repeatable
//! experiments. Furthermore, the insertion density can be specified ... as
//! well as the length of the NOP sequences."*
//!
//! Options: `seed[N]` (default 0), `density[0..1]` (probability of inserting
//! before an instruction, default 0.05), `maxlen[N]` (maximum NOP-sequence
//! byte length, default 3).

use crate::isa::x86::Instruction;
use mao_asm::Entry;
use mao_obs::TraceEvent;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::pass::{for_each_function, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The random NOP-insertion pass.
#[derive(Debug, Default)]
pub struct Nopinizer;

impl MaoPass for Nopinizer {
    fn name(&self) -> &'static str {
        "NOPIN"
    }

    fn description(&self) -> &'static str {
        "insert random NOP sequences to expose micro-architectural cliffs"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let mut stats = PassStats::default();
        let seed = ctx.options.get_u64("seed", 0);
        let density = ctx.options.get_f64("density", 0.05).clamp(0.0, 1.0);
        let maxlen = ctx.options.get_u64("maxlen", 3).max(1) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        for_each_function(unit, |unit, function| {
            let mut edits = EditSet::new();
            for id in function.entry_ids() {
                if unit.insn(id).is_none() {
                    continue;
                }
                if rng.random::<f64>() >= density {
                    continue;
                }
                let len = rng.random_range(1..=maxlen);
                let pad: Vec<Entry> = Instruction::nop_pad(len)
                    .into_iter()
                    .map(|i| Entry::Insn(i.into()))
                    .collect();
                stats.transformed(pad.len());
                stats.matched(1);
                edits.insert_before(id, pad);
            }
            Ok(edits)
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "NOPIN: seed={seed} density={density} -> {} NOPs at {} sites",
                stats.transformations, stats.matches
            ))
            .field("seed", seed)
            .field("density", density)
            .field("nops", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{PassContext, PassOptions};

    fn body() -> String {
        let insns = "\taddl $1, %eax\n".repeat(100);
        format!(".type f, @function\nf:\n{insns}\tret\n")
    }

    fn nop_count(unit: &MaoUnit) -> usize {
        unit.entries()
            .iter()
            .filter(|e| e.insn().is_some_and(Instruction::is_nop))
            .count()
    }

    #[test]
    fn same_seed_is_repeatable() {
        let mut a = MaoUnit::parse(&body()).unwrap();
        let mut b = MaoUnit::parse(&body()).unwrap();
        let opts = PassOptions::new().with("seed", "42").with("density", "0.3");
        Nopinizer
            .run(&mut a, &mut PassContext::from_options(opts.clone()))
            .unwrap();
        Nopinizer
            .run(&mut b, &mut PassContext::from_options(opts))
            .unwrap();
        assert_eq!(a.emit(), b.emit());
        assert!(nop_count(&a) > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MaoUnit::parse(&body()).unwrap();
        let mut b = MaoUnit::parse(&body()).unwrap();
        Nopinizer
            .run(
                &mut a,
                &mut PassContext::from_options(
                    PassOptions::new().with("seed", "1").with("density", "0.3"),
                ),
            )
            .unwrap();
        Nopinizer
            .run(
                &mut b,
                &mut PassContext::from_options(
                    PassOptions::new().with("seed", "2").with("density", "0.3"),
                ),
            )
            .unwrap();
        assert_ne!(a.emit(), b.emit());
    }

    #[test]
    fn density_zero_inserts_nothing() {
        let mut unit = MaoUnit::parse(&body()).unwrap();
        let before = unit.emit();
        let stats = Nopinizer
            .run(
                &mut unit,
                &mut PassContext::from_options(PassOptions::new().with("density", "0")),
            )
            .unwrap();
        assert_eq!(stats.transformations, 0);
        assert_eq!(unit.emit(), before);
    }

    #[test]
    fn density_one_inserts_everywhere() {
        let mut unit = MaoUnit::parse(&body()).unwrap();
        let stats = Nopinizer
            .run(
                &mut unit,
                &mut PassContext::from_options(
                    PassOptions::new().with("density", "1").with("maxlen", "1"),
                ),
            )
            .unwrap();
        // 101 instructions (100 adds + ret): one site each.
        assert_eq!(stats.matches, 101);
        assert_eq!(nop_count(&unit), 101);
    }

    #[test]
    fn directives_and_labels_not_targeted() {
        let mut unit =
            MaoUnit::parse(".type f, @function\nf:\n\t.p2align 4\n.Lx:\n\tret\n").unwrap();
        let stats = Nopinizer
            .run(
                &mut unit,
                &mut PassContext::from_options(PassOptions::new().with("density", "1")),
            )
            .unwrap();
        assert_eq!(stats.matches, 1, "only the ret is an insertion site");
    }
}
