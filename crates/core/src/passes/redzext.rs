//! `REDZEXT` — redundant zero-extension removal (paper §III.B.a).
//!
//! GCC 4.3/4.4 did not model zero-extension well and emitted sequences like
//!
//! ```text
//! andl $255, %eax
//! mov  %eax, %eax      # zero-extend — already done by the andl
//! ```
//!
//! On x86-64 *every* 32-bit register write zero-extends into the full
//! 64-bit register, so a same-register 32-bit `mov` is redundant whenever
//! the most recent definition of that register was itself a 32-bit write.
//! (It is *not* redundant after a 64-bit write: there it truncates.)

use crate::isa::x86::{def_use, Mnemonic, Operand, Width};
use mao_obs::TraceEvent;

use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The redundant zero-extension elimination pass.
#[derive(Debug, Default)]
pub struct RedundantZeroExtension;

/// Is `insn` the `mov %rX, %rX` 32-bit self-move idiom?
fn is_self_zext(insn: &crate::isa::x86::Instruction) -> bool {
    insn.mnemonic == Mnemonic::Mov
        && insn.width() == Width::B4
        && matches!(
            (&insn.operands.first(), &insn.operands.get(1)),
            (Some(Operand::Reg(a)), Some(Operand::Reg(b)))
                if a == b && a.width == Width::B4 && !a.high8
        )
}

impl MaoPass for RedundantZeroExtension {
    fn name(&self) -> &'static str {
        "REDZEXT"
    }

    fn description(&self) -> &'static str {
        "remove zero-extension moves made redundant by a prior 32-bit write"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let analyze_only = ctx.options.has("count-only");
        run_functions(unit, ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let mut edits = EditSet::new();
            for block in &cfg.blocks {
                let insns: Vec<_> = block.insns(unit).collect();
                for (pos, &(id, insn)) in insns.iter().enumerate() {
                    if !is_self_zext(insn) {
                        continue;
                    }
                    let reg = insn.operands[0]
                        .reg()
                        .expect("self-zext has register operands");
                    // Walk backward to the most recent def of the register.
                    let mut redundant = false;
                    for &(_, prev) in insns[..pos].iter().rev() {
                        let du = def_use(prev);
                        if du.barrier {
                            break;
                        }
                        if !du.defs_reg(reg.id) {
                            continue;
                        }
                        // Found the def: redundant iff it is a plain 32-bit
                        // destination-register write (which zero-extends).
                        redundant = du
                            .reg_defs
                            .iter()
                            .any(|d| d.id == reg.id && d.width == Width::B4 && !d.high8);
                        break;
                    }
                    if redundant {
                        fctx.stats.matched(1);
                        fctx.trace(2, || {
                            TraceEvent::new(format!("{}: redundant `{insn}`", function.name))
                                .field("function", &function.name)
                        });
                        if !analyze_only {
                            edits.delete(id);
                            fctx.stats.transformed(1);
                        }
                    }
                }
            }
            Ok(edits)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{PassContext, PassOptions};

    fn run(text: &str) -> (MaoUnit, PassStats) {
        let mut unit = MaoUnit::parse(text).unwrap();
        let mut ctx = PassContext::default();
        let stats = RedundantZeroExtension.run(&mut unit, &mut ctx).unwrap();
        (unit, stats)
    }

    const HEADER: &str = ".type f, @function\nf:\n";

    #[test]
    fn paper_pattern_removed() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tandl $255, %eax\n\tmov %eax, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        let text = unit.emit();
        assert!(!text.contains("movl %eax, %eax"), "{text}");
        assert!(text.contains("andl"));
    }

    #[test]
    fn not_removed_after_64bit_write() {
        // movq writes the full register; the 32-bit self-move truncates and
        // is meaningful.
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq %rbx, %rax\n\tmov %eax, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn not_removed_after_partial_write() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovb $1, %al\n\tmov %eax, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn not_removed_without_known_def() {
        let (_unit, stats) = run(&format!("{HEADER}\tmov %eax, %eax\n\tret\n"));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn not_removed_across_call() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tandl $255, %eax\n\tcall g\n\tmov %eax, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn intervening_unrelated_instructions_ok() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tandl $255, %eax\n\taddl $1, %ebx\n\tmov %eax, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
    }

    #[test]
    fn different_registers_not_matched() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tandl $255, %eax\n\tmov %eax, %ebx\n\tret\n"
        ));
        assert_eq!(stats.matches, 0);
    }

    #[test]
    fn count_only_mode() {
        let mut unit = MaoUnit::parse(&format!(
            "{HEADER}\tandl $255, %eax\n\tmov %eax, %eax\n\tret\n"
        ))
        .unwrap();
        let before = unit.emit();
        let mut ctx = PassContext::from_options(PassOptions::new().with("count-only", ""));
        let stats = RedundantZeroExtension.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.matches, 1);
        assert_eq!(stats.transformations, 0);
        assert_eq!(unit.emit(), before);
    }

    #[test]
    fn block_boundary_stops_search() {
        // Def in another block: conservatively not matched (block-local scan).
        let (_unit, stats) = run(&format!(
            "{HEADER}\tandl $255, %eax\n.Lmid:\n\tmov %eax, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }
}
