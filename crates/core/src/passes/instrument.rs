//! `INSTPREP` — dynamic instrumentation support (paper §III.E.l).
//!
//! A binary instrumenter that wants to patch a probe into running code must
//! overwrite 5 bytes (a rel32 branch) atomically. That is only safe if a
//! single 5-byte instruction already sits at the patch site and does not
//! cross a cache line. This pass plants a 5-byte NOP at every function entry
//! and before every exit (`ret`), then iterates with relaxation until none
//! of the planted NOPs crosses a cache-line boundary (padding with 1-byte
//! NOPs as needed).
//!
//! Options: `line[N]` — cache-line size (default 64).

use crate::isa::x86::{Instruction, Mnemonic};
use mao_asm::Entry;
use mao_obs::TraceEvent;

use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::passes::layout_util::LayoutProvider;
use crate::unit::{EditSet, EntryId, MaoUnit};

/// The instrumentation-point preparation pass.
#[derive(Debug, Default)]
pub struct InstrumentPrep;

/// Is this entry one of our 5-byte probe NOPs?
fn is_probe(unit: &MaoUnit, id: EntryId) -> bool {
    unit.insn(id)
        .is_some_and(|i| *i == Instruction::nop_of_len(5))
}

impl MaoPass for InstrumentPrep {
    fn name(&self) -> &'static str {
        "INSTPREP"
    }

    fn description(&self) -> &'static str {
        "plant 5-byte NOPs at function entries/exits for atomic patching"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let line = ctx.options.get_u64("line", 64).max(8);

        // Phase 1: plant the probes (function-local, runs on the parallel
        // driver; phase 2 below is layout-global and stays sequential).
        let mut stats = run_functions(unit, ctx, |unit, function, fctx| {
            let mut edits = EditSet::new();
            let probe = || vec![Entry::Insn(Instruction::nop_of_len(5).into())];
            // Entry: after the function label (so the label address stays the
            // call target), i.e. before the first instruction.
            let first_insn = function.entry_ids().find(|&id| unit.insn(id).is_some());
            if let Some(first) = first_insn {
                if !is_probe(unit, first) {
                    edits.insert_before(first, probe());
                    fctx.stats.transformed(1);
                }
            }
            // Exits: before every ret whose predecessor is not already a probe.
            let ids: Vec<EntryId> = function.entry_ids().collect();
            for (k, &id) in ids.iter().enumerate() {
                if unit.insn(id).map(|i| i.mnemonic) != Some(Mnemonic::Ret) {
                    continue;
                }
                let prev_is_probe = k > 0 && is_probe(unit, ids[k - 1]);
                let is_entry_probe_target = Some(id) == first_insn;
                if !prev_is_probe && !is_entry_probe_target {
                    edits.insert_before(id, probe());
                    fctx.stats.transformed(1);
                }
            }
            Ok(edits)
        })?;

        // Phase 2: iterate until no probe crosses a cache line. Each round's
        // padding patches the cached layout instead of re-relaxing from
        // scratch.
        let mut provider = LayoutProvider::new(ctx);
        for _round in 0..16 {
            let layout = provider.layout(unit)?;
            let mut edits = EditSet::new();
            for id in 0..unit.len() {
                if !is_probe(unit, id) {
                    continue;
                }
                let start = layout.addr[id];
                let end = layout.end_addr(id);
                if start / line != (end - 1) / line {
                    // Pad to the next line so the probe sits at its start.
                    let pad = (start / line + 1) * line - start;
                    edits.insert_before(
                        id,
                        Instruction::nop_pad(pad as usize)
                            .into_iter()
                            .map(|i| Entry::Insn(i.into()))
                            .collect(),
                    );
                    stats.matched(1);
                }
            }
            if edits.is_empty() {
                break;
            }
            provider.apply(unit, edits)?;
        }
        if let Some(note) = provider.note() {
            stats.notes.push(note);
        }
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "INSTPREP: {} probes planted, {} line-crossings fixed",
                stats.transformations, stats.matches
            ))
            .field("probes", stats.transformations)
            .field("crossings_fixed", stats.matches)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{PassContext, PassOptions};
    use crate::relax::relax;

    const SAMPLE: &str = r#"
	.type	f, @function
f:
	movl $1, %eax
	cmpl $0, %edi
	je .L
	ret
.L:
	movl $2, %eax
	ret
"#;

    fn probe_addrs(unit: &MaoUnit, line: u64) -> Vec<(u64, u64)> {
        let layout = relax(unit).unwrap();
        (0..unit.len())
            .filter(|&id| is_probe(unit, id))
            .map(|id| (layout.addr[id], layout.end_addr(id)))
            .inspect(|&(s, e)| {
                assert_eq!(
                    s / line,
                    (e - 1) / line,
                    "probe crosses line: {s:#x}..{e:#x}"
                )
            })
            .collect()
    }

    #[test]
    fn probes_at_entry_and_exits() {
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        let stats = InstrumentPrep
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        // 1 entry + 2 rets.
        assert_eq!(stats.transformations, 3);
        let probes = probe_addrs(&unit, 64);
        assert_eq!(probes.len(), 3);
    }

    #[test]
    fn no_probe_crosses_cache_line() {
        // Force a crossing: ~60 bytes of code then a ret near offset 64.
        let body = "\taddl $1, %eax\n".repeat(20); // 60 bytes
        let text = format!(".type f, @function\nf:\n{body}\tret\n");
        let mut unit = MaoUnit::parse(&text).unwrap();
        InstrumentPrep
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        let probes = probe_addrs(&unit, 64); // panics inside on crossing
        assert_eq!(probes.len(), 2);
    }

    #[test]
    fn small_line_option() {
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        InstrumentPrep
            .run(
                &mut unit,
                &mut PassContext::from_options(PassOptions::new().with("line", "8")),
            )
            .unwrap();
        let probes = probe_addrs(&unit, 8);
        assert!(!probes.is_empty());
    }

    #[test]
    fn second_run_adds_nothing() {
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        InstrumentPrep
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        let after_first = unit.emit();
        let stats = InstrumentPrep
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        assert_eq!(stats.transformations, 0);
        assert_eq!(unit.emit(), after_first);
    }

    #[test]
    fn probe_is_the_canonical_5_byte_nop() {
        let mut unit = MaoUnit::parse(SAMPLE).unwrap();
        InstrumentPrep
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        assert!(unit.emit().contains("nopl 0(%rax,%rax,1)"));
    }
}
