//! `SIMADDR` — forward/backward instruction simulation (paper §III.E.m).
//!
//! For the RACEZ sampling race detector, each PMU sample delivers one
//! effective address plus the whole register file. Instead of raising the
//! sampling frequency, MAO simulates a *small subset* of instructions
//! forward and backward from the sample point, recovering the effective
//! addresses of neighbouring memory instructions from the captured register
//! content. The paper reports amplification factors of 4.1–6.3×.
//!
//! The simulated subset: register-to-register moves, immediate moves,
//! immediate add/sub, inc/dec, and `lea` with known inputs. Any other
//! definition makes the register's value unknown (forward) or
//! unrecoverable (backward).

use std::collections::HashMap;

use crate::isa::x86::operand::{Disp, Mem, Operand};
use crate::isa::x86::{def_use, Instruction, Mnemonic, RegId};
use mao_obs::TraceEvent;

use crate::pass::{MaoPass, PassContext, PassError, PassStats};
use crate::profile::{Profile, Sample, Site};
use crate::unit::MaoUnit;

/// A recovered effective address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredAddress {
    /// The memory instruction whose address was recovered.
    pub site: Site,
    /// The effective address.
    pub address: u64,
}

/// Evaluate a memory operand under a partial register valuation.
fn eval_mem(mem: &Mem, regs: &HashMap<RegId, u64>) -> Option<u64> {
    let disp = match &mem.disp {
        Disp::None => 0,
        Disp::Imm(v) => *v,
        Disp::Symbol { .. } => return None,
    };
    let mut addr = disp as u64;
    if let Some(b) = mem.base {
        if b.id == RegId::Rip {
            return None;
        }
        addr = addr.wrapping_add(*regs.get(&b.id)?);
    }
    if let Some(i) = mem.index {
        addr = addr.wrapping_add(regs.get(&i.id)?.wrapping_mul(u64::from(mem.scale)));
    }
    Some(addr)
}

/// The first directly-addressable memory operand of an instruction.
fn mem_operand(insn: &Instruction) -> Option<&Mem> {
    insn.operands.iter().find_map(|op| match op {
        Operand::Mem(m) => Some(m),
        _ => None,
    })
}

/// Result of stepping the simulator over one instruction.
enum Step {
    /// State updated; simulation continues.
    Ok,
    /// Instruction outside the simulated subset: the defined registers
    /// become unknown, simulation continues.
    Clobber,
    /// Control flow or barrier: simulation stops.
    Stop,
}

/// Apply `insn` to the register valuation, forward in time.
fn step_forward(insn: &Instruction, regs: &mut HashMap<RegId, u64>) -> Step {
    use Mnemonic as M;
    let du = def_use(insn);
    if du.barrier || insn.mnemonic.is_control_flow() {
        return Step::Stop;
    }
    let masked = |v: i64| v as u64 & insn.width().mask();
    match (insn.mnemonic, insn.operands.first(), insn.operands.get(1)) {
        (M::Mov, Some(Operand::Imm(v)), Some(Operand::Reg(d))) => {
            regs.insert(d.id, masked(*v));
            Step::Ok
        }
        (M::Mov, Some(Operand::Reg(s)), Some(Operand::Reg(d))) => {
            match regs.get(&s.id).copied() {
                Some(v) => {
                    regs.insert(d.id, v & insn.width().mask());
                }
                None => {
                    regs.remove(&d.id);
                }
            }
            Step::Ok
        }
        (M::Add, Some(Operand::Imm(v)), Some(Operand::Reg(d))) => {
            match regs.get(&d.id).copied() {
                Some(old) => {
                    regs.insert(d.id, old.wrapping_add(*v as u64) & insn.width().mask());
                }
                None => {}
            }
            Step::Ok
        }
        (M::Sub, Some(Operand::Imm(v)), Some(Operand::Reg(d))) => {
            if let Some(old) = regs.get(&d.id).copied() {
                regs.insert(d.id, old.wrapping_sub(*v as u64) & insn.width().mask());
            }
            Step::Ok
        }
        (M::Inc, Some(Operand::Reg(d)), None) => {
            if let Some(old) = regs.get(&d.id).copied() {
                regs.insert(d.id, old.wrapping_add(1) & insn.width().mask());
            }
            Step::Ok
        }
        (M::Dec, Some(Operand::Reg(d)), None) => {
            if let Some(old) = regs.get(&d.id).copied() {
                regs.insert(d.id, old.wrapping_sub(1) & insn.width().mask());
            }
            Step::Ok
        }
        (M::Lea, Some(Operand::Mem(m)), Some(Operand::Reg(d))) => {
            match eval_mem(m, regs) {
                Some(addr) => {
                    regs.insert(d.id, addr & insn.width().mask());
                }
                None => {
                    regs.remove(&d.id);
                }
            }
            Step::Ok
        }
        _ => {
            for d in &du.reg_defs {
                regs.remove(&d.id);
            }
            Step::Clobber
        }
    }
}

/// Un-apply `insn` to the register valuation, walking backward in time.
/// `regs` holds post-instruction values on entry, pre-instruction on exit.
fn step_backward(insn: &Instruction, regs: &mut HashMap<RegId, u64>) -> Step {
    use Mnemonic as M;
    let du = def_use(insn);
    if du.barrier || insn.mnemonic.is_control_flow() {
        return Step::Stop;
    }
    match (insn.mnemonic, insn.operands.first(), insn.operands.get(1)) {
        (M::Add, Some(Operand::Imm(v)), Some(Operand::Reg(d))) => {
            if let Some(after) = regs.get(&d.id).copied() {
                regs.insert(d.id, after.wrapping_sub(*v as u64) & insn.width().mask());
            }
            Step::Ok
        }
        (M::Sub, Some(Operand::Imm(v)), Some(Operand::Reg(d))) => {
            if let Some(after) = regs.get(&d.id).copied() {
                regs.insert(d.id, after.wrapping_add(*v as u64) & insn.width().mask());
            }
            Step::Ok
        }
        (M::Inc, Some(Operand::Reg(d)), None) => {
            if let Some(after) = regs.get(&d.id).copied() {
                regs.insert(d.id, after.wrapping_sub(1) & insn.width().mask());
            }
            Step::Ok
        }
        (M::Dec, Some(Operand::Reg(d)), None) => {
            if let Some(after) = regs.get(&d.id).copied() {
                regs.insert(d.id, after.wrapping_add(1) & insn.width().mask());
            }
            Step::Ok
        }
        (M::Mov, Some(Operand::Reg(s)), Some(Operand::Reg(d))) => {
            // After: d == s. Before: d unknown, s unchanged (so s's value is
            // recoverable *from* d if s is unknown going backward).
            let after_d = regs.get(&d.id).copied();
            regs.remove(&d.id);
            if let Some(v) = after_d {
                regs.entry(s.id).or_insert(v);
            }
            Step::Ok
        }
        _ => {
            // Any other definition destroys backward knowledge of its regs.
            for d in &du.reg_defs {
                regs.remove(&d.id);
            }
            Step::Clobber
        }
    }
}

/// Amplify one sample into recovered addresses for neighbouring memory
/// instructions. `insns` is the function's instruction list; the sample's
/// `insn_index` points into it. Returns recovered (site, address) pairs,
/// excluding the sampled instruction itself.
pub fn amplify_sample(
    function: &str,
    insns: &[&Instruction],
    sample: &Sample,
) -> Vec<RecoveredAddress> {
    let mut out = Vec::new();
    let start = sample.site.insn_index;
    if start >= insns.len() {
        return out;
    }

    // Forward: the snapshot is the state *before* the sampled instruction.
    let mut regs = sample.regs.clone();
    for (idx, insn) in insns.iter().enumerate().skip(start) {
        if idx > start {
            if let Some(mem) = mem_operand(insn) {
                if def_use(insn).mem_read || def_use(insn).mem_write {
                    if let Some(addr) = eval_mem(mem, &regs) {
                        out.push(RecoveredAddress {
                            site: Site::new(function, idx),
                            address: addr,
                        });
                    }
                }
            }
        }
        match step_forward(insn, &mut regs) {
            Step::Stop => break,
            _ => {}
        }
    }

    // Backward from the sample point.
    let mut regs = sample.regs.clone();
    for idx in (0..start).rev() {
        let insn = insns[idx];
        // First recover pre-instruction state, then evaluate the address
        // (operands are read before the instruction executes).
        match step_backward(insn, &mut regs) {
            Step::Stop => break,
            _ => {}
        }
        if let Some(mem) = mem_operand(insn) {
            if def_use(insn).mem_read || def_use(insn).mem_write {
                if let Some(addr) = eval_mem(mem, &regs) {
                    out.push(RecoveredAddress {
                        site: Site::new(function, idx),
                        address: addr,
                    });
                }
            }
        }
    }
    out
}

/// Amplify every sample in `profile` against `unit`. Returns all recovered
/// addresses (the amplification product the paper measures).
pub fn amplify(unit: &MaoUnit, profile: &Profile) -> Vec<RecoveredAddress> {
    let mut out = Vec::new();
    let functions = unit.functions();
    for sample in &profile.samples {
        let Some(function) = functions.iter().find(|f| f.name == sample.site.function) else {
            continue;
        };
        let insns: Vec<&Instruction> = function
            .entry_ids()
            .filter_map(|id| unit.insn(id))
            .collect();
        out.extend(amplify_sample(&function.name, &insns, sample));
    }
    out
}

/// The sample-amplification pass (analysis only: annotates the profile).
#[derive(Debug, Default)]
pub struct AddressSimulation;

impl MaoPass for AddressSimulation {
    fn name(&self) -> &'static str {
        "SIMADDR"
    }

    fn description(&self) -> &'static str {
        "amplify PMU address samples by forward/backward simulation"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let mut stats = PassStats::default();
        let Some(profile) = ctx.profile.take() else {
            ctx.trace(1, || {
                TraceEvent::new("SIMADDR: no profile attached; nothing to do")
            });
            return Ok(stats);
        };
        let recovered = amplify(unit, &profile);
        let original: usize = profile
            .samples
            .iter()
            .filter(|s| s.address.is_some())
            .count();
        stats.matched(original);
        stats.transformed(recovered.len());
        let factor = if original > 0 {
            (original + recovered.len()) as f64 / original as f64
        } else {
            0.0
        };
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "SIMADDR: {original} sampled addresses -> {} total ({factor:.1}x)",
                original + recovered.len()
            ))
            .field("sampled", original)
            .field("amplified", original + recovered.len())
        });
        // Write recovered addresses back as synthetic samples.
        let mut profile = profile;
        for r in recovered {
            profile.add_sample(Sample {
                site: r.site,
                regs: HashMap::new(),
                address: Some(r.address),
            });
        }
        ctx.profile = Some(profile);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;

    /// The paper's example sequence:
    /// ```text
    /// IP1: mov -0x08(%rbp), %edx
    /// IP2: mov %edx, (%rax)
    /// IP3: addl $0x1, -0x4(%rbp)
    /// ```
    const PAPER_SEQ: &str = r#"
	.type	f, @function
f:
	movl -8(%rbp), %edx
	movl %edx, (%rax)
	addl $1, -4(%rbp)
	ret
"#;

    fn sample_at(idx: usize, regs: &[(RegId, u64)]) -> Sample {
        Sample {
            site: Site::new("f", idx),
            regs: regs.iter().copied().collect(),
            address: Some(0),
        }
    }

    #[test]
    fn forward_simulation_recovers_ip2() {
        let unit = MaoUnit::parse(PAPER_SEQ).unwrap();
        let mut profile = Profile::new();
        // Sampled IP1 with %rax and %rbp known.
        profile.add_sample(sample_at(0, &[(RegId::Rax, 0x5000), (RegId::Rbp, 0x7000)]));
        let rec = amplify(&unit, &profile);
        // IP2 (store через %rax) and IP3 (-4(%rbp)) both recovered.
        assert!(rec
            .iter()
            .any(|r| r.site.insn_index == 1 && r.address == 0x5000));
        assert!(rec
            .iter()
            .any(|r| r.site.insn_index == 2 && r.address == 0x7000 - 4));
    }

    #[test]
    fn backward_simulation_recovers_ip2() {
        let unit = MaoUnit::parse(PAPER_SEQ).unwrap();
        let mut profile = Profile::new();
        // Sampled IP3: %rax survived untouched since IP2.
        profile.add_sample(sample_at(2, &[(RegId::Rax, 0x5000), (RegId::Rbp, 0x7000)]));
        let rec = amplify(&unit, &profile);
        assert!(
            rec.iter()
                .any(|r| r.site.insn_index == 1 && r.address == 0x5000),
            "recovered: {rec:?}"
        );
        assert!(rec
            .iter()
            .any(|r| r.site.insn_index == 0 && r.address == 0x7000 - 8));
    }

    #[test]
    fn backward_inverts_immediate_adds() {
        let text = r#"
	.type	f, @function
f:
	movq (%rdi), %rax
	addq $16, %rdi
	movq (%rdi), %rbx
	ret
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let mut profile = Profile::new();
        // Sample the second load; %rdi = 0x1010 there, so the first load
        // read 0x1000.
        profile.add_sample(sample_at(2, &[(RegId::Rdi, 0x1010)]));
        let rec = amplify(&unit, &profile);
        assert!(rec
            .iter()
            .any(|r| r.site.insn_index == 0 && r.address == 0x1000));
    }

    #[test]
    fn unknown_registers_do_not_produce_addresses() {
        let unit = MaoUnit::parse(PAPER_SEQ).unwrap();
        let mut profile = Profile::new();
        profile.add_sample(sample_at(0, &[(RegId::Rbp, 0x7000)])); // %rax unknown
        let rec = amplify(&unit, &profile);
        assert!(rec.iter().all(|r| r.site.insn_index != 1));
        assert!(rec.iter().any(|r| r.site.insn_index == 2));
    }

    #[test]
    fn clobber_kills_forward_knowledge() {
        let text = r#"
	.type	f, @function
f:
	movq (%rdi), %rax
	imulq %rsi, %rdi
	movq (%rdi), %rbx
	ret
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let mut profile = Profile::new();
        profile.add_sample(sample_at(0, &[(RegId::Rdi, 0x1000)]));
        let rec = amplify(&unit, &profile);
        assert!(
            rec.iter().all(|r| r.site.insn_index != 2),
            "imul made %rdi unknown: {rec:?}"
        );
    }

    #[test]
    fn control_flow_stops_simulation() {
        let text = r#"
	.type	f, @function
f:
	movq (%rdi), %rax
	je .L
	movq 8(%rdi), %rbx
.L:
	ret
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let mut profile = Profile::new();
        profile.add_sample(sample_at(0, &[(RegId::Rdi, 0x1000)]));
        let rec = amplify(&unit, &profile);
        assert!(rec.is_empty(), "branch ends the simulated region: {rec:?}");
    }

    #[test]
    fn pass_reports_amplification() {
        let mut unit = MaoUnit::parse(PAPER_SEQ).unwrap();
        let mut profile = Profile::new();
        profile.add_sample(sample_at(0, &[(RegId::Rax, 0x5000), (RegId::Rbp, 0x7000)]));
        let mut ctx = PassContext::default();
        ctx.profile = Some(profile);
        ctx.trace_level = 1;
        let stats = AddressSimulation.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.matches, 1);
        assert_eq!(stats.transformations, 2);
        // The profile came back enriched.
        assert_eq!(ctx.profile.as_ref().unwrap().samples.len(), 3);
        assert!(ctx.rendered_trace()[0].contains("3.0x"));
    }
}
