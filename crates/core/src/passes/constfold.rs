//! `CONSTFOLD` — constant folding (paper §III.D).
//!
//! The second of the standard scalar optimizations MAO offers for simple
//! code generators: when a register provably holds a constant (from a
//! `mov $imm, %reg`) and an immediate ALU operation updates it, the
//! operation is rewritten to a `mov` of the folded constant. The ALU op's
//! flag outputs must be dead (a `mov` sets no flags).

use crate::isa::x86::{def_use, Mnemonic, Operand, Width};
use mao_obs::TraceEvent;

use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The constant folding pass.
#[derive(Debug, Default)]
pub struct ConstantFold;

/// `mov $imm, %reg` with a 32/64-bit register destination.
fn as_const_def(insn: &crate::isa::x86::Instruction) -> Option<(i64, crate::isa::x86::Reg)> {
    if insn.mnemonic != Mnemonic::Mov && insn.mnemonic != Mnemonic::Movabs {
        return None;
    }
    match (insn.operands.first(), insn.operands.get(1)) {
        (Some(Operand::Imm(v)), Some(Operand::Reg(r)))
            if matches!(r.width, Width::B4 | Width::B8) =>
        {
            Some((*v, *r))
        }
        _ => None,
    }
}

/// Apply `op imm` to `value` in the register's width. Returns the folded
/// 64-bit value as seen in the register afterwards.
fn fold(mnemonic: Mnemonic, value: i64, imm: i64, width: Width) -> Option<i64> {
    let v = match mnemonic {
        Mnemonic::Add => value.wrapping_add(imm),
        Mnemonic::Sub => value.wrapping_sub(imm),
        Mnemonic::And => value & imm,
        Mnemonic::Or => value | imm,
        Mnemonic::Xor => value ^ imm,
        Mnemonic::Shl => value.wrapping_shl((imm & 63) as u32),
        Mnemonic::Shr => {
            let masked = (value as u64) & width.mask();
            (masked >> (imm as u32 & (width.bits() - 1))) as i64
        }
        _ => return None,
    };
    let folded = match width {
        Width::B4 => (v as u32) as i64, // 32-bit ops zero-extend
        Width::B8 => v,
        _ => return None,
    };
    // Must be re-materializable by the mov encoder.
    if width == Width::B4 || i32::try_from(folded).is_ok() {
        Some(folded)
    } else {
        None
    }
}

impl MaoPass for ConstantFold {
    fn name(&self) -> &'static str {
        "CONSTFOLD"
    }

    fn description(&self) -> &'static str {
        "rewrite immediate ALU ops on known-constant registers into movs"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let liveness = fctx.liveness(unit, function);
            let mut edits = EditSet::new();
            for (b, block) in cfg.blocks.iter().enumerate() {
                // reg -> known constant.
                let mut known: std::collections::HashMap<crate::isa::x86::RegId, (i64, Width)> =
                    std::collections::HashMap::new();
                for (id, insn) in block.insns(unit) {
                    let du = def_use(insn);
                    if du.barrier {
                        known.clear();
                        continue;
                    }
                    // Try to fold an immediate ALU op on a known register.
                    let mut folded_this = false;
                    if let (mnemonic, Some(Operand::Imm(imm)), Some(Operand::Reg(dst))) =
                        (insn.mnemonic, insn.operands.first(), insn.operands.get(1))
                    {
                        if let Some(&(value, w)) = known.get(&dst.id) {
                            if w == insn.width() && dst.width == w {
                                if let Some(result) = fold(mnemonic, value, *imm, w) {
                                    // The op's flags must be dead.
                                    let flags_after = liveness.flags_live_after(unit, &cfg, b, id);
                                    if !du.flags_def.intersects(flags_after)
                                        && !du.flags_undef.intersects(flags_after)
                                    {
                                        fctx.stats.matched(1);
                                        edits.replace_insn(
                                            id,
                                            crate::isa::x86::insn::build::mov(
                                                w,
                                                Operand::Imm(result),
                                                *dst,
                                            ),
                                        );
                                        fctx.stats.transformed(1);
                                        known.insert(dst.id, (result, w));
                                        folded_this = true;
                                    }
                                }
                            }
                        }
                    }
                    if folded_this {
                        continue;
                    }
                    // Update known constants.
                    if let Some((v, r)) = as_const_def(insn) {
                        known.insert(r.id, (v, r.width));
                    } else {
                        for d in &du.reg_defs {
                            known.remove(&d.id);
                        }
                    }
                }
            }
            Ok(edits)
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!("CONSTFOLD: {} folds", stats.transformations))
                .field("folds", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;

    fn run(text: &str) -> (MaoUnit, PassStats) {
        let mut unit = MaoUnit::parse(text).unwrap();
        let mut ctx = PassContext::default();
        let stats = ConstantFold.run(&mut unit, &mut ctx).unwrap();
        (unit, stats)
    }

    const HEADER: &str = ".type f, @function\nf:\n";

    #[test]
    fn mov_add_folds() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tmovl $10, %eax\n\taddl $5, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        let text = unit.emit();
        assert!(text.contains("movl $15, %eax"), "{text}");
        assert!(!text.contains("addl"));
    }

    #[test]
    fn chained_folds_in_one_run() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tmovl $10, %eax\n\taddl $5, %eax\n\tsubl $3, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 2);
        assert!(unit.emit().contains("movl $12, %eax"));
    }

    #[test]
    fn flags_consumer_blocks_fold() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tmovl $10, %eax\n\taddl $5, %eax\n\tje .L\n.L:\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
        assert!(unit.emit().contains("addl"));
    }

    #[test]
    fn unknown_register_not_folded() {
        let (_unit, stats) = run(&format!("{HEADER}\taddl $5, %eax\n\tret\n"));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn clobber_between_blocks_fold() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovl $10, %eax\n\tmovl %ebx, %eax\n\taddl $5, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn call_clears_knowledge() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovl $10, %eax\n\tcall g\n\taddl $5, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn bitwise_ops_fold() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tmovl $0xff, %eax\n\tandl $0x0f, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        assert!(unit.emit().contains("movl $15, %eax"));
        let (unit, _) = run(&format!(
            "{HEADER}\tmovl $1, %ecx\n\tshll $4, %ecx\n\tret\n"
        ));
        assert!(unit.emit().contains("movl $16, %ecx"));
    }

    #[test]
    fn wrap_around_uses_32bit_semantics() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tmovl $-1, %eax\n\taddl $1, %eax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        assert!(unit.emit().contains("movl $0, %eax"));
    }

    #[test]
    fn width_mismatch_not_folded() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovl $10, %eax\n\taddq $5, %rax\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }
}
