//! Fault-injection passes for testing request isolation.
//!
//! A long-running optimization service must survive a pass blowing up on a
//! pathological unit. These passes exist so tests (and operators probing a
//! deployment) can trigger the failure modes deliberately:
//!
//! * `PANIC` — panics unconditionally (or only when a function matching
//!   `func[NAME]` exists), modeling a pass bug;
//! * `PANIC=sleep_ms[N]` — first sleeps, modeling a runaway pass that must
//!   be cut off by the service's request timeout.

use crate::pass::{MaoPass, PassContext, PassError, PassStats};
use crate::unit::MaoUnit;

/// `PANIC` — deliberately panic (fault injection for isolation tests).
#[derive(Debug, Default)]
pub struct FaultInject;

impl MaoPass for FaultInject {
    fn name(&self) -> &'static str {
        "PANIC"
    }

    fn description(&self) -> &'static str {
        "fault injection: panic (options: func[NAME], sleep_ms[N], error)"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let sleep_ms = ctx.options.get_u64("sleep_ms", 0);
        if sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        }
        if let Some(name) = ctx.options.get("func") {
            if unit.find_function(name).is_none() {
                return Ok(PassStats::default());
            }
        }
        if ctx.options.has("error") {
            return Err(PassError::Other("injected pass error".to_string()));
        }
        panic!("injected pass panic (PANIC fault-injection pass)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassOptions;

    #[test]
    fn panics_unconditionally_by_default() {
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let mut ctx = PassContext::default();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = FaultInject.run(&mut unit, &mut ctx);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn func_filter_skips_when_absent() {
        let mut unit = MaoUnit::parse(".type f, @function\nf:\n\tret\n").unwrap();
        let mut ctx = PassContext::from_options(PassOptions::new().with("func", "nosuch"));
        let stats = FaultInject.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn error_option_returns_structured_error() {
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let mut ctx = PassContext::from_options(PassOptions::new().with("error", ""));
        let err = FaultInject.run(&mut unit, &mut ctx).unwrap_err();
        assert_eq!(err, PassError::Other("injected pass error".into()));
    }
}
