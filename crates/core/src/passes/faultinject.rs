//! Fault-injection passes for testing request isolation.
//!
//! A long-running optimization service must survive a pass blowing up on a
//! pathological unit. These passes exist so tests (and operators probing a
//! deployment) can trigger the failure modes deliberately:
//!
//! * `PANIC` — panics unconditionally (or only when a function matching
//!   `func[NAME]` exists), modeling a pass bug;
//! * `PANIC=sleep_ms[N]` — first sleeps, modeling a runaway pass that must
//!   be cut off by the service's request timeout;
//! * `MISOPT` — deliberately *miscompiles* the unit (corrupts an immediate
//!   or drops an instruction) so the differential checker's oracle,
//!   shrinker, and regression persistence can be exercised end to end
//!   against a known-bad transformation.

use mao_obs::TraceEvent;

use crate::isa::x86::Operand;

use crate::pass::{MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// `PANIC` — deliberately panic (fault injection for isolation tests).
#[derive(Debug, Default)]
pub struct FaultInject;

impl MaoPass for FaultInject {
    fn name(&self) -> &'static str {
        "PANIC"
    }

    fn description(&self) -> &'static str {
        "fault injection: panic (options: func[NAME], sleep_ms[N], error)"
    }

    fn supported_isas(&self) -> &'static [crate::isa::IsaId] {
        &crate::isa::IsaId::ALL
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let sleep_ms = ctx.options.get_u64("sleep_ms", 0);
        if sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        }
        if let Some(name) = ctx.options.get("func") {
            if unit.find_function(name).is_none() {
                return Ok(PassStats::default());
            }
        }
        if ctx.options.has("error") {
            return Err(PassError::Other("injected pass error".to_string()));
        }
        panic!("injected pass panic (PANIC fault-injection pass)");
    }
}

/// `MISOPT` — deliberately miscompile the unit (fault injection for the
/// differential checker).
///
/// Options:
/// * `mode[imm]` (default) — add 1 to the immediate of the `nth` ALU/mov
///   instruction that has one;
/// * `mode[drop]` — delete the `nth` non-control-flow instruction;
/// * `nth[N]` — which candidate to corrupt (default 0, in unit order).
///
/// The corruption is a *semantic* change with an unchanged-looking unit:
/// it still parses, lays out, and runs — only the computed values differ.
/// `mao check` must catch it; if it does not, the oracle is broken.
#[derive(Debug, Default)]
pub struct Misoptimize;

impl MaoPass for Misoptimize {
    fn name(&self) -> &'static str {
        "MISOPT"
    }

    fn description(&self) -> &'static str {
        "fault injection: deliberately miscompile (options: mode[imm|drop], nth[N])"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let mode = ctx.options.get("mode").unwrap_or("imm").to_string();
        let nth = ctx.options.get_u64("nth", 0) as usize;
        let mut stats = PassStats::default();
        let mut edits = EditSet::new();
        let mut seen = 0usize;
        for (id, entry) in unit.entries().iter().enumerate() {
            let Some(insn) = entry.insn() else { continue };
            let candidate = match mode.as_str() {
                "drop" => !insn.mnemonic.is_control_flow(),
                _ => {
                    !insn.mnemonic.is_control_flow()
                        && insn.operands.iter().any(|o| matches!(o, Operand::Imm(_)))
                }
            };
            if !candidate {
                continue;
            }
            if seen < nth {
                seen += 1;
                continue;
            }
            match mode.as_str() {
                "drop" => {
                    edits.delete(id);
                }
                _ => {
                    let mut bad = insn.clone();
                    for op in &mut bad.operands {
                        if let Operand::Imm(v) = op {
                            *v = v.wrapping_add(1);
                            break;
                        }
                    }
                    edits.replace_insn(id, bad);
                }
            }
            stats.transformed(1);
            break;
        }
        unit.apply(edits);
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "MISOPT: injected {} {mode} corruption(s)",
                stats.transformations
            ))
            .field("mode", &mode)
            .field("injected", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassOptions;

    #[test]
    fn panics_unconditionally_by_default() {
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let mut ctx = PassContext::default();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = FaultInject.run(&mut unit, &mut ctx);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn func_filter_skips_when_absent() {
        let mut unit = MaoUnit::parse(".type f, @function\nf:\n\tret\n").unwrap();
        let mut ctx = PassContext::from_options(PassOptions::new().with("func", "nosuch"));
        let stats = FaultInject.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn error_option_returns_structured_error() {
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let mut ctx = PassContext::from_options(PassOptions::new().with("error", ""));
        let err = FaultInject.run(&mut unit, &mut ctx).unwrap_err();
        assert_eq!(err, PassError::Other("injected pass error".into()));
    }

    #[test]
    fn misopt_corrupts_one_immediate() {
        let mut unit =
            MaoUnit::parse(".type f, @function\nf:\n\tmovl $40, %eax\n\taddl $2, %eax\n\tret\n")
                .unwrap();
        let mut ctx = PassContext::default();
        let stats = Misoptimize.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 1);
        let text = unit.emit();
        assert!(text.contains("$41"), "first immediate bumped: {text}");
        assert!(text.contains("$2"), "later immediates untouched: {text}");
    }

    #[test]
    fn misopt_drop_deletes_one_instruction() {
        let mut unit =
            MaoUnit::parse(".type f, @function\nf:\n\tmovl $40, %eax\n\taddl $2, %eax\n\tret\n")
                .unwrap();
        let mut ctx =
            PassContext::from_options(PassOptions::new().with("mode", "drop").with("nth", "1"));
        let stats = Misoptimize.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 1);
        let text = unit.emit();
        assert!(text.contains("movl"), "nth=1 keeps the first insn: {text}");
        assert!(!text.contains("addl"), "nth=1 drops the second: {text}");
    }
}
