//! Shared helpers for the alignment passes: mapping loops to byte spans and
//! the [`LayoutProvider`] every layout-consuming pass obtains layouts from.

use std::sync::Arc;

use crate::cfg::Cfg;
use crate::loops::{Loop, LoopNest};
use crate::pass::{PassContext, PassError};
use crate::relax::{relax_reference, Layout, LayoutCache};
use crate::unit::{EditSet, EntryId, MaoUnit};

/// The layout-consuming passes' window onto relaxation: hands out layouts
/// and applies edits, keeping the fragment model warm so each edit costs an
/// incremental [`LayoutCache::patch`] instead of a from-scratch solve, and
/// full solves are shared through the content-keyed analysis cache. The
/// `legacy-relax` pass option switches to the reference engine — a full
/// entry-at-a-time re-relax per step and a plain `MaoUnit::apply` — which is
/// the baseline `bench_relax` measures against.
pub(crate) struct LayoutProvider {
    legacy: bool,
    cache: LayoutCache,
    legacy_solves: u64,
}

impl LayoutProvider {
    pub(crate) fn new(ctx: &PassContext) -> LayoutProvider {
        LayoutProvider {
            legacy: ctx.options.has("legacy-relax"),
            cache: LayoutCache::with_analyses(ctx.analyses.clone()),
            legacy_solves: 0,
        }
    }

    /// The unit's current layout.
    pub(crate) fn layout(&mut self, unit: &MaoUnit) -> Result<Arc<Layout>, PassError> {
        if self.legacy {
            self.legacy_solves += 1;
            Ok(Arc::new(relax_reference(unit)?))
        } else {
            Ok(self.cache.layout(unit)?)
        }
    }

    /// Apply `edits` to the unit, patching the cached layout incrementally.
    pub(crate) fn apply(&mut self, unit: &mut MaoUnit, edits: EditSet) -> Result<(), PassError> {
        if self.legacy {
            unit.apply(edits);
        } else {
            self.cache.patch(unit, edits)?;
        }
        Ok(())
    }

    /// One-line relaxation summary for the pass's stats notes; `None` when
    /// the provider was never exercised.
    pub(crate) fn note(&self) -> Option<String> {
        if self.legacy {
            return (self.legacy_solves > 0)
                .then(|| format!("relax: {} legacy full solves", self.legacy_solves));
        }
        let s = self.cache.stats();
        if s.solves + s.patches + s.hits == 0 {
            return None;
        }
        Some(format!(
            "relax: {} solves, {} patches, {} cached, {} fallbacks, {} iterations, {} fit checks",
            s.solves, s.patches, s.hits, s.fallbacks, s.iterations, s.rechecks
        ))
    }
}

/// The byte extent of a loop whose blocks are laid out contiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSpan {
    /// First entry id of the loop (insertion point for padding/alignment).
    pub first_entry: EntryId,
    /// Last entry id of the loop.
    pub last_entry: EntryId,
    /// Section-relative start address.
    pub start: u64,
    /// Section-relative end address (exclusive).
    pub end: u64,
}

impl LoopSpan {
    /// Loop size in bytes.
    pub fn size(&self) -> u64 {
        self.end - self.start
    }

    /// Does the span cross a boundary of the given power-of-two `alignment`?
    pub fn crosses(&self, alignment: u64) -> bool {
        if self.size() == 0 {
            return false;
        }
        self.start / alignment != (self.end - 1) / alignment
    }

    /// Number of 16-byte decode lines the loop occupies.
    pub fn decode_lines(&self) -> u64 {
        Layout::decode_lines(self.start, self.end)
    }
}

/// Compute the byte span of `l` (including nested loops' blocks).
///
/// Returns `None` when the loop's entries are not contiguous in layout —
/// the alignment passes skip such loops rather than pad unrelated code.
pub fn loop_span(cfg: &Cfg, nest: &LoopNest, l: &Loop, layout: &Layout) -> Option<LoopSpan> {
    let mut ids: Vec<EntryId> = Vec::new();
    for b in l.all_blocks(nest) {
        ids.extend(cfg.blocks[b].entries.iter().copied());
    }
    if ids.is_empty() {
        return None;
    }
    ids.sort_unstable();
    let first = ids[0];
    let last = *ids.last().expect("non-empty");
    // Contiguity: the loop must own every entry id in its extent.
    if last - first + 1 != ids.len() || ids.windows(2).any(|w| w[1] != w[0] + 1) {
        return None;
    }
    Some(LoopSpan {
        first_entry: first,
        last_entry: last,
        start: layout.addr[first],
        end: layout.end_addr(last),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use crate::relax::relax;
    use crate::unit::MaoUnit;

    #[test]
    fn span_of_simple_loop() {
        let text = r#"
	.type	f, @function
f:
	movl $0, %eax
.L1:
	addl $1, %eax
	cmpl $10, %eax
	jne .L1
	ret
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        let nest = find_loops(&cfg);
        let layout = relax(&unit).unwrap();
        let span = loop_span(&cfg, &nest, &nest.loops[0], &layout).unwrap();
        // addl(3) + cmpl(3) + jne(2) = 8 bytes, starting after the 5-byte mov.
        assert_eq!(span.start, 5);
        assert_eq!(span.size(), 8);
        assert_eq!(span.decode_lines(), 1);
        assert!(!span.crosses(16));
    }

    #[test]
    fn crossing_detection() {
        let s = LoopSpan {
            first_entry: 0,
            last_entry: 0,
            start: 14,
            end: 20,
        };
        assert!(s.crosses(16));
        let s = LoopSpan {
            first_entry: 0,
            last_entry: 0,
            start: 16,
            end: 20,
        };
        assert!(!s.crosses(16));
    }
}
