//! The minimal example pass from the paper's Figure 3: print every function
//! name through the standard tracing facility.

use mao_obs::TraceEvent;

use crate::pass::{MaoPass, PassContext, PassError, PassStats};
use crate::unit::MaoUnit;

/// `MAOPASS` — prints function names (Fig. 3's `MaoPass`).
#[derive(Debug, Default)]
pub struct PrintFunctions;

impl MaoPass for PrintFunctions {
    fn name(&self) -> &'static str {
        "MAOPASS"
    }

    fn description(&self) -> &'static str {
        "example pass: print the name of every function"
    }

    fn supported_isas(&self) -> &'static [crate::isa::IsaId] {
        &crate::isa::IsaId::ALL
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let mut stats = PassStats::default();
        for function in unit.functions_cached() {
            ctx.trace(3, || {
                TraceEvent::new(format!("Func: {}", function.name))
                    .field("function", &function.name)
            });
            stats.matched(1);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassOptions;

    #[test]
    fn prints_function_names_at_level_3() {
        let mut unit =
            MaoUnit::parse(".type f, @function\nf:\n\tret\n.type g, @function\ng:\n\tret\n")
                .unwrap();
        let mut ctx = PassContext::from_options(PassOptions::new().with("trace", "3"));
        let stats = PrintFunctions.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.matches, 2);
        assert_eq!(ctx.rendered_trace(), vec!["Func: f", "Func: g"]);
        assert!(
            ctx.events.iter().all(|ev| ev.scope.is_empty()),
            "scope is stamped by the pipeline"
        );
    }

    #[test]
    fn silent_at_level_0() {
        let mut unit = MaoUnit::parse(".type f, @function\nf:\n\tret\n").unwrap();
        let mut ctx = PassContext::default();
        PrintFunctions.run(&mut unit, &mut ctx).unwrap();
        assert!(ctx.events.is_empty());
    }
}
