//! The MAO optimization passes (paper §III).
//!
//! | Registry name | Paper section | What it does |
//! |---|---|---|
//! | `MAOPASS` | Fig. 3 | example pass: prints function names |
//! | `LFIND` | §III.A | loop recognition report (the paper's example invocation) |
//! | `REDZEXT` | §III.B.a | remove redundant zero-extension moves |
//! | `REDTEST` | §III.B.b | remove redundant `test` instructions |
//! | `REDMOV` | §III.B.c | reuse registers for repeated loads |
//! | `ADDADD` | §III.B.d | fold add/add immediate sequences |
//! | `LOOP16` | §III.C.e | align short loops to 16-byte decode lines |
//! | `LSDFIT` | §III.C.f | shift loops into ≤4 decode lines for the LSD |
//! | `BRALIGN` | §III.C.g | de-alias back branches sharing a PC>>5 bucket |
//! | `DCE` | §III.D | unreachable-code elimination |
//! | `CONSTFOLD` | §III.D | constant folding |
//! | `NOPIN` | §III.E.i | Nopinizer: seeded random NOP insertion |
//! | `NOPKILL` | §III.E.j | Nop Killer: strip alignment NOPs/directives |
//! | `PREFNTA` | §III.E.k | inverse prefetching from reuse-distance profile |
//! | `INSTPREP` | §III.E.l | 5-byte NOPs at entry/exit for instrumentation |
//! | `SIMADDR` | §III.E.m | fwd/bwd instruction simulation of PMU samples |
//! | `SCHED` | §III.F | basic-block list scheduling |
//! | `PANIC` | — | fault injection: deliberate panic/error/sleep for isolation tests |
//! | `MISOPT` | — | fault injection: deliberate miscompile for checker self-tests |

mod addadd;
mod branchalign;
mod constfold;
mod deadcode;
mod faultinject;
mod instrument;
mod layout_util;
mod lfind;
mod loopalign;
mod lsdfit;
mod nopinizer;
mod nopkiller;
mod prefetch;
mod printfn;
mod redmov;
mod redtest;
mod redzext;
pub mod schedule;
pub mod simaddr;

use std::collections::BTreeMap;

use crate::pass::{MaoPass, PassFactory};

pub use crate::isa::x86::cost::CostModel;
pub use schedule::Policy;

/// Build the global registry of all passes.
pub fn registry() -> BTreeMap<&'static str, PassFactory> {
    let mut m: BTreeMap<&'static str, PassFactory> = BTreeMap::new();
    fn add<P: MaoPass + Default + 'static>(
        m: &mut BTreeMap<&'static str, PassFactory>,
        factory: fn() -> Box<dyn MaoPass>,
    ) {
        let name = P::default().name();
        m.insert(name, factory);
    }
    add::<printfn::PrintFunctions>(&mut m, || Box::new(printfn::PrintFunctions));
    add::<lfind::LoopFinder>(&mut m, || Box::new(lfind::LoopFinder));
    add::<redzext::RedundantZeroExtension>(&mut m, || Box::new(redzext::RedundantZeroExtension));
    add::<redtest::RedundantTest>(&mut m, || Box::new(redtest::RedundantTest));
    add::<redmov::RedundantMemMove>(&mut m, || Box::new(redmov::RedundantMemMove));
    add::<addadd::AddAddFold>(&mut m, || Box::new(addadd::AddAddFold));
    add::<loopalign::LoopAlign16>(&mut m, || Box::new(loopalign::LoopAlign16));
    add::<lsdfit::LsdFit>(&mut m, || Box::new(lsdfit::LsdFit));
    add::<branchalign::BranchAlign>(&mut m, || Box::new(branchalign::BranchAlign));
    add::<deadcode::UnreachableCodeElim>(&mut m, || Box::new(deadcode::UnreachableCodeElim));
    add::<constfold::ConstantFold>(&mut m, || Box::new(constfold::ConstantFold));
    add::<nopinizer::Nopinizer>(&mut m, || Box::new(nopinizer::Nopinizer));
    add::<nopkiller::NopKiller>(&mut m, || Box::new(nopkiller::NopKiller));
    add::<prefetch::InversePrefetch>(&mut m, || Box::new(prefetch::InversePrefetch));
    add::<instrument::InstrumentPrep>(&mut m, || Box::new(instrument::InstrumentPrep));
    add::<simaddr::AddressSimulation>(&mut m, || Box::new(simaddr::AddressSimulation));
    add::<schedule::ListSchedule>(&mut m, || Box::new(schedule::ListSchedule));
    add::<faultinject::FaultInject>(&mut m, || Box::new(faultinject::FaultInject));
    add::<faultinject::Misoptimize>(&mut m, || Box::new(faultinject::Misoptimize));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_paper_passes() {
        let r = registry();
        for name in [
            "MAOPASS",
            "LFIND",
            "REDZEXT",
            "REDTEST",
            "REDMOV",
            "ADDADD",
            "LOOP16",
            "LSDFIT",
            "BRALIGN",
            "DCE",
            "CONSTFOLD",
            "NOPIN",
            "NOPKILL",
            "PREFNTA",
            "INSTPREP",
            "SIMADDR",
            "SCHED",
            "PANIC",
            "MISOPT",
        ] {
            assert!(r.contains_key(name), "missing pass {name}");
        }
        assert_eq!(r.len(), 19);
    }

    #[test]
    fn factories_produce_matching_names() {
        for (name, factory) in registry() {
            assert_eq!(factory().name(), name);
        }
    }
}
