//! `REDMOV` — redundant memory-access removal (paper §III.B.c).
//!
//! Phase-ordering in GCC's register allocator produces repeated loads:
//!
//! ```text
//! movq 24(%rsp), %rdx
//! movq 24(%rsp), %rcx
//! ```
//!
//! The second load can reuse the already-loaded register:
//!
//! ```text
//! movq 24(%rsp), %rdx
//! movq %rdx, %rcx
//! ```
//!
//! which is two bytes shorter and performs one explicit memory access.
//! Soundness: between the two loads there must be no store, no barrier, and
//! no redefinition of the first destination or of the address registers.

use std::collections::HashMap;

use crate::isa::x86::operand::{Mem, Operand};
use crate::isa::x86::{def_use, Mnemonic, Reg, Width};
use mao_obs::TraceEvent;

use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The redundant memory-access removal pass.
#[derive(Debug, Default)]
pub struct RedundantMemMove;

/// Is this a plain GPR load `mov mem, reg`?
fn as_load(insn: &crate::isa::x86::Instruction) -> Option<(&Mem, Reg, Width)> {
    if insn.mnemonic != Mnemonic::Mov || insn.lock {
        return None;
    }
    match (insn.operands.first(), insn.operands.get(1)) {
        (Some(Operand::Mem(m)), Some(Operand::Reg(r))) if r.id.is_gpr() && !r.high8 => {
            Some((m, *r, insn.width()))
        }
        _ => None,
    }
}

impl MaoPass for RedundantMemMove {
    fn name(&self) -> &'static str {
        "REDMOV"
    }

    fn description(&self) -> &'static str {
        "replace repeated identical loads with register moves"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let analyze_only = ctx.options.has("count-only");
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let mut edits = EditSet::new();
            for block in &cfg.blocks {
                // Available loads: memory operand -> (dest holding it, width).
                let mut available: HashMap<Mem, (Reg, Width)> = HashMap::new();
                for (id, insn) in block.insns(unit) {
                    let du = def_use(insn);
                    if du.barrier || du.mem_write {
                        available.clear();
                        // Fall through: a barrier also defines registers via
                        // reg_defs handling below (calls clobber, but barrier
                        // already cleared the table).
                    }

                    let mut replaced = false;
                    if let Some((mem, dest, width)) = as_load(insn) {
                        if let Some(&(held, held_width)) = available.get(mem) {
                            if held_width == width && held.id != dest.id {
                                fctx.stats.matched(1);
                                if !analyze_only {
                                    edits.replace_insn(
                                        id,
                                        crate::isa::x86::insn::build::mov(width, held, dest),
                                    );
                                    fctx.stats.transformed(1);
                                }
                                replaced = true;
                            }
                        }
                    }

                    // Invalidate table entries clobbered by this instruction's
                    // register definitions (including the load's own dest).
                    for def in &du.reg_defs {
                        available.retain(|mem, (held, _)| {
                            held.id != def.id && mem.regs_used().all(|r| r.id != def.id)
                        });
                    }

                    // Record this load as available (also when replaced: the
                    // new dest now holds the value too — but the replacement
                    // mov is a reg move, not a load; record under the same
                    // memory key so a third load can reuse either register).
                    // A load that overwrites one of its own address registers
                    // (mov (%rax), %rax) leaves the value unaddressable.
                    if let Some((mem, dest, width)) = as_load(insn) {
                        if mem.regs_used().any(|r| r.id == dest.id) {
                            // Not recordable; the invalidation above already
                            // dropped any entries using the old register.
                        } else if !replaced {
                            available.insert(mem.clone(), (dest, width));
                        } else {
                            // After replacement dest holds the same value.
                            available.entry(mem.clone()).or_insert((dest, width));
                        }
                    }
                }
            }
            Ok(edits)
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!("REDMOV: {} loads reused", stats.transformations))
                .field("reused", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;

    fn run(text: &str) -> (MaoUnit, PassStats) {
        let mut unit = MaoUnit::parse(text).unwrap();
        let mut ctx = PassContext::default();
        let stats = RedundantMemMove.run(&mut unit, &mut ctx).unwrap();
        (unit, stats)
    }

    const HEADER: &str = ".type f, @function\nf:\n";

    #[test]
    fn paper_pattern_rewritten() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tmovq 24(%rsp), %rdx\n\tmovq 24(%rsp), %rcx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 1);
        let text = unit.emit();
        assert!(text.contains("movq %rdx, %rcx"), "{text}");
        assert_eq!(text.matches("24(%rsp)").count(), 1);
    }

    #[test]
    fn store_between_invalidates() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq 24(%rsp), %rdx\n\tmovq %rax, 24(%rsp)\n\tmovq 24(%rsp), %rcx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn call_between_invalidates() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq 24(%rsp), %rdx\n\tcall g\n\tmovq 24(%rsp), %rcx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn dest_redefined_invalidates() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq 24(%rsp), %rdx\n\tmovq %rax, %rdx\n\tmovq 24(%rsp), %rcx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn address_reg_redefined_invalidates() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq 8(%rbx), %rdx\n\taddq $16, %rbx\n\tmovq 8(%rbx), %rcx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn load_overwriting_its_own_base() {
        // mov (%rax), %rax: the loaded value is not addressable afterwards.
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq (%rax), %rax\n\tmovq (%rax), %rcx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn width_mismatch_not_reused() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq 24(%rsp), %rdx\n\tmovl 24(%rsp), %ecx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn different_addresses_not_reused() {
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq 24(%rsp), %rdx\n\tmovq 32(%rsp), %rcx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn three_loads_chain() {
        let (unit, stats) = run(&format!(
            "{HEADER}\tmovq 24(%rsp), %rdx\n\tmovq 24(%rsp), %rcx\n\tmovq 24(%rsp), %rbx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 2);
        let text = unit.emit();
        assert_eq!(text.matches("24(%rsp)").count(), 1);
        assert!(text.contains("movq %rdx, %rcx"));
        assert!(text.contains("movq %rdx, %rbx"));
    }

    #[test]
    fn same_dest_reload_not_touched() {
        // mov M,%rdx ; mov M,%rdx — the second is fully redundant but a
        // self-move replacement would be silly; the pass skips same-dest.
        let (_unit, stats) = run(&format!(
            "{HEADER}\tmovq 24(%rsp), %rdx\n\tmovq 24(%rsp), %rdx\n\tret\n"
        ));
        assert_eq!(stats.transformations, 0);
    }
}
