//! `SCHED` — basic-block list scheduling (paper §III.F).
//!
//! The paper found a 21% opportunity in a hashing microbenchmark purely from
//! instruction order: an `xorl` feeding three independent consumers stalled
//! the reservation stations (`RESOURCE_STALLS:RS_FULL`) depending on how the
//! consumers were ordered, because result forwarding has limited bandwidth.
//! The pass is *"a framework for list-scheduling at the assembly instruction
//! level. By changing the cost functions associated with the instructions,
//! different scheduling heuristics can be implemented. The current cost
//! function ensures that, when scheduling successors of an instruction with
//! multiple fan-outs, the instructions on the critical path are given a
//! higher priority."*
//!
//! Implementation: per block, build the dependence DAG (registers, flags,
//! memory, barriers), compute critical-path priorities, then issue greedily
//! under a simple port model (the paper's Core-2 anecdote: `lea` only on
//! port 0, shifts on ports 0 and 5).

use std::collections::HashMap;

use crate::isa::x86::cost::CostModel;
use crate::isa::x86::{def_use, Flags, Instruction, RegId};
use mao_obs::TraceEvent;

use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, EntryId, MaoUnit};

/// A dependence edge kind (used for latency assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dep {
    /// Read-after-write: full producer latency.
    Raw,
    /// Ordering only (WAR/WAW/memory/flags): next cycle.
    Order,
}

/// The dependence DAG of one schedulable run of instructions.
struct Dag {
    /// preds[i] = list of (producer index, dep kind).
    preds: Vec<Vec<(usize, Dep)>>,
    /// succs[i] = consumer indices.
    succs: Vec<Vec<usize>>,
}

fn build_dag(insns: &[&Instruction]) -> Dag {
    let n = insns.len();
    let mut preds: Vec<Vec<(usize, Dep)>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Last writer / readers per register.
    let mut last_def: HashMap<RegId, usize> = HashMap::new();
    let mut last_uses: HashMap<RegId, Vec<usize>> = HashMap::new();
    let mut last_flag_def: Option<usize> = None;
    let mut flag_uses_since: Vec<usize> = Vec::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut last_barrier: Option<usize> = None;

    let add_edge = |preds: &mut Vec<Vec<(usize, Dep)>>,
                    succs: &mut Vec<Vec<usize>>,
                    from: usize,
                    to: usize,
                    dep: Dep| {
        if from != to && !preds[to].iter().any(|&(p, _)| p == from) {
            preds[to].push((from, dep));
            succs[from].push(to);
        }
    };

    for (i, insn) in insns.iter().enumerate() {
        let du = def_use(insn);

        if let Some(b) = last_barrier {
            add_edge(&mut preds, &mut succs, b, i, Dep::Order);
        }

        // Register dependencies.
        for u in &du.reg_uses {
            if let Some(&d) = last_def.get(&u.id) {
                add_edge(&mut preds, &mut succs, d, i, Dep::Raw);
            }
        }
        for d in &du.reg_defs {
            if let Some(&prev) = last_def.get(&d.id) {
                add_edge(&mut preds, &mut succs, prev, i, Dep::Order); // WAW
            }
            if let Some(readers) = last_uses.get(&d.id) {
                for &r in readers {
                    add_edge(&mut preds, &mut succs, r, i, Dep::Order); // WAR
                }
            }
        }

        // Flag dependencies.
        if !du.flags_use.is_empty() {
            if let Some(d) = last_flag_def {
                add_edge(&mut preds, &mut succs, d, i, Dep::Raw);
            }
        }
        if !du.flags_killed().is_empty() || du.flags_killed() != Flags::NONE {
            if !du.flags_killed().is_empty() {
                if let Some(d) = last_flag_def {
                    add_edge(&mut preds, &mut succs, d, i, Dep::Order); // flags WAW
                }
                for &r in &flag_uses_since {
                    add_edge(&mut preds, &mut succs, r, i, Dep::Order); // flags WAR
                }
            }
        }

        // Memory dependencies (no alias analysis: all stores conflict).
        if du.mem_read {
            if let Some(s) = last_store {
                add_edge(&mut preds, &mut succs, s, i, Dep::Raw);
            }
        }
        if du.mem_write {
            if let Some(s) = last_store {
                add_edge(&mut preds, &mut succs, s, i, Dep::Order);
            }
            for &l in &loads_since_store {
                add_edge(&mut preds, &mut succs, l, i, Dep::Order);
            }
        }

        // Update trackers.
        if du.barrier {
            last_barrier = Some(i);
            // Everything before must come before the barrier.
            for j in 0..i {
                add_edge(&mut preds, &mut succs, j, i, Dep::Order);
            }
        }
        for u in &du.reg_uses {
            last_uses.entry(u.id).or_default().push(i);
        }
        for d in &du.reg_defs {
            last_def.insert(d.id, i);
            last_uses.insert(d.id, Vec::new());
        }
        if !du.flags_killed().is_empty() {
            last_flag_def = Some(i);
            flag_uses_since.clear();
        }
        if !du.flags_use.is_empty() {
            flag_uses_since.push(i);
        }
        if du.mem_write {
            last_store = Some(i);
            loads_since_store.clear();
        } else if du.mem_read {
            loads_since_store.push(i);
        }
    }
    Dag { preds, succs }
}

/// Scheduling priority policy — the paper: "By changing the cost functions
/// associated with the instructions, different scheduling heuristics can be
/// implemented."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// The paper's cost function: critical-path instructions first.
    #[default]
    CriticalPath,
    /// Ablation baseline: keep source order among ready instructions.
    SourceOrder,
}

/// Critical-path priority: longest latency-weighted path to any DAG sink.
fn priorities(dag: &Dag, insns: &[&Instruction], model: &CostModel, _policy: Policy) -> Vec<u64> {
    let n = insns.len();
    let mut prio = vec![0u64; n];
    for i in (0..n).rev() {
        let own = model.sched_latency(insns[i]);
        let best_succ = dag.succs[i].iter().map(|&s| prio[s]).max().unwrap_or(0);
        prio[i] = own + best_succ;
    }
    prio
}

/// Greedy cycle-by-cycle list scheduling under the port model.
/// Returns the new order (indices into the original sequence).
fn schedule(insns: &[&Instruction], model: &CostModel, policy: Policy) -> Vec<usize> {
    let n = insns.len();
    if n <= 1 || policy == Policy::SourceOrder {
        // The ablation baseline: no re-ranking at all.
        return (0..n).collect();
    }
    let dag = build_dag(insns);
    let prio = priorities(&dag, insns, model, policy);

    let mut unscheduled_preds: Vec<usize> = dag.preds.iter().map(Vec::len).collect();
    let mut ready_at = vec![0u64; n]; // earliest cycle each instruction may issue
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut cycle: u64 = 0;

    while order.len() < n {
        // Ready set at this cycle.
        let mut issued_this_cycle = 0usize;
        let mut ports_busy: u64 = 0;
        loop {
            let mut candidates: Vec<usize> = (0..n)
                .filter(|&i| {
                    !done[i]
                        && unscheduled_preds[i] == 0
                        && ready_at[i] <= cycle
                        && (model.ports(insns[i]) & !ports_busy) != 0
                })
                .collect();
            if issued_this_cycle >= model.machine.issue_width as usize || candidates.is_empty() {
                break;
            }
            // Highest priority first; stable on original position.
            candidates.sort_by_key(|&i| (std::cmp::Reverse(prio[i]), i));
            let pick = candidates[0];
            // Claim the least-capable available port (greedy fit).
            let avail = model.ports(insns[pick]) & !ports_busy;
            let port = avail.trailing_zeros();
            ports_busy |= 1 << port;
            issued_this_cycle += 1;
            done[pick] = true;
            order.push(pick);
            for (k, &s) in dag.succs[pick].iter().enumerate() {
                let _ = k;
                unscheduled_preds[s] -= 1;
                let dep = dag.preds[s]
                    .iter()
                    .find(|&&(p, _)| p == pick)
                    .map(|&(_, d)| d)
                    .unwrap_or(Dep::Order);
                let lat = match dep {
                    Dep::Raw => model.sched_latency(insns[pick]),
                    Dep::Order => 1,
                };
                ready_at[s] = ready_at[s].max(cycle + lat);
            }
        }
        cycle += 1;
    }
    order
}

/// The list-scheduling pass.
#[derive(Debug, Default)]
pub struct ListSchedule;

impl MaoPass for ListSchedule {
    fn name(&self) -> &'static str {
        "SCHED"
    }

    fn description(&self) -> &'static str {
        "critical-path list scheduling within basic blocks"
    }

    // Explicitly x86-only (the default, spelled out per the ISA-boundary
    // contract): latencies and dependence edges come from the x86 cost
    // tables and `def_use`.
    fn supported_isas(&self) -> &'static [crate::isa::IsaId] {
        &[crate::isa::IsaId::X86_64]
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let model = crate::isa::x86::cost::current();
        let policy = match ctx.options.get("policy") {
            Some("source-order") => Policy::SourceOrder,
            _ => Policy::CriticalPath,
        };
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let mut edits = EditSet::new();
            for block in &cfg.blocks {
                let all: Vec<(EntryId, &Instruction)> = block.insns(unit).collect();
                if all.len() < 3 {
                    continue;
                }
                // Keep a block-terminating control-flow instruction pinned.
                let (body, _tail) = match all.last() {
                    Some(&(_, last)) if last.mnemonic.is_control_flow() => {
                        all.split_at(all.len() - 1)
                    }
                    _ => (&all[..], &all[..0]),
                };
                if body.len() < 2 {
                    continue;
                }
                let ids: Vec<EntryId> = body.iter().map(|&(id, _)| id).collect();
                let insns: Vec<&Instruction> = body.iter().map(|&(_, i)| i).collect();
                let order = schedule(&insns, &model, policy);
                let moved = order
                    .iter()
                    .enumerate()
                    .filter(|&(slot, &src)| slot != src)
                    .count();
                if moved == 0 {
                    continue;
                }
                fctx.stats.matched(1);
                fctx.stats.transformed(moved);
                for (slot, &src) in order.iter().enumerate() {
                    if slot != src {
                        edits.replace_insn(ids[slot], insns[src].clone());
                    }
                }
            }
            Ok(edits)
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "SCHED: moved {} instructions in {} blocks",
                stats.transformations, stats.matches
            ))
            .field("moved", stats.transformations)
            .field("blocks", stats.matches)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;

    fn mnemonic_order(unit: &MaoUnit) -> Vec<String> {
        unit.entries()
            .iter()
            .filter_map(|e| e.insn())
            .map(|i| i.to_string())
            .collect()
    }

    /// The paper's hashing kernel: xorl feeding three consumers.
    const HASH_KERNEL: &str = r#"
	.type	f, @function
f:
	xorl %edi, %ebx
	subl %ebx, %ecx
	subl %ebx, %edx
	movl %ebx, %edi
	shrl $12, %edi
	xorl %edi, %edx
	ret
"#;

    #[test]
    fn respects_dependencies() {
        let mut unit = MaoUnit::parse(HASH_KERNEL).unwrap();
        ListSchedule
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        let order = mnemonic_order(&unit);
        // The producing xorl must stay first; the final xorl must stay after
        // shrl (RAW on %edi) and after subl %ebx,%edx (WAW-ish on %edx).
        assert_eq!(order[0], "xorl %edi, %ebx");
        let shr = order.iter().position(|s| s.starts_with("shrl")).unwrap();
        let last_xor = order.iter().position(|s| s == "xorl %edi, %edx").unwrap();
        assert!(shr < last_xor);
        let mov = order.iter().position(|s| s.starts_with("movl")).unwrap();
        assert!(mov < shr, "shrl reads %edi written by movl");
        // ret stays the terminator.
        assert_eq!(order.last().unwrap(), "ret");
    }

    #[test]
    fn critical_path_is_prioritized() {
        // Chain: mov -> imul -> imul (long); independent: add, add (short).
        // Critical-path scheduling starts the chain before the adds.
        let text = r#"
	.type	f, @function
f:
	movl %edi, %eax
	imull %esi, %eax
	imull %edx, %eax
	addl $1, %r8d
	addl $1, %r9d
	ret
"#;
        let mut unit = MaoUnit::parse(text).unwrap();
        ListSchedule
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        let order = mnemonic_order(&unit);
        assert_eq!(order[0], "movl %edi, %eax", "chain head first: {order:?}");
    }

    #[test]
    fn loads_hoisted_above_independent_alu() {
        // The load has higher latency; the scheduler should start it early.
        let text = r#"
	.type	f, @function
f:
	addl $1, %ecx
	movq (%rdi), %rax
	addq %rax, %rbx
	ret
"#;
        let mut unit = MaoUnit::parse(text).unwrap();
        ListSchedule
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        let order = mnemonic_order(&unit);
        assert_eq!(order[0], "movq (%rdi), %rax", "{order:?}");
    }

    #[test]
    fn stores_and_loads_not_reordered() {
        let text = r#"
	.type	f, @function
f:
	movq %rax, (%rdi)
	movq (%rdi), %rbx
	movq %rbx, (%rsi)
	ret
"#;
        let mut unit = MaoUnit::parse(text).unwrap();
        let before = mnemonic_order(&unit);
        ListSchedule
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        assert_eq!(mnemonic_order(&unit), before);
    }

    #[test]
    fn flags_producer_consumer_kept_in_order() {
        let text = r#"
	.type	f, @function
f:
	cmpl $5, %edi
	sete %al
	addl $3, %esi
	ret
"#;
        let mut unit = MaoUnit::parse(text).unwrap();
        ListSchedule
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        let order = mnemonic_order(&unit);
        let cmp = order.iter().position(|s| s.starts_with("cmpl")).unwrap();
        let sete = order.iter().position(|s| s.starts_with("sete")).unwrap();
        assert!(cmp < sete);
    }

    #[test]
    fn calls_are_scheduling_barriers() {
        let text = r#"
	.type	f, @function
f:
	movl $1, %edi
	call g
	movl $2, %edi
	ret
"#;
        let mut unit = MaoUnit::parse(text).unwrap();
        let before = mnemonic_order(&unit);
        ListSchedule
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        assert_eq!(mnemonic_order(&unit), before);
    }

    #[test]
    fn semantics_preserving_permutation_only() {
        // Whatever order comes out, it must be a permutation of the input.
        let mut unit = MaoUnit::parse(HASH_KERNEL).unwrap();
        let mut before = mnemonic_order(&unit);
        ListSchedule
            .run(&mut unit, &mut PassContext::default())
            .unwrap();
        let mut after = mnemonic_order(&unit);
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn port_model_matches_paper_anecdote() {
        let m = CostModel::core2();
        let lea = MaoUnit::parse("leal (%r8,%rdi), %ebx\n").unwrap();
        assert_eq!(m.ports(lea.insn(0).unwrap()), 0b00_0001, "lea: port 0 only");
        let sar = MaoUnit::parse("sarl %ecx\n").unwrap();
        assert_eq!(
            m.ports(sar.insn(0).unwrap()),
            0b10_0001,
            "sar: ports 0 and 5"
        );
    }
}
