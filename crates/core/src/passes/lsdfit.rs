//! `LSDFIT` — Loop Stream Detector fitting (paper §III.C.f, Figs. 4/5).
//!
//! The Intel Loop Stream Detector replays decoded loop iterations, bypassing
//! fetch and decode, but only for loops that (on Core-2-era parts) span at
//! most four 16-byte decode lines. The paper's Figure 4 shows a 3-block loop
//! physically spread over six lines; inserting six NOPs in front moves it to
//! span four lines (Figure 5) and doubles its speed.
//!
//! This pass shifts qualifying loops — small enough to fit the LSD window
//! but currently spanning too many lines — by inserting NOPs *before* the
//! loop (executed once on entry, never inside the loop body).

use crate::isa::x86::Instruction;
use mao_asm::Entry;
use mao_obs::TraceEvent;

use crate::pass::{MaoPass, PassContext, PassError, PassStats};
use crate::passes::layout_util::{loop_span, LayoutProvider};
use crate::relax::Layout;
use crate::unit::{EditSet, MaoUnit};

/// The LSD-fitting pass.
#[derive(Debug, Default)]
pub struct LsdFit;

/// Smallest shift `k` (in bytes) that brings `[start+k, start+k+size)` to at
/// most `max_lines` decode lines, if one exists within one line of shifting.
pub(crate) fn fitting_shift(start: u64, size: u64, max_lines: u64) -> Option<u64> {
    if size == 0 || size > max_lines * 16 {
        return None;
    }
    (0..16).find(|k| Layout::decode_lines(start + k, start + k + size) <= max_lines)
}

impl MaoPass for LsdFit {
    fn name(&self) -> &'static str {
        "LSDFIT"
    }

    fn description(&self) -> &'static str {
        "shift loops into the Loop Stream Detector's decode-line window"
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let mut stats = PassStats::default();
        // The LSD window in decode lines (4 on Core-2 era parts; the paper
        // notes the requirement changes across generations). The default
        // comes from the installed cost model — a calibrated table retargets
        // the pass without recompiling; an explicit option still overrides.
        let model_lines = u64::from(crate::isa::x86::cost::current().machine.lsd_max_lines);
        let max_lines = ctx.options.get_u64("max-lines", model_lines.max(1));
        let mut trace: Vec<String> = Vec::new();
        // Layouts come from the shared cache; each NOP insertion patches the
        // cached layout instead of re-relaxing the whole unit.
        let mut provider = LayoutProvider::new(ctx);
        let mut k = 0;
        loop {
            let Some(function) = unit.functions_cached().get(k).cloned() else {
                break;
            };
            let layout = provider.layout(unit)?;
            let analyses = ctx.analyses.for_function(unit, &function);
            let cfg = analyses.cfg(unit, &function);
            let nest = analyses.loops(unit, &function);
            let mut edits = EditSet::new();
            for &li in &nest.innermost() {
                let Some(span) = loop_span(&cfg, &nest, &nest.loops[li], &layout) else {
                    continue;
                };
                if span.decode_lines() <= max_lines {
                    continue;
                }
                let Some(shift) = fitting_shift(span.start, span.size(), max_lines) else {
                    continue; // too big for the window no matter the placement
                };
                if shift == 0 {
                    continue;
                }
                stats.matched(1);
                trace.push(format!(
                    "{}: loop at {:#x} spans {} lines; shifting by {} NOP bytes to fit {}",
                    function.name,
                    span.start,
                    span.decode_lines(),
                    shift,
                    max_lines,
                ));
                let pad: Vec<Entry> = Instruction::nop_pad(shift as usize)
                    .into_iter()
                    .map(|i| Entry::Insn(i.into()))
                    .collect();
                edits.insert_before(span.first_entry, pad);
                stats.transformed(1);
            }
            if !edits.is_empty() {
                provider.apply(unit, edits)?;
            }
            k += 1;
        }
        if let Some(note) = provider.note() {
            stats.notes.push(note);
        }
        for line in trace {
            ctx.trace(2, || TraceEvent::new(line));
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::loops::find_loops;
    use crate::pass::{PassContext, PassOptions};
    use crate::relax::relax;

    /// A ~62-byte three-block loop placed at offset 10 so it spans 5 decode
    /// lines; the pass must shift it into 4.
    fn figure4_like() -> String {
        let mut s = String::from(".type f, @function\nf:\n");
        // 10 bytes of preamble.
        s.push_str("\tnopw 0(%rax,%rax,1)\n\tnopl (%rax)\n\tnop\n");
        s.push_str(".L0:\n");
        s.push_str("\tcmpl %r10d, %edx\n\tjne .L1\n");
        s.push_str("\taddl $7, %r9d\n\taddl $5, %r9d\n\taddl $3, %r9d\n");
        s.push_str(".L1:\n");
        s.push_str("\taddl $9, %r8d\n\tmovl %r10d, %edx\n\taddl $1, %esi\n");
        s.push_str("\taddl $1, %r10d\n\taddl $2, %esi\n\taddl $3, %esi\n");
        s.push_str("\taddl $4, %esi\n\taddl $5, %esi\n\taddl $6, %esi\n");
        s.push_str("\taddl $7, %esi\n\taddl $8, %esi\n");
        s.push_str("\tcmpl $305419896, %r10d\n\tjl .L0\n");
        s.push_str("\tret\n");
        s
    }

    #[test]
    fn oversize_loop_is_shifted_into_window() {
        let mut unit = MaoUnit::parse(&figure4_like()).unwrap();
        let layout = relax(&unit).unwrap();
        let l0 = unit.find_label(".L0").unwrap();
        let start = layout.addr[l0];
        assert_eq!(start, 10);

        let mut ctx = PassContext::default();
        let stats = LsdFit.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 1);

        let layout = relax(&unit).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        let nest = find_loops(&cfg);
        let span = loop_span(&cfg, &nest, &nest.loops[nest.innermost()[0]], &layout).unwrap();
        assert!(
            span.decode_lines() <= 4,
            "loop spans {} lines after fit",
            span.decode_lines()
        );
        // The inserted NOPs are before the loop, not inside it.
        let l0 = unit.find_label(".L0").unwrap();
        assert!(span.first_entry >= l0);
    }

    #[test]
    fn fitting_loop_untouched() {
        // Same loop but starting at 0: within the window already.
        let text = figure4_like().replace("\tnopw 0(%rax,%rax,1)\n\tnopl (%rax)\n\tnop\n", "");
        let mut unit = MaoUnit::parse(&text).unwrap();
        let before = unit.emit();
        let mut ctx = PassContext::default();
        let stats = LsdFit.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
        assert_eq!(unit.emit(), before);
    }

    #[test]
    fn too_large_loop_skipped() {
        let body = "\taddl $1, %eax\n".repeat(30); // 90 bytes > 64
        let text = format!(".type f, @function\nf:\n\tnop\n.L:\n{body}\tjne .L\n\tret\n");
        let mut unit = MaoUnit::parse(&text).unwrap();
        let mut ctx = PassContext::default();
        let stats = LsdFit.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn max_lines_option() {
        // With a 2-line window the figure-4 loop (~62 bytes) can never fit.
        let mut unit = MaoUnit::parse(&figure4_like()).unwrap();
        let mut ctx = PassContext::from_options(PassOptions::new().with("max-lines", "2"));
        let stats = LsdFit.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn fitting_shift_math() {
        // 62 bytes at offset 10: lines(10, 72) = 5; at 16: lines = 4.
        assert_eq!(fitting_shift(10, 62, 4), Some(6));
        // Already fitting: shift 0.
        assert_eq!(fitting_shift(16, 62, 4), Some(0));
        // 65 bytes cannot fit 4 lines.
        assert_eq!(fitting_shift(0, 65, 4), None);
        // Empty loop: no shift.
        assert_eq!(fitting_shift(0, 0, 4), None);
    }

    #[test]
    fn figure_4_to_5_is_six_nops() {
        // The paper's loop spans 6 lines and six NOPs bring it to 4: our
        // synthetic equivalent at offset 10 needs exactly 6 bytes too.
        let mut unit = MaoUnit::parse(&figure4_like()).unwrap();
        let mut ctx = PassContext::default();
        LsdFit.run(&mut unit, &mut ctx).unwrap();
        let nops_before_l0 = unit
            .entries()
            .iter()
            .take_while(|e| e.label() != Some(".L0"))
            .filter(|e| e.insn().is_some_and(Instruction::is_nop))
            .count();
        // 3 preamble NOPs + the inserted pad (1 x 6-byte NOP).
        assert_eq!(nops_before_l0, 4);
    }
}
