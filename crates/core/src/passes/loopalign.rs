//! `LOOP16` — short-loop alignment (paper §III.C.e).
//!
//! The Core-2 front end decodes instructions in 16-byte chunks. A short loop
//! that fits in 16 bytes but happens to *cross* a 16-byte boundary needs two
//! decode lines per iteration instead of one — the effect behind the 7%
//! 252.eon regression between GCC 4.2 and 4.3 the paper dissects.
//!
//! The pass finds innermost loops that would fit within one aligned 16-byte
//! chunk but currently cross a boundary, and inserts a `.p2align 4,,15`
//! before the loop. Relaxation is re-run after every change because moving
//! one loop can move (and re-break) everything after it.

use mao_asm::{Align, Directive, Entry};
use mao_obs::TraceEvent;

use crate::pass::{MaoPass, PassContext, PassError, PassStats};
use crate::passes::layout_util::{loop_span, LayoutProvider};
use crate::unit::{EditSet, MaoUnit};

/// The short-loop 16-byte alignment pass.
#[derive(Debug, Default)]
pub struct LoopAlign16;

impl MaoPass for LoopAlign16 {
    fn name(&self) -> &'static str {
        "LOOP16"
    }

    fn description(&self) -> &'static str {
        "align short innermost loops so they fit one 16-byte decode line"
    }

    // Explicitly x86-only (the default, spelled out per the ISA-boundary
    // contract): decode-line geometry and `.p2align` padding are x86
    // cost-model concepts.
    fn supported_isas(&self) -> &'static [crate::isa::IsaId] {
        &[crate::isa::IsaId::X86_64]
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let mut stats = PassStats::default();
        // Decode-line geometry comes from the installed cost model (16 on
        // the built-in Core-2-like table); non-power-of-two measurements
        // cannot be expressed as a `.p2align`, so fall back to 16.
        let line = match u64::from(crate::isa::x86::cost::current().machine.decode_line) {
            l if l.is_power_of_two() => l,
            _ => 16,
        };
        // Loops at most this many bytes are candidates (default: one line).
        let max_size = ctx.options.get_u64("max-size", line);
        let mut trace: Vec<String> = Vec::new();
        // Layouts come from the shared cache (free when the unit is
        // unchanged); edits patch the cached layout incrementally.
        let mut provider = LayoutProvider::new(ctx);
        let mut k = 0;
        loop {
            let Some(function) = unit.functions_cached().get(k).cloned() else {
                break;
            };
            let layout = provider.layout(unit)?;
            let analyses = ctx.analyses.for_function(unit, &function);
            let cfg = analyses.cfg(unit, &function);
            let nest = analyses.loops(unit, &function);
            let mut edits = EditSet::new();
            for &li in &nest.innermost() {
                let Some(span) = loop_span(&cfg, &nest, &nest.loops[li], &layout) else {
                    continue;
                };
                if span.size() == 0 || span.size() > max_size {
                    continue;
                }
                if !span.crosses(line) {
                    continue;
                }
                stats.matched(1);
                trace.push(format!(
                    "{}: aligning loop at {:#x}..{:#x} ({} bytes)",
                    function.name,
                    span.start,
                    span.end,
                    span.size()
                ));
                edits.insert_before(
                    span.first_entry,
                    vec![Entry::Directive(Directive::Align(Align {
                        alignment: line,
                        fill: None,
                        max_skip: Some(line - 1),
                        p2_form: true,
                    }))],
                );
                stats.transformed(1);
            }
            if !edits.is_empty() {
                provider.apply(unit, edits)?;
            }
            k += 1;
        }
        if let Some(note) = provider.note() {
            stats.notes.push(note);
        }
        for line in trace {
            ctx.trace(2, || TraceEvent::new(line));
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;
    use crate::relax::{relax, Layout};

    /// The §III.C.e loop: movss+add+cmp+jne, 13 bytes. Offset it so it
    /// crosses a 16-byte boundary, run the pass, verify it no longer does.
    #[test]
    fn eon_short_loop_gets_aligned() {
        // 10 bytes of padding puts the 13-byte loop at offset 10: crosses 16.
        let text = r#"
	.type	f, @function
f:
	nopw 0(%rax,%rax,1)
	nopl (%rax)
	nop
.Lloop:
	movss %xmm0, (%rdi,%rax,4)
	addq $1, %rax
	cmpq $8, %rax
	jne .Lloop
	ret
"#;
        let mut unit = MaoUnit::parse(text).unwrap();
        // Confirm the precondition: loop crosses a boundary.
        let layout = relax(&unit).unwrap();
        let start = unit.find_label(".Lloop").unwrap();
        assert_eq!(layout.addr[start], 10);

        let mut ctx = PassContext::default();
        let stats = LoopAlign16.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 1);

        let layout = relax(&unit).unwrap();
        let start_id = unit.find_label(".Lloop").unwrap();
        let start = layout.addr[start_id];
        assert_eq!(start % 16, 0, "loop now starts on a decode line");
        assert_eq!(Layout::decode_lines(start, start + 13), 1);
        assert!(unit.emit().contains(".p2align 4,,15"));
    }

    #[test]
    fn aligned_loop_untouched() {
        let text = r#"
	.type	f, @function
f:
.Lloop:
	movss %xmm0, (%rdi,%rax,4)
	addq $1, %rax
	cmpq $8, %rax
	jne .Lloop
	ret
"#;
        let mut unit = MaoUnit::parse(text).unwrap();
        let before = unit.emit();
        let mut ctx = PassContext::default();
        let stats = LoopAlign16.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
        assert_eq!(unit.emit(), before);
    }

    #[test]
    fn large_loop_not_aligned() {
        // A loop bigger than 16 bytes cannot fit one line; leave it alone.
        let body = "\taddl $1, %eax\n".repeat(8); // 8 * 3 = 24 bytes
        let text = format!(".type f, @function\nf:\n\tnop\n.Lloop:\n{body}\tjne .Lloop\n\tret\n");
        let mut unit = MaoUnit::parse(&text).unwrap();
        let mut ctx = PassContext::default();
        let stats = LoopAlign16.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
    }

    #[test]
    fn max_size_option_widens_candidates() {
        let body = "\taddl $1, %eax\n".repeat(8); // 24 bytes, fits 2 lines
        let text = format!(".type f, @function\nf:\n\tnop\n.Lloop:\n{body}\tjne .Lloop\n\tret\n");
        let mut unit = MaoUnit::parse(&text).unwrap();
        let mut ctx =
            PassContext::from_options(crate::pass::PassOptions::new().with("max-size", "32"));
        let stats = LoopAlign16.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 1);
    }

    #[test]
    fn idempotent_on_second_run() {
        let text = r#"
	.type	f, @function
f:
	nopw 0(%rax,%rax,1)
	nopl (%rax)
	nop
.Lloop:
	movss %xmm0, (%rdi,%rax,4)
	addq $1, %rax
	cmpq $8, %rax
	jne .Lloop
	ret
"#;
        let mut unit = MaoUnit::parse(text).unwrap();
        let mut ctx = PassContext::default();
        LoopAlign16.run(&mut unit, &mut ctx).unwrap();
        let after_first = unit.emit();
        let stats = LoopAlign16.run(&mut unit, &mut ctx).unwrap();
        assert_eq!(stats.transformations, 0);
        assert_eq!(unit.emit(), after_first);
    }
}
