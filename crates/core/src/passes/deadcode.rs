//! `DCE` — unreachable-code elimination (paper §III.D).
//!
//! One of the "standard set of scalar optimizations" MAO offers for simple
//! code generators. Blocks not reachable from the function entry are
//! removed. Labels are kept when anything still references them (data
//! directives — jump tables — or branches anywhere in the unit); functions
//! flagged for unresolved indirect branches are skipped entirely, the
//! pass-level policy decision §II describes.

use std::collections::HashSet;

use mao_asm::{DataItem, Directive, Entry};
use mao_obs::TraceEvent;

use crate::isa::x86;
use crate::pass::{run_functions, MaoPass, PassContext, PassError, PassStats};
use crate::unit::{EditSet, MaoUnit};

/// The unreachable-code elimination pass.
#[derive(Debug, Default)]
pub struct UnreachableCodeElim;

/// Labels referenced from anywhere: branch targets, memory operands, data.
fn referenced_labels(unit: &MaoUnit) -> HashSet<String> {
    let mut refs = HashSet::new();
    for e in unit.entries() {
        match e {
            Entry::Insn(i) => {
                if let Some(t) = i.target_label() {
                    refs.insert(t.to_string());
                }
                let Some(i) = i.x86() else { continue };
                for op in &i.operands {
                    let mem = match op {
                        x86::Operand::Mem(m) | x86::Operand::IndirectMem(m) => m,
                        _ => continue,
                    };
                    if let x86::Disp::Symbol { name, .. } = &mem.disp {
                        refs.insert(name.as_str().to_string());
                    }
                }
            }
            Entry::Directive(Directive::Data { items, .. }) => {
                for item in items {
                    if let DataItem::Symbol(s) = item {
                        refs.insert(s.as_str().to_string());
                    }
                }
            }
            _ => {}
        }
    }
    refs
}

impl MaoPass for UnreachableCodeElim {
    fn name(&self) -> &'static str {
        "DCE"
    }

    fn description(&self) -> &'static str {
        "remove basic blocks unreachable from the function entry"
    }

    fn supported_isas(&self) -> &'static [crate::isa::IsaId] {
        &crate::isa::IsaId::ALL
    }

    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError> {
        let refs = referenced_labels(unit);
        let stats = run_functions(unit, ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let mut edits = EditSet::new();
            if cfg.unresolved_indirect {
                // Flagged function: the safe policy is to not touch it.
                return Ok(edits);
            }
            let reachable = cfg.reachable();
            for (b, block) in cfg.blocks.iter().enumerate() {
                if reachable[b] {
                    continue;
                }
                for &id in &block.entries {
                    match unit.entry(id) {
                        Entry::Insn(_) => {
                            edits.delete(id);
                            fctx.stats.transformed(1);
                        }
                        Entry::Label(l) if !refs.contains(l.as_str()) => {
                            edits.delete(id);
                        }
                        _ => {}
                    }
                }
            }
            Ok(edits)
        })?;
        ctx.trace(1, || {
            TraceEvent::new(format!(
                "DCE: removed {} instructions",
                stats.transformations
            ))
            .field("removed", stats.transformations)
        });
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassContext;

    fn run(text: &str) -> (MaoUnit, PassStats) {
        let mut unit = MaoUnit::parse(text).unwrap();
        let mut ctx = PassContext::default();
        let stats = UnreachableCodeElim.run(&mut unit, &mut ctx).unwrap();
        (unit, stats)
    }

    #[test]
    fn dead_block_after_ret_removed() {
        let (unit, stats) = run(
            ".type f, @function\nf:\n\tret\n.Ldead:\n\taddl $1, %eax\n\taddl $2, %eax\n\tret\n",
        );
        assert_eq!(stats.transformations, 3);
        let text = unit.emit();
        assert!(!text.contains("addl"));
        assert!(!text.contains(".Ldead"));
    }

    #[test]
    fn reachable_code_kept() {
        let (unit, stats) =
            run(".type f, @function\nf:\n\tje .La\n\tret\n.La:\n\taddl $1, %eax\n\tret\n");
        assert_eq!(stats.transformations, 0);
        assert!(unit.emit().contains("addl"));
    }

    #[test]
    fn label_in_jump_table_survives() {
        let text = r#"
	.type	f, @function
f:
	ret
.Ldead:
	ret
	.section	.rodata
.Ltab:
	.quad	.Ldead
"#;
        let (unit, stats) = run(text);
        // The instruction goes; the label stays (referenced by .quad).
        assert_eq!(stats.transformations, 1);
        let text = unit.emit();
        assert!(text.contains(".Ldead:"));
    }

    #[test]
    fn flagged_function_untouched() {
        let text = ".type f, @function\nf:\n\tjmp *%rax\n.Ldead:\n\tret\n";
        let (unit, stats) = run(text);
        assert_eq!(stats.transformations, 0);
        assert!(unit.emit().contains(".Ldead"));
    }

    #[test]
    fn code_after_unconditional_jmp_removed() {
        let (unit, stats) =
            run(".type f, @function\nf:\n\tjmp .Lend\n\taddl $1, %eax\n.Lend:\n\tret\n");
        assert_eq!(stats.transformations, 1);
        assert!(!unit.emit().contains("addl"));
    }
}
