//! Per-function control-flow graph.
//!
//! The paper (§II): in the presence of indirect jumps CFG construction is
//! undecidable in general, but compiler-generated assembly uses a handful of
//! recognizable patterns — chiefly jump tables for `switch`. MAO recognizes
//! those; if a branch cannot be resolved the function is *flagged* and each
//! pass decides whether to proceed.
//!
//! Two resolution patterns are implemented, mirroring the paper's story of
//! going from 246/320 unresolved branches to 4/320 by adding one
//! reaching-definitions-assisted pattern:
//!
//! 1. **Direct**: `jmp *TABLE(,%reg,8)` where `TABLE` labels a run of
//!    `.quad .Lx` items.
//! 2. **Through a register**: `jmp *%reg` where the (unique, possibly
//!    cross-block) reaching definition of `%reg` is a load from such a
//!    table.

use std::collections::HashMap;

use mao_asm::{DataItem, Directive, Entry};

use crate::isa::aarch64::A64Mnemonic;
use crate::isa::x86::operand::{Disp, Operand};
use crate::isa::x86::{def_use, Mnemonic, RegId};
use crate::isa::Insn;
use crate::unit::{EntryId, Function, MaoUnit};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// A basic block: a run of entries with a single entry point and a single
/// exit point.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// Entries in this block (labels, instructions, non-section directives).
    pub entries: Vec<EntryId>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl BasicBlock {
    /// Entry id of the block's last x86 instruction, if any. x86-only
    /// consumers (dataflow, scheduling) see through this; use
    /// [`BasicBlock::terminator_any`] for ISA-neutral construction.
    pub fn terminator<'u>(
        &self,
        unit: &'u MaoUnit,
    ) -> Option<(EntryId, &'u crate::isa::x86::Instruction)> {
        for &id in self.entries.iter().rev() {
            if let Some(i) = unit.insn(id) {
                return Some((id, i));
            }
        }
        None
    }

    /// Entry id of the block terminator instruction regardless of ISA.
    pub fn terminator_any<'u>(&self, unit: &'u MaoUnit) -> Option<(EntryId, &'u Insn)> {
        for &id in self.entries.iter().rev() {
            if let Some(i) = unit.insn_any(id) {
                return Some((id, i));
            }
        }
        None
    }

    /// Iterate the x86 instruction entries of this block.
    pub fn insns<'a, 'u: 'a>(
        &'a self,
        unit: &'u MaoUnit,
    ) -> impl Iterator<Item = (EntryId, &'u crate::isa::x86::Instruction)> + 'a {
        self.entries
            .iter()
            .filter_map(move |&id| unit.insn(id).map(|i| (id, i)))
    }
}

/// Control-flow graph of one function.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Basic blocks in layout order; block 0 is the function entry.
    pub blocks: Vec<BasicBlock>,
    /// True if some indirect branch could not be resolved; passes decide
    /// whether to proceed on flagged functions.
    pub unresolved_indirect: bool,
    /// Number of indirect branches resolved through a jump-table pattern.
    pub resolved_indirect: usize,
}

impl Cfg {
    /// Build the CFG for `function` with both jump-table patterns enabled.
    pub fn build(unit: &MaoUnit, function: &Function) -> Cfg {
        Cfg::build_with_options(unit, function, true)
    }

    /// Build the CFG, optionally disabling the reaching-definitions-assisted
    /// pattern (pattern 2). The paper measured its value: without it,
    /// 246 of 320 indirect branches in a complex code base were unresolved;
    /// with it, 4 (see `exp_indirect`).
    pub fn build_with_options(
        unit: &MaoUnit,
        function: &Function,
        resolve_through_registers: bool,
    ) -> Cfg {
        let body: Vec<EntryId> = function.entry_ids().collect();

        // 1. Find leaders: the first entry, every label, and every entry
        //    following a control-flow instruction.
        let mut is_leader = vec![false; body.len()];
        if !body.is_empty() {
            is_leader[0] = true;
        }
        for (pos, &id) in body.iter().enumerate() {
            match unit.entry(id) {
                Entry::Label(_) => is_leader[pos] = true,
                Entry::Insn(i) if i.is_control_flow() && !i.is_call() => {
                    if pos + 1 < body.len() {
                        is_leader[pos + 1] = true;
                    }
                }
                _ => {}
            }
        }

        // 2. Cut into blocks.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of_pos: Vec<BlockId> = vec![0; body.len()];
        for (pos, &id) in body.iter().enumerate() {
            if is_leader[pos] || blocks.is_empty() {
                blocks.push(BasicBlock::default());
            }
            let b = blocks.len() - 1;
            blocks[b].entries.push(id);
            block_of_pos[pos] = b;
        }

        // Label -> block map.
        let mut label_block: HashMap<&str, BlockId> = HashMap::new();
        for (pos, &id) in body.iter().enumerate() {
            if let Entry::Label(l) = unit.entry(id) {
                label_block.entry(l.as_str()).or_insert(block_of_pos[pos]);
            }
        }

        // 3. Edges.
        let mut cfg = Cfg {
            blocks,
            unresolved_indirect: false,
            resolved_indirect: 0,
        };
        let nblocks = cfg.blocks.len();
        for b in 0..nblocks {
            let term = cfg.blocks[b].terminator_any(unit);
            let mut succs: Vec<BlockId> = Vec::new();
            let mut fallthrough = true;
            if let Some((term_id, Insn::X86(insn))) = term {
                // Only a *final* control-flow instruction terminates;
                // a call in the middle falls through.
                let is_last_insn = cfg.blocks[b]
                    .entries
                    .iter()
                    .rev()
                    .find_map(|&id| unit.insn(id).map(|_| id))
                    == Some(term_id);
                if is_last_insn {
                    match insn.mnemonic {
                        Mnemonic::Jmp => {
                            fallthrough = false;
                            if let Some(target) = insn.target_label() {
                                if let Some(&t) = label_block.get(target) {
                                    succs.push(t);
                                }
                                // Tail-call to external symbol: exit edge.
                            } else {
                                // Indirect jump: try the jump-table patterns.
                                match resolve_indirect(
                                    unit,
                                    function,
                                    term_id,
                                    resolve_through_registers,
                                ) {
                                    Some(labels) => {
                                        cfg.resolved_indirect += 1;
                                        for l in labels {
                                            if let Some(&t) = label_block.get(l.as_str()) {
                                                succs.push(t);
                                            }
                                        }
                                    }
                                    None => cfg.unresolved_indirect = true,
                                }
                            }
                        }
                        Mnemonic::Jcc(_) => {
                            if let Some(target) = insn.target_label() {
                                if let Some(&t) = label_block.get(target) {
                                    succs.push(t);
                                }
                            }
                        }
                        Mnemonic::Ret | Mnemonic::Ud2 | Mnemonic::Hlt | Mnemonic::Int3 => {
                            fallthrough = false;
                        }
                        _ => {}
                    }
                }
            } else if let Some((term_id, Insn::A64(insn))) = term {
                // AArch64 terminators: `b` is unconditional, `b.cond` falls
                // through, `ret` exits; `bl` is a call and falls through.
                // There are no indirect branches in the A64 subset, so no
                // jump-table resolution is needed.
                let is_last_insn = cfg.blocks[b]
                    .entries
                    .iter()
                    .rev()
                    .find_map(|&id| unit.insn_any(id).map(|_| id))
                    == Some(term_id);
                if is_last_insn {
                    match insn.mnemonic {
                        A64Mnemonic::B => {
                            fallthrough = false;
                            if let Some(target) = insn.target_label() {
                                if let Some(&t) = label_block.get(target.as_str()) {
                                    succs.push(t);
                                }
                            }
                        }
                        A64Mnemonic::BCond(_) => {
                            if let Some(target) = insn.target_label() {
                                if let Some(&t) = label_block.get(target.as_str()) {
                                    succs.push(t);
                                }
                            }
                        }
                        A64Mnemonic::Ret => fallthrough = false,
                        _ => {}
                    }
                }
            }
            if fallthrough && b + 1 < nblocks {
                succs.push(b + 1);
            }
            succs.dedup();
            cfg.blocks[b].succs = succs;
        }
        for b in 0..nblocks {
            let succs = cfg.blocks[b].succs.clone();
            for s in succs {
                cfg.blocks[s].preds.push(b);
            }
        }
        cfg
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Is the CFG empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks reachable from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// The block containing entry `id`, if any.
    pub fn block_of(&self, id: EntryId) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.entries.contains(&id))
    }
}

/// Read the jump-table labels starting at `table_label`.
fn table_labels(unit: &MaoUnit, table_label: &str) -> Option<Vec<String>> {
    let start = unit.find_label(table_label)?;
    let mut labels = Vec::new();
    for e in &unit.entries()[start + 1..] {
        match e {
            Entry::Directive(Directive::Data { items, .. }) => {
                for item in items {
                    match item {
                        DataItem::Symbol(s) => labels.push(s.as_str().to_string()),
                        DataItem::Imm(_) => {}
                    }
                }
            }
            Entry::Directive(Directive::Align(_)) => continue,
            _ => break,
        }
    }
    if labels.is_empty() {
        None
    } else {
        Some(labels)
    }
}

/// Does this memory operand look like a scaled jump-table access, and if so,
/// through which symbol?
fn table_symbol(mem: &crate::isa::x86::Mem) -> Option<&str> {
    match &mem.disp {
        Disp::Symbol { name, .. } if mem.scale == 8 || mem.is_rip_relative() => Some(name),
        _ => None,
    }
}

/// Resolve an indirect jump at `jmp_id` to its possible target labels.
fn resolve_indirect(
    unit: &MaoUnit,
    function: &Function,
    jmp_id: EntryId,
    through_registers: bool,
) -> Option<Vec<String>> {
    let insn = unit.insn(jmp_id)?;
    match insn.operands.first() {
        // Pattern 1: jmp *TABLE(,%reg,8)
        Some(Operand::IndirectMem(mem)) => {
            let sym = table_symbol(mem)?;
            table_labels(unit, sym)
        }
        // Pattern 2: jmp *%reg — walk definitions of %reg backwards. This is
        // the "single pattern that uses the data flow framework's reaching
        // definitions functionality" from §II: it follows the unique
        // reaching definition chain across plain moves until it finds the
        // table load.
        Some(Operand::IndirectReg(r)) => {
            if !through_registers {
                return None;
            }
            let mut wanted: RegId = r.id;
            let body: Vec<EntryId> = function.entry_ids().collect();
            let pos = body.iter().position(|&id| id == jmp_id)?;
            for &id in body[..pos].iter().rev() {
                let Some(def) = unit.insn(id) else { continue };
                let du = def_use(def);
                if du.barrier {
                    return None;
                }
                if !du.defs_reg(wanted) {
                    continue;
                }
                // Found the reaching definition of the jump register.
                match (def.mnemonic, def.operands.first()) {
                    (Mnemonic::Mov, Some(Operand::Mem(mem))) => {
                        let sym = table_symbol(mem)?;
                        return table_labels(unit, sym);
                    }
                    (Mnemonic::Mov, Some(Operand::Reg(src))) => {
                        // Plain register copy: keep following.
                        wanted = src.id;
                        continue;
                    }
                    _ => return None,
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(text: &str) -> (MaoUnit, Cfg) {
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions().into_iter().next().expect("a function");
        let cfg = Cfg::build(&unit, &f);
        (unit, cfg)
    }

    const DIAMOND: &str = r#"
	.type	f, @function
f:
	cmpl $0, %eax
	je .Lelse
	movl $1, %ebx
	jmp .Ldone
.Lelse:
	movl $2, %ebx
.Ldone:
	ret
"#;

    #[test]
    fn diamond_structure() {
        let (_unit, cfg) = cfg_for(DIAMOND);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.blocks[0].succs.len(), 2); // je: target + fallthrough
        assert_eq!(cfg.blocks[1].succs, vec![3]); // jmp .Ldone
        assert_eq!(cfg.blocks[2].succs, vec![3]); // fallthrough
        assert!(cfg.blocks[3].succs.is_empty()); // ret
        assert_eq!(cfg.blocks[3].preds.len(), 2);
        assert!(!cfg.unresolved_indirect);
    }

    #[test]
    fn loop_back_edge() {
        let (_unit, cfg) = cfg_for(
            ".type f, @function\nf:\n\tmovl $0, %eax\n.L1:\n\taddl $1, %eax\n\tcmpl $10, %eax\n\tjne .L1\n\tret\n",
        );
        assert_eq!(cfg.len(), 3);
        assert!(cfg.blocks[1].succs.contains(&1), "self loop on .L1 block");
    }

    #[test]
    fn call_does_not_end_block() {
        let (_unit, cfg) = cfg_for(".type f, @function\nf:\n\tcall g\n\tmovl $1, %eax\n\tret\n");
        assert_eq!(cfg.len(), 1);
    }

    #[test]
    fn jump_table_direct_pattern() {
        let text = r#"
	.type	f, @function
f:
	jmp *.Ltab(,%rax,8)
.Lc0:
	ret
.Lc1:
	ret
	.section	.rodata
.Ltab:
	.quad	.Lc0
	.quad	.Lc1
"#;
        let (_unit, cfg) = cfg_for(text);
        assert!(!cfg.unresolved_indirect);
        assert_eq!(cfg.resolved_indirect, 1);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
    }

    #[test]
    fn jump_table_through_register() {
        let text = r#"
	.type	f, @function
f:
	movq .Ltab(,%rdi,8), %rax
	movq %rax, %rcx
	jmp *%rcx
.Lc0:
	ret
.Lc1:
	ret
	.section	.rodata
.Ltab:
	.quad	.Lc0
	.quad	.Lc1
"#;
        let (_unit, cfg) = cfg_for(text);
        assert!(!cfg.unresolved_indirect, "reaching-def pattern resolves");
        assert_eq!(cfg.resolved_indirect, 1);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
    }

    #[test]
    fn unresolvable_indirect_flags_function() {
        let (_unit, cfg) = cfg_for(".type f, @function\nf:\n\tjmp *%rax\n\tret\n");
        assert!(cfg.unresolved_indirect);
    }

    #[test]
    fn barrier_stops_register_resolution() {
        let text = r#"
	.type	f, @function
f:
	movq .Ltab(,%rdi,8), %rax
	call clobber
	jmp *%rax
	.section	.rodata
.Ltab:
	.quad	f
"#;
        let (_unit, cfg) = cfg_for(text);
        assert!(cfg.unresolved_indirect, "call may clobber %rax");
    }

    #[test]
    fn reachability() {
        let (_unit, cfg) = cfg_for(".type f, @function\nf:\n\tret\n.Ldead:\n\tnop\n\tret\n");
        let reach = cfg.reachable();
        assert!(reach[0]);
        assert!(!reach[1], "code after ret with no incoming edge is dead");
    }

    #[test]
    fn tail_call_has_no_successors() {
        let (_unit, cfg) = cfg_for(".type f, @function\nf:\n\tjmp g_external\n");
        assert_eq!(cfg.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(!cfg.unresolved_indirect);
    }

    #[test]
    fn block_of_lookup() {
        let (unit, cfg) = cfg_for(DIAMOND);
        let je = unit
            .entries()
            .iter()
            .position(|e| e.insn().is_some_and(|i| i.mnemonic.is_cond_branch()))
            .unwrap();
        assert_eq!(cfg.block_of(je), Some(0));
        assert_eq!(cfg.block_of(9999), None);
    }
}
