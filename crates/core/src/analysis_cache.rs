//! Per-function analysis memoization for the pass pipeline.
//!
//! Every structural pass starts the same way: build the function's CFG,
//! often its loop nest and dataflow tables on top. Between passes that did
//! not modify a function, those results are identical — the paper's pipeline
//! recomputes them anyway. [`AnalysisCache`] memoizes CFG, loop structure,
//! liveness, and reaching definitions per function, keyed by a content hash
//! of the function's entries *and* their absolute positions, so any edit
//! that changes or moves a function automatically misses.
//!
//! Invalidation is driven by [`MaoUnit::apply`]: interior edits shift entry
//! ids (position is part of the key, so moved functions re-key), and
//! structural edits bump [`MaoUnit::context_epoch`], which flushes the whole
//! cache — necessary because CFG construction can read entries *outside*
//! the function's spans (jump tables in `.rodata`) that the key does not
//! cover.
//!
//! The cache is `Sync`: the parallel driver shares one instance across
//! worker threads. Analyses are built lazily behind [`OnceLock`]s and handed
//! out as [`Arc`]s, so a hit costs one hash, one lock acquisition, and a
//! refcount bump.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::cfg::Cfg;
use crate::dataflow::{Liveness, ReachingDefs};
use crate::isa::IsaId;
use crate::loops::{find_loops, LoopNest};
use crate::relax::{Layout, RelaxError, Relaxed};
use crate::unit::{Function, MaoUnit};

/// Content key of a whole unit, for the layout slot. 128 bits (two
/// differently-seeded hashers) because a 64-bit collision between distinct
/// units would silently hand a request the wrong layout — at 2⁻⁶⁴ per pair
/// that is an acceptable risk only squared.
fn unit_key(unit: &MaoUnit) -> u128 {
    let mut lo = std::collections::hash_map::DefaultHasher::new();
    let mut hi = std::collections::hash_map::DefaultHasher::new();
    0x6d616f_u64.hash(&mut lo);
    0x4c4c564d_u64.hash(&mut hi);
    // The ISA is part of the key: two directive-only units with identical
    // entries but different targets must not share a layout slot.
    unit.isa().tag().hash(&mut lo);
    unit.isa().tag().hash(&mut hi);
    for e in unit.entries() {
        e.hash(&mut lo);
        e.hash(&mut hi);
    }
    (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
}

/// Layout slots kept per unit content hash.
const LAYOUT_CAPACITY: usize = 64;

/// A persistent tier under the in-memory layout slot: solved layouts keyed
/// by unit content hash. `maod` plugs a disk-backed store in here (see
/// `mao-serve`'s `layout_disk`), so a daemon restart — or another instance
/// sharing the directory — skips straight past branch-relaxation fixpoint
/// solves for units it has laid out before. The trait lives in core because
/// [`AnalysisCache::relaxed`] owns the only spot that knows both the key
/// and whether the memory tier missed; core itself ships no implementation.
pub trait LayoutStore: Send + Sync + std::fmt::Debug {
    /// A previously stored layout for `key`, if one decodes cleanly *and*
    /// was solved for the same instruction set (a frame tagged with a
    /// different ISA is as wrong as a checksum mismatch).
    fn load(&self, key: u128, isa: IsaId) -> Option<Layout>;
    /// Persist `layout` under `key`, tagged with the ISA it was solved for
    /// (errors are the store's problem — the tier is an accelerator, not a
    /// source of truth).
    fn store(&self, key: u128, isa: IsaId, layout: &Layout);
}

/// Content key of a function: its absolute spans plus every entry in them.
///
/// Positions are part of the key on purpose: cached analyses store absolute
/// entry ids (CFG blocks hold `EntryId`s), so a function whose body is
/// unchanged but *shifted* by an edit to an earlier function must miss.
pub fn function_key(unit: &MaoUnit, function: &Function) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    function.name.hash(&mut h);
    function.label_id.hash(&mut h);
    for span in &function.spans {
        span.start.hash(&mut h);
        span.end.hash(&mut h);
    }
    for id in function.entry_ids() {
        unit.entry(id).hash(&mut h);
    }
    h.finish()
}

/// Lazily built analyses for one function at one content key.
#[derive(Debug, Default)]
pub struct FunctionAnalyses {
    key: u64,
    cfg: OnceLock<Arc<Cfg>>,
    loops: OnceLock<Arc<LoopNest>>,
    liveness: OnceLock<Arc<Liveness>>,
    reaching: OnceLock<Arc<ReachingDefs>>,
}

impl FunctionAnalyses {
    /// The content key these analyses were built against.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The function's CFG (default build options).
    pub fn cfg(&self, unit: &MaoUnit, function: &Function) -> Arc<Cfg> {
        debug_assert_eq!(
            self.key,
            function_key(unit, function),
            "FunctionAnalyses used with a unit/function it was not keyed for"
        );
        self.cfg
            .get_or_init(|| Arc::new(Cfg::build(unit, function)))
            .clone()
    }

    /// The function's loop nest (Havlak over the cached CFG).
    pub fn loops(&self, unit: &MaoUnit, function: &Function) -> Arc<LoopNest> {
        self.loops
            .get_or_init(|| Arc::new(find_loops(&self.cfg(unit, function))))
            .clone()
    }

    /// Liveness over the cached CFG.
    pub fn liveness(&self, unit: &MaoUnit, function: &Function) -> Arc<Liveness> {
        self.liveness
            .get_or_init(|| Arc::new(Liveness::compute(unit, &self.cfg(unit, function))))
            .clone()
    }

    /// Reaching definitions over the cached CFG.
    pub fn reaching(&self, unit: &MaoUnit, function: &Function) -> Arc<ReachingDefs> {
        self.reaching
            .get_or_init(|| Arc::new(ReachingDefs::compute(unit, &self.cfg(unit, function))))
            .clone()
    }
}

#[derive(Debug, Default)]
struct CacheState {
    /// The `MaoUnit::context_epoch` the map contents are valid for.
    epoch: u64,
    /// Function name → (last-use stamp, analyses at the function's current
    /// key). The stamp drives LRU eviction when a capacity is set.
    map: HashMap<String, (u64, Arc<FunctionAnalyses>)>,
    /// Monotonic access clock for LRU stamps.
    clock: u64,
}

/// Hit/miss/eviction counters, cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that (re)built a `FunctionAnalyses` slot.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Layout lookups answered from the content-keyed layout slot.
    pub layout_hits: u64,
    /// Layout lookups that missed the in-memory slot (subdivided by the
    /// disk counters below when a persistent tier is attached).
    pub layout_misses: u64,
    /// Memory-missed layout lookups answered by the persistent tier.
    pub layout_disk_hits: u64,
    /// Memory-missed layout lookups the persistent tier could not answer
    /// (only counted when a store is attached).
    pub layout_disk_misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Layout hits as a fraction of all layout lookups (0.0 when unused).
    pub fn layout_hit_rate(&self) -> f64 {
        let total = self.layout_hits + self.layout_misses;
        if total == 0 {
            0.0
        } else {
            self.layout_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct LayoutState {
    /// Unit content hash → (last-use stamp, solved layout + fragment model).
    /// Content-keyed, so no epoch tracking is needed: a stale unit simply
    /// never hashes to a live key.
    map: HashMap<u128, (u64, Arc<Relaxed>)>,
    /// Monotonic access clock for LRU stamps.
    clock: u64,
}

/// Counter handles mirroring the cache's internal counters into a metrics
/// registry, attached once via [`AnalysisCache::attach_metrics`].
#[derive(Debug)]
struct CacheMetrics {
    hits: mao_obs::Counter,
    misses: mao_obs::Counter,
    evictions: mao_obs::Counter,
    layout_hits: mao_obs::Counter,
    layout_misses: mao_obs::Counter,
    layout_disk_hits: mao_obs::Counter,
    layout_disk_misses: mao_obs::Counter,
}

/// Shared, thread-safe per-function analysis cache.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    state: Mutex<CacheState>,
    /// Whole-unit layouts, content-keyed (see [`AnalysisCache::layout`]).
    layouts: Mutex<LayoutState>,
    /// Optional persistent tier consulted on memory-tier layout misses.
    layout_store: OnceLock<Arc<dyn LayoutStore>>,
    /// Maximum number of cached functions (0 = unbounded).
    capacity: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    layout_hits: AtomicU64,
    layout_misses: AtomicU64,
    layout_disk_hits: AtomicU64,
    layout_disk_misses: AtomicU64,
    /// Registry counters updated alongside the atomics above (absent until
    /// [`AnalysisCache::attach_metrics`]).
    metrics: OnceLock<CacheMetrics>,
}

impl AnalysisCache {
    /// Empty, unbounded cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Empty cache holding at most `capacity` functions (0 = unbounded);
    /// least-recently-used entries are evicted beyond that.
    pub fn with_capacity(capacity: usize) -> AnalysisCache {
        let cache = AnalysisCache::default();
        cache.capacity.store(capacity as u64, Ordering::Relaxed);
        cache
    }

    /// The capacity bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed) as usize
    }

    /// Mirror this cache's counters into `metrics` (families
    /// `mao_analysis_cache_{hits,misses,evictions}_total` and
    /// `mao_layout_cache_{hits,misses}_total`). Only the first attachment
    /// takes; later calls are no-ops, so a long-lived cache keeps feeding
    /// one registry.
    pub fn attach_metrics(&self, metrics: &mao_obs::Metrics) {
        self.attach_metrics_labeled(metrics, &[]);
    }

    /// Like [`AnalysisCache::attach_metrics`], but every family carries
    /// `labels` — this is how `maod`'s per-shard caches register as
    /// distinct `{shard="N"}` series in one registry.
    pub fn attach_metrics_labeled(&self, metrics: &mao_obs::Metrics, labels: &[(&str, &str)]) {
        let _ = self.metrics.set(CacheMetrics {
            hits: metrics.counter_with("mao_analysis_cache_hits_total", labels),
            misses: metrics.counter_with("mao_analysis_cache_misses_total", labels),
            evictions: metrics.counter_with("mao_analysis_cache_evictions_total", labels),
            layout_hits: metrics.counter_with("mao_layout_cache_hits_total", labels),
            layout_misses: metrics.counter_with("mao_layout_cache_misses_total", labels),
            layout_disk_hits: metrics.counter_with("mao_layout_cache_disk_hits_total", labels),
            layout_disk_misses: metrics.counter_with("mao_layout_cache_disk_misses_total", labels),
        });
    }

    /// Attach a persistent layout tier consulted when the in-memory layout
    /// slot misses. First attachment wins; later calls are no-ops, matching
    /// [`AnalysisCache::attach_metrics`].
    pub fn set_layout_store(&self, store: Arc<dyn LayoutStore>) {
        let _ = self.layout_store.set(store);
    }

    /// The analyses slot for `function`, reused when both the unit's context
    /// epoch and the function's content key are unchanged since the last
    /// lookup, freshly allocated (a miss) otherwise.
    pub fn for_function(&self, unit: &MaoUnit, function: &Function) -> Arc<FunctionAnalyses> {
        let key = function_key(unit, function);
        let mut state = self.state.lock().unwrap();
        if state.epoch != unit.context_epoch() {
            // Cross-function context (e.g. jump tables) may have changed;
            // nothing keyed under the old epoch can be trusted.
            state.map.clear();
            state.epoch = unit.context_epoch();
        }
        state.clock += 1;
        let stamp = state.clock;
        if let Some(existing) = state.map.get_mut(&function.name) {
            if existing.1.key == key {
                existing.0 = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.hits.inc();
                }
                return existing.1.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.misses.inc();
        }
        let fresh = Arc::new(FunctionAnalyses {
            key,
            ..FunctionAnalyses::default()
        });
        state
            .map
            .insert(function.name.clone(), (stamp, fresh.clone()));
        let capacity = self.capacity.load(Ordering::Relaxed) as usize;
        if capacity > 0 {
            while state.map.len() > capacity {
                // O(n) min-stamp scan: capacities are small (hundreds) and
                // eviction only runs once the bound is actually exceeded.
                let lru = state
                    .map
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(name, _)| name.clone())
                    .expect("non-empty map over capacity");
                state.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.evictions.inc();
                }
            }
        }
        fresh
    }

    /// The unit's relaxed layout, keyed by a content hash of every entry so
    /// `maod` reuses layouts across requests carrying the same unit. The
    /// solve runs outside the lock; concurrent misses on the same key may
    /// both solve, and the first insert wins.
    pub fn layout(&self, unit: &MaoUnit) -> Result<Arc<Layout>, RelaxError> {
        Ok(self.relaxed(unit)?.layout.clone())
    }

    /// Like [`AnalysisCache::layout`] but returns the full solved state
    /// (layout plus fragment model) for `LayoutCache` to patch from.
    pub(crate) fn relaxed(&self, unit: &MaoUnit) -> Result<Arc<Relaxed>, RelaxError> {
        let key = unit_key(unit);
        {
            let mut layouts = self.layouts.lock().unwrap();
            layouts.clock += 1;
            let stamp = layouts.clock;
            if let Some(entry) = layouts.map.get_mut(&key) {
                entry.0 = stamp;
                self.layout_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.layout_hits.inc();
                }
                return Ok(entry.1.clone());
            }
        }
        self.layout_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.layout_misses.inc();
        }
        // Memory miss: try the persistent tier before paying for a fixpoint
        // solve. A disk layout is adopted only if it pairs cleanly with a
        // freshly built fragment model (`Relaxed::from_layout` length-checks
        // it against the unit) — the model holds no solver state, so model +
        // stored fixpoint is exactly the state a scratch solve would reach.
        let mut fresh = None;
        if let Some(store) = self.layout_store.get() {
            fresh = store
                .load(key, unit.isa())
                .and_then(|layout| Relaxed::from_layout(unit, layout));
            let (counter, cell) = if fresh.is_some() {
                (
                    &self.layout_disk_hits,
                    self.metrics.get().map(|m| &m.layout_disk_hits),
                )
            } else {
                (
                    &self.layout_disk_misses,
                    self.metrics.get().map(|m| &m.layout_disk_misses),
                )
            };
            counter.fetch_add(1, Ordering::Relaxed);
            if let Some(cell) = cell {
                cell.inc();
            }
        }
        let fresh = match fresh {
            Some(relaxed) => Arc::new(relaxed),
            None => {
                let solved = Arc::new(Relaxed::build(unit)?);
                if let Some(store) = self.layout_store.get() {
                    store.store(key, unit.isa(), &solved.layout);
                }
                solved
            }
        };
        let mut layouts = self.layouts.lock().unwrap();
        layouts.clock += 1;
        let stamp = layouts.clock;
        let entry = layouts
            .map
            .entry(key)
            .or_insert_with(|| (stamp, fresh.clone()));
        let out = entry.1.clone();
        while layouts.map.len() > LAYOUT_CAPACITY {
            let lru = layouts
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(key, _)| *key)
                .expect("non-empty map over capacity");
            layouts.map.remove(&lru);
        }
        Ok(out)
    }

    /// Drop every cached analysis (counters are kept).
    pub fn clear(&self) {
        self.state.lock().unwrap().map.clear();
        self.layouts.lock().unwrap().map.clear();
    }

    /// Number of functions currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            layout_hits: self.layout_hits.load(Ordering::Relaxed),
            layout_misses: self.layout_misses.load(Ordering::Relaxed),
            layout_disk_hits: self.layout_disk_hits.load(Ordering::Relaxed),
            layout_disk_misses: self.layout_disk_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::x86::Instruction;
    use crate::unit::EditSet;

    const TWO_FUNCS: &str = r#"
	.text
	.globl	f
	.type	f, @function
f:
	push %rbp
	pop %rbp
	ret
	.size	f, .-f
	.globl	g
	.type	g, @function
g:
	nop
	nop
	ret
	.size	g, .-g
"#;

    #[test]
    fn repeat_lookup_hits() {
        let unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let cache = AnalysisCache::new();
        let f = unit.find_function("f").unwrap();
        let a1 = cache.for_function(&unit, &f);
        let cfg1 = a1.cfg(&unit, &f);
        let a2 = cache.for_function(&unit, &f);
        let cfg2 = a2.cfg(&unit, &f);
        assert!(
            Arc::ptr_eq(&cfg1, &cfg2),
            "second lookup must reuse the CFG"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn all_analyses_build_once() {
        let unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let cache = AnalysisCache::new();
        let f = unit.find_function("f").unwrap();
        let a = cache.for_function(&unit, &f);
        let loops1 = a.loops(&unit, &f);
        let loops2 = a.loops(&unit, &f);
        assert!(Arc::ptr_eq(&loops1, &loops2));
        let live1 = a.liveness(&unit, &f);
        let live2 = a.liveness(&unit, &f);
        assert!(Arc::ptr_eq(&live1, &live2));
        let reach1 = a.reaching(&unit, &f);
        let reach2 = a.reaching(&unit, &f);
        assert!(Arc::ptr_eq(&reach1, &reach2));
    }

    /// Editing one function must invalidate it — and not its neighbours —
    /// when the edit is interior (non-structural).
    #[test]
    fn interior_edit_invalidates_only_touched_function() {
        let mut unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let cache = AnalysisCache::new();

        // g precedes nothing, so editing g leaves f's span untouched.
        // Edit g (the later function) so f's spans do not shift.
        let f = unit.find_function("f").unwrap();
        let g = unit.find_function("g").unwrap();
        let _ = cache.for_function(&unit, &f).cfg(&unit, &f);
        let _ = cache.for_function(&unit, &g).cfg(&unit, &g);
        let baseline = cache.stats();

        let g_insn = g.entry_ids().find(|&id| unit.insn(id).is_some()).unwrap();
        let mut edits = EditSet::new();
        edits.replace_insn(g_insn, Instruction::nop_of_len(2));
        unit.apply(edits);

        let f2 = unit.find_function("f").unwrap();
        let g2 = unit.find_function("g").unwrap();
        let _ = cache.for_function(&unit, &f2); // unchanged → hit
        let _ = cache.for_function(&unit, &g2); // edited → miss
        let after = cache.stats();
        assert_eq!(after.hits, baseline.hits + 1, "untouched f must hit");
        assert_eq!(after.misses, baseline.misses + 1, "edited g must miss");
    }

    /// An edit to an EARLIER function shifts later functions; their content
    /// is unchanged but their cached analyses hold stale absolute ids, so
    /// they must miss.
    #[test]
    fn shifted_function_misses() {
        let mut unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let cache = AnalysisCache::new();
        let f = unit.find_function("f").unwrap();
        let g = unit.find_function("g").unwrap();
        let _ = cache.for_function(&unit, &f);
        let _ = cache.for_function(&unit, &g);
        let baseline = cache.stats();

        let f_insn = f.entry_ids().find(|&id| unit.insn(id).is_some()).unwrap();
        let mut edits = EditSet::new();
        edits.delete(f_insn);
        unit.apply(edits);

        let g2 = unit.find_function("g").unwrap();
        let _ = cache.for_function(&unit, &g2);
        assert_eq!(
            cache.stats().misses,
            baseline.misses + 1,
            "shifted g holds stale entry ids and must be rebuilt"
        );
    }

    #[test]
    fn layout_slot_is_content_keyed() {
        let cache = AnalysisCache::new();
        let unit = MaoUnit::parse("\tnop\n\tret\n").unwrap();
        let a = cache.layout(&unit).unwrap();
        let b = cache.layout(&unit).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same unit must hit");
        // A separately parsed unit with identical content hits too — that
        // is what lets `maod` reuse layouts across requests.
        let again = MaoUnit::parse("\tnop\n\tret\n").unwrap();
        let c = cache.layout(&again).unwrap();
        assert!(Arc::ptr_eq(&a, &c), "content-identical unit must hit");
        let other = MaoUnit::parse("\tnop\n\tnop\n\tret\n").unwrap();
        let d = cache.layout(&other).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        let stats = cache.stats();
        assert_eq!((stats.layout_hits, stats.layout_misses), (2, 2));
        assert!((stats.layout_hit_rate() - 0.5).abs() < 1e-9);
    }

    /// A structural edit bumps the context epoch and flushes everything.
    #[test]
    fn epoch_bump_flushes_cache() {
        let mut unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let cache = AnalysisCache::new();
        let f = unit.find_function("f").unwrap();
        let _ = cache.for_function(&unit, &f);
        assert_eq!(cache.len(), 1);

        // Deleting a `.size` directive is fine, but deleting a label is
        // structural — use entry_mut which conservatively bumps the epoch.
        let _ = unit.entry_mut(0);
        let f2 = unit.find_function("f").unwrap();
        let _ = cache.for_function(&unit, &f2);
        assert_eq!(
            cache.stats().hits,
            0,
            "epoch bump must flush even content-identical entries"
        );
    }
}
