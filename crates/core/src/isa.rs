//! The ISA boundary for the optimizer core.
//!
//! Passes and relaxation reach every target-specific fact — instruction
//! shapes, encoded lengths, branch forms, effects, alignment policy — through
//! this module rather than importing `mao_x86` directly. Hot paths use the
//! statically dispatched helpers on the neutral [`Insn`] enum (x86 stays
//! monomorphic; the enum arm is resolved at compile time). Cold paths
//! (parsing hooks, nop padding, cost-table binding) go through the
//! [`Isa`] vtable obtained from [`isa()`].
//!
//! The submodules [`x86`] and [`aarch64`] re-export the concrete backends so
//! genuinely target-specific passes (SCHED, SUPEROPT, LOOP16) can name their
//! types without a direct `mao_x86`/`mao_aarch64` dependency edge in the
//! pass source — such passes must also declare their targets via
//! [`crate::pass::MaoPass::supported_isas`].

pub use mao_isa::{
    branch_lengths, effect_summary, encoded_length, isa, relaxable_branch, AlignPolicy, BranchForm,
    EffectSummary, Insn, Isa, IsaError, IsaId, Sym,
};

pub use mao_isa::aarch64;
pub use mao_isa::x86;
