//! Simple register/flag data-flow analyses.
//!
//! The paper (§II): *"MAO offers a simple data flow apparatus, but no alias
//! or points-to analysis. Since many assembly instructions work on
//! registers, this data flow mechanism is powerful and solves many otherwise
//! difficult to reason about problems."*
//!
//! Provided analyses:
//! * [`Liveness`] — per-block live-in/live-out register sets and flag sets
//!   (backward may-analysis). Calls are barriers: everything is live across
//!   them except that flags die (the SysV ABI does not preserve EFLAGS).
//! * [`ReachingDefs`] — per-block sets of instruction entry-ids whose
//!   register definition reaches the block boundary (forward may-analysis).

use std::collections::HashMap;

use crate::isa::x86::{def_use, DefUse, Flags, RegId};

use crate::cfg::{BlockId, Cfg};
use crate::unit::{EntryId, MaoUnit};

/// A dense bitset over the 33 [`RegId`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(u64);

impl RegSet {
    /// Empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// All registers.
    pub const ALL: RegSet = RegSet((1 << crate::isa::x86::reg::NUM_REG_IDS) - 1);

    /// Insert a register.
    pub fn insert(&mut self, id: RegId) {
        self.0 |= 1 << id.index();
    }

    /// Remove a register.
    pub fn remove(&mut self, id: RegId) {
        self.0 &= !(1 << id.index());
    }

    /// Membership test.
    pub fn contains(self, id: RegId) -> bool {
        self.0 & (1 << id.index()) != 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set difference.
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate members.
    pub fn iter(self) -> impl Iterator<Item = RegId> {
        (0..crate::isa::x86::reg::NUM_REG_IDS)
            .filter(move |i| self.0 & (1 << i) != 0)
            .filter_map(RegId::from_index)
    }

    /// Build from an iterator of registers.
    pub fn from_iter(ids: impl IntoIterator<Item = RegId>) -> RegSet {
        let mut s = RegSet::EMPTY;
        for id in ids {
            s.insert(id);
        }
        s
    }
}

/// Defs/uses of one instruction, reduced to sets.
#[derive(Debug, Clone, Default)]
pub struct InsnEffects {
    /// Registers read.
    pub uses: RegSet,
    /// Registers fully or partially written.
    pub defs: RegSet,
    /// Registers whose 64-bit value is *fully* defined (64/32-bit writes);
    /// only these kill for liveness/reaching purposes.
    pub full_defs: RegSet,
    /// Flags read.
    pub flags_use: Flags,
    /// Flags written (defined or undefined).
    pub flags_kill: Flags,
    /// Barrier (call etc.).
    pub barrier: bool,
    /// Explicit or implicit load / store.
    pub mem_read: bool,
    /// Store.
    pub mem_write: bool,
}

impl InsnEffects {
    /// Compute from a raw [`DefUse`].
    pub fn from_def_use(du: &DefUse) -> InsnEffects {
        let mut fx = InsnEffects {
            uses: RegSet::from_iter(du.reg_uses.iter().map(|r| r.id)),
            defs: RegSet::from_iter(du.reg_defs.iter().map(|r| r.id)),
            full_defs: RegSet::EMPTY,
            flags_use: du.flags_use,
            flags_kill: du.flags_killed(),
            barrier: du.barrier,
            mem_read: du.mem_read,
            mem_write: du.mem_write,
        };
        for r in &du.reg_defs {
            if r.write_defines_parent() {
                fx.full_defs.insert(r.id);
            }
        }
        // A partial (8/16-bit) write merges into the old value: it is also a
        // use of the register.
        for r in &du.reg_defs {
            if !r.write_defines_parent() {
                fx.uses.insert(r.id);
            }
        }
        fx
    }

    /// Compute for an instruction.
    pub fn of(insn: &crate::isa::x86::Instruction) -> InsnEffects {
        InsnEffects::from_def_use(&def_use(insn))
    }
}

/// Backward liveness over a CFG.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    /// Registers live at block entry.
    pub live_in: Vec<RegSet>,
    /// Registers live at block exit.
    pub live_out: Vec<RegSet>,
    /// Flags live at block entry.
    pub flags_in: Vec<Flags>,
    /// Flags live at block exit.
    pub flags_out: Vec<Flags>,
}

impl Liveness {
    /// Compute liveness for `cfg`.
    ///
    /// Exit blocks (no successors) conservatively treat the ABI
    /// return/callee-saved registers — and, for flagged CFGs, everything —
    /// as live-out. Flags are never live across function exit.
    pub fn compute(unit: &MaoUnit, cfg: &Cfg) -> Liveness {
        let n = cfg.len();
        // Per-block gen (upward-exposed uses) and kill (full defs).
        let mut gen = vec![RegSet::EMPTY; n];
        let mut kill = vec![RegSet::EMPTY; n];
        let mut fgen = vec![Flags::NONE; n];
        let mut fkill = vec![Flags::NONE; n];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for (_, insn) in block.insns(unit) {
                let fx = InsnEffects::of(insn);
                gen[b] = gen[b].union(fx.uses.difference(kill[b]));
                kill[b] = kill[b].union(fx.full_defs);
                fgen[b] |= fx.flags_use - fkill[b];
                fkill[b] |= fx.flags_kill;
                if fx.barrier {
                    // A call reads argument registers we cannot see; treat
                    // all non-killed registers as upward-exposed.
                    gen[b] = gen[b].union(RegSet::ALL.difference(kill[b]));
                    // And kills the flags (not preserved across calls).
                    fkill[b] |= Flags::ALL;
                }
            }
        }

        // At function exit everything may be observed by the caller except
        // flags.
        let exit_live = RegSet::ALL;

        let mut live_in = vec![RegSet::EMPTY; n];
        let mut live_out = vec![RegSet::EMPTY; n];
        let mut flags_in = vec![Flags::NONE; n];
        let mut flags_out = vec![Flags::NONE; n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let mut out = RegSet::EMPTY;
                let mut fout = Flags::NONE;
                if cfg.blocks[b].succs.is_empty() || cfg.unresolved_indirect {
                    out = exit_live;
                }
                for &s in &cfg.blocks[b].succs {
                    out = out.union(live_in[s]);
                    fout |= flags_in[s];
                }
                let inn = gen[b].union(out.difference(kill[b]));
                let finn = fgen[b] | (fout - fkill[b]);
                if inn != live_in[b]
                    || out != live_out[b]
                    || finn != flags_in[b]
                    || fout != flags_out[b]
                {
                    changed = true;
                    live_in[b] = inn;
                    live_out[b] = out;
                    flags_in[b] = finn;
                    flags_out[b] = fout;
                }
            }
        }
        Liveness {
            live_in,
            live_out,
            flags_in,
            flags_out,
        }
    }

    /// Flags live immediately *after* the instruction at `pos` within block
    /// `b` (walking the block backwards from its end).
    pub fn flags_live_after(&self, unit: &MaoUnit, cfg: &Cfg, b: BlockId, entry: EntryId) -> Flags {
        let mut live = self.flags_out[b];
        let insns: Vec<_> = cfg.blocks[b].insns(unit).collect();
        for &(id, insn) in insns.iter().rev() {
            if id == entry {
                return live;
            }
            let fx = InsnEffects::of(insn);
            live = fx.flags_use | (live - fx.flags_kill);
        }
        live
    }
}

/// A register definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefSite {
    /// Instruction entry id.
    pub entry: EntryId,
    /// Register defined.
    pub reg: RegId,
}

/// Forward reaching definitions over a CFG.
#[derive(Debug, Clone, Default)]
pub struct ReachingDefs {
    /// Definitions reaching each block's entry.
    pub reach_in: Vec<Vec<DefSite>>,
    /// Definitions reaching each block's exit.
    pub reach_out: Vec<Vec<DefSite>>,
}

impl ReachingDefs {
    /// Compute reaching definitions for `cfg`.
    pub fn compute(unit: &MaoUnit, cfg: &Cfg) -> ReachingDefs {
        let n = cfg.len();
        // Per block: defs generated (last def of each reg) and regs killed.
        let mut gen: Vec<HashMap<RegId, EntryId>> = vec![HashMap::new(); n];
        let mut kill = vec![RegSet::EMPTY; n];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for (id, insn) in block.insns(unit) {
                let fx = InsnEffects::of(insn);
                for reg in fx.defs.iter() {
                    gen[b].insert(reg, id);
                    if fx.full_defs.contains(reg) {
                        kill[b].insert(reg);
                    }
                }
            }
        }

        let mut reach_in: Vec<Vec<DefSite>> = vec![Vec::new(); n];
        let mut reach_out: Vec<Vec<DefSite>> = vec![Vec::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                let mut inn: Vec<DefSite> = Vec::new();
                for &p in &cfg.blocks[b].preds {
                    for &d in &reach_out[p] {
                        if !inn.contains(&d) {
                            inn.push(d);
                        }
                    }
                }
                let mut out: Vec<DefSite> = inn
                    .iter()
                    .copied()
                    .filter(|d| !kill[b].contains(d.reg))
                    .collect();
                for (&reg, &entry) in &gen[b] {
                    let site = DefSite { entry, reg };
                    if !out.contains(&site) {
                        out.push(site);
                    }
                }
                out.sort_by_key(|d| (d.entry, d.reg.index()));
                inn.sort_by_key(|d| (d.entry, d.reg.index()));
                if inn != reach_in[b] || out != reach_out[b] {
                    changed = true;
                    reach_in[b] = inn;
                    reach_out[b] = out;
                }
            }
        }
        ReachingDefs {
            reach_in,
            reach_out,
        }
    }

    /// The definitions of `reg` reaching the *start* of block `b`.
    pub fn defs_of(&self, b: BlockId, reg: RegId) -> Vec<EntryId> {
        self.reach_in[b]
            .iter()
            .filter(|d| d.reg == reg)
            .map(|d| d.entry)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::x86::Cond;
    use crate::unit::MaoUnit;

    fn analyse(text: &str) -> (MaoUnit, Cfg, Liveness) {
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        let live = Liveness::compute(&unit, &cfg);
        (unit, cfg, live)
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(RegId::Rax);
        s.insert(RegId::R15);
        assert!(s.contains(RegId::Rax));
        assert_eq!(s.len(), 2);
        s.remove(RegId::Rax);
        assert!(!s.contains(RegId::Rax));
        let t = RegSet::from_iter([RegId::Rbx, RegId::R15]);
        assert_eq!(s.union(t).len(), 2);
        assert_eq!(t.difference(s).iter().next(), Some(RegId::Rbx));
    }

    #[test]
    fn partial_write_is_also_use() {
        // movb $1, %al merges into rax: uses rax.
        let unit = MaoUnit::parse("movb $1, %al\n").unwrap();
        let fx = InsnEffects::of(unit.insn(0).unwrap());
        assert!(fx.defs.contains(RegId::Rax));
        assert!(!fx.full_defs.contains(RegId::Rax));
        assert!(fx.uses.contains(RegId::Rax));
        // movl $1, %eax zero-extends: full def, not a use.
        let unit = MaoUnit::parse("movl $1, %eax\n").unwrap();
        let fx = InsnEffects::of(unit.insn(0).unwrap());
        assert!(fx.full_defs.contains(RegId::Rax));
        assert!(!fx.uses.contains(RegId::Rax));
    }

    #[test]
    fn liveness_through_diamond() {
        let (_u, _cfg, live) = analyse(
            r#"
	.type	f, @function
f:
	movl $1, %ecx
	cmpl $0, %eax
	je .Le
	movl %ecx, %ebx
	jmp .Ld
.Le:
	movl $2, %ebx
.Ld:
	ret
"#,
        );
        // %ecx defined in block 0, used in block 1: live-in of block 1.
        assert!(live.live_in[1].contains(RegId::Rcx));
        // Not upward-exposed into block 0 (defined there first).
        assert!(!live.live_in[0].contains(RegId::Rcx));
    }

    #[test]
    fn flags_liveness() {
        let (_u, _cfg, live) = analyse(
            r#"
	.type	f, @function
f:
	subl $16, %r15d
	je .Lx
	nop
.Lx:
	ret
"#,
        );
        // Block 0 consumes ZF internally via je; nothing after needs flags.
        assert_eq!(live.flags_out[1], Flags::NONE);
        assert_eq!(live.flags_in[0], Flags::NONE);
    }

    #[test]
    fn flags_live_across_blocks() {
        // cmp in block 0; jcc consuming in block 1 -> flags live across edge.
        let (_u, _cfg, live) = analyse(
            r#"
	.type	f, @function
f:
	cmpl $0, %eax
	nop
.Lmid:
	jg .Lend
	nop
.Lend:
	ret
"#,
        );
        assert!(live.flags_out[0].contains(Cond::G.flags_read()));
    }

    #[test]
    fn flags_live_after_walks_block() {
        let text = r#"
	.type	f, @function
f:
	subl $16, %r15d
	testl %r15d, %r15d
	jne .Lx
	nop
.Lx:
	ret
"#;
        let (unit, cfg, live) = analyse(text);
        let sub_id = unit
            .entries()
            .iter()
            .position(|e| {
                e.insn()
                    .is_some_and(|i| i.mnemonic == crate::isa::x86::Mnemonic::Sub)
            })
            .unwrap();
        // After the subl, the testl and jne follow: ZF is read (by jne) but
        // killed first by testl, so only testl's uses count — nothing.
        let after = live.flags_live_after(&unit, &cfg, 0, sub_id);
        assert_eq!(after, Flags::NONE);
        let test_id = sub_id + 1;
        let after = live.flags_live_after(&unit, &cfg, 0, test_id);
        assert_eq!(after, Flags::ZF);
    }

    #[test]
    fn reaching_defs_merge() {
        let text = r#"
	.type	f, @function
f:
	cmpl $0, %edi
	je .Le
	movl $1, %eax
	jmp .Ld
.Le:
	movl $2, %eax
.Ld:
	ret
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        let rd = ReachingDefs::compute(&unit, &cfg);
        let merge_block = 3;
        let defs = rd.defs_of(merge_block, RegId::Rax);
        assert_eq!(defs.len(), 2, "both movs reach the merge: {defs:?}");
    }

    #[test]
    fn reaching_defs_kill() {
        let text = r#"
	.type	f, @function
f:
	movl $1, %eax
	nop
.Lb:
	movl $2, %eax
	nop
.Lc:
	ret
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let f = unit.functions().into_iter().next().unwrap();
        let cfg = Cfg::build(&unit, &f);
        let rd = ReachingDefs::compute(&unit, &cfg);
        let last = cfg.len() - 1;
        let defs = rd.defs_of(last, RegId::Rax);
        assert_eq!(defs.len(), 1, "second def kills the first");
    }
}
