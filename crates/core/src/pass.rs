//! The pass manager: registration, options, ordering, tracing.
//!
//! Mirrors the paper's §III.A machinery in idiomatic Rust:
//!
//! * passes are named and looked up in a registry
//!   (`REGISTER_FUNC_PASS("MAOPASS", MaoPass)` → [`registry`]);
//! * invocation and ordering are controlled by a command-line option string
//!   (`--mao=LFIND=trace[0]:ASM=o[/dev/null]` → [`parse_invocations`]);
//! * every pass gets a tracing facility and pass-specific options
//!   (`MAO_OPTIONS_DEFINE` → [`PassOptions`]).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mao_obs::{Obs, TraceEvent};

use crate::analysis_cache::{AnalysisCache, CacheStats};
use crate::isa::IsaId;
use crate::profile::Profile;
use crate::unit::{EditSet, Function, MaoUnit};

/// Error produced by a pass or by the pipeline driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// Named pass not found in the registry.
    UnknownPass(String),
    /// The pass does not support the unit's instruction set. Requesting an
    /// x86-only pass (SUPEROPT, SCHED, LOOP16, ...) on an AArch64 unit is a
    /// structured pipeline error, never a panic.
    UnsupportedIsa {
        /// Registry name of the pass.
        pass: String,
        /// The unit's ISA, which the pass does not declare support for.
        isa: IsaId,
    },
    /// Malformed `--mao=` option string.
    BadOptions(String),
    /// Relaxation failed inside a pass.
    Relax(String),
    /// Any other pass-specific failure.
    Other(String),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::UnknownPass(p) => write!(f, "unknown pass `{p}`"),
            PassError::UnsupportedIsa { pass, isa } => {
                write!(f, "pass `{pass}` does not support ISA `{isa}`")
            }
            PassError::BadOptions(m) => write!(f, "bad --mao options: {m}"),
            PassError::Relax(m) => write!(f, "relaxation failed: {m}"),
            PassError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for PassError {}

impl From<crate::relax::RelaxError> for PassError {
    fn from(e: crate::relax::RelaxError) -> PassError {
        PassError::Relax(e.to_string())
    }
}

/// Pass-specific options, parsed from `NAME=opt[value],opt2[value2]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassOptions {
    map: BTreeMap<String, String>,
}

impl PassOptions {
    /// Empty options.
    pub fn new() -> PassOptions {
        PassOptions::default()
    }

    /// Set an option (builder style).
    pub fn with(mut self, key: &str, value: &str) -> PassOptions {
        self.map.insert(key.to_string(), value.to_string());
        self
    }

    /// Set an option.
    pub fn set(&mut self, key: &str, value: &str) {
        self.map.insert(key.to_string(), value.to_string());
    }

    /// Raw option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Option present at all (with or without a value)?
    pub fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Integer option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Float option with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Statistics returned by one pass invocation (feeds the Fig. 7 table).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Number of code transformations performed.
    pub transformations: usize,
    /// Number of opportunities examined (pattern matches found, whether or
    /// not transformed) — lets analysis-only runs report counts.
    pub matches: usize,
    /// Free-form notes (one per interesting event).
    pub notes: Vec<String>,
}

impl PassStats {
    /// Record a transformation.
    pub fn transformed(&mut self, n: usize) {
        self.transformations += n;
    }

    /// Record an examined opportunity.
    pub fn matched(&mut self, n: usize) {
        self.matches += n;
    }
}

/// Context handed to every pass: options, structured tracing, telemetry,
/// optional profile data.
#[derive(Debug, Default)]
pub struct PassContext {
    /// Options for this invocation.
    pub options: PassOptions,
    /// Trace verbosity (0 = silent); the `trace[N]` option sets it.
    pub trace_level: u8,
    /// Registry name of the running pass; the pipeline fills it and
    /// [`PassContext::trace`] stamps it onto events whose scope is empty.
    pub pass: String,
    /// Captured structured trace events, in emission order. The legacy
    /// one-line stderr format is [`TraceEvent::legacy_line`]; see
    /// [`PassContext::rendered_trace`].
    pub events: Vec<TraceEvent>,
    /// Echo each kept event to stderr (legacy rendering) as it is emitted.
    pub echo_stderr: bool,
    /// Hardware-counter / reuse-distance profile, when provided.
    pub profile: Option<Profile>,
    /// Worker threads for the function-level driver (1 = sequential; the
    /// pipeline sets this from [`PipelineConfig::jobs`]).
    pub jobs: usize,
    /// Shared per-function analysis cache, reused across passes of one
    /// pipeline run and across worker threads.
    pub analyses: Arc<AnalysisCache>,
    /// Telemetry sinks (span recorder + metrics registry); defaults to a
    /// disabled recorder and a private registry, both effectively free.
    pub obs: Obs,
}

impl PassContext {
    /// Build a context from options (reads `trace[N]`).
    pub fn from_options(options: PassOptions) -> PassContext {
        let trace_level = options.get_u64("trace", 0) as u8;
        PassContext {
            options,
            trace_level,
            ..PassContext::default()
        }
    }

    /// Emit a trace event at `level`. The closure is invoked only when
    /// `level <= trace_level`, so disabled tracing formats nothing — pass
    /// `|| TraceEvent::new(format!(...))`, optionally with `.field(...)`
    /// attachments, and the `format!` never runs when filtered out.
    pub fn trace(&mut self, level: u8, event: impl FnOnce() -> TraceEvent) {
        if level <= self.trace_level {
            let mut ev = event();
            ev.level = level;
            self.push_event(ev);
        }
    }

    /// Record an already-built event (level check already done).
    fn push_event(&mut self, mut ev: TraceEvent) {
        if ev.scope.is_empty() {
            ev.scope = self.pass.clone();
        }
        if self.echo_stderr {
            eprintln!("[mao] {}", ev.legacy_line());
        }
        self.events.push(ev);
    }

    /// The captured events rendered in the legacy one-line-per-event form
    /// (what the driver prints as `[mao] <line>`).
    pub fn rendered_trace(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|ev| ev.legacy_line().to_string())
            .collect()
    }
}

/// A MAO optimization pass.
///
/// The Rust analogue of the paper's `MaoFunctionPass` with its `Go()`
/// method. Unit-level passes implement [`MaoPass::run`] directly;
/// function-level passes use the [`for_each_function`] helper.
pub trait MaoPass {
    /// Registry name (`REDTEST`, `LOOP16`, ...).
    fn name(&self) -> &'static str;

    /// One-line description.
    fn description(&self) -> &'static str;

    /// The instruction sets this pass can run on. The pipeline refuses an
    /// invocation whose unit ISA is not listed ([`PassError::UnsupportedIsa`]).
    ///
    /// Defaults to x86-only — the founding instantiation — so a pass that
    /// pattern-matches x86 mnemonics or operand shapes is safe without any
    /// declaration. ISA-neutral passes (everything expressed purely in
    /// entries, labels, layout, and the neutral [`crate::isa::Insn`]
    /// surface) opt in to `&IsaId::ALL`.
    fn supported_isas(&self) -> &'static [IsaId] {
        &[IsaId::X86_64]
    }

    /// Run over the unit. Returns statistics; mutates the unit in place.
    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError>;
}

/// Run `body` for every function of the unit, applying each function's
/// edits before moving to the next (entry ids shift after edits, so later
/// functions see post-edit numbering).
///
/// Uses the unit's incremental index: only the current function is cloned
/// per step, and interior edits patch the index in place instead of forcing
/// an O(entries) rebuild — the driver is O(F · edit) instead of O(F²).
/// A `debug_assert` inside [`MaoUnit::apply`] cross-checks every patched
/// index against a full rebuild in test builds.
pub fn for_each_function(
    unit: &mut MaoUnit,
    mut body: impl FnMut(&MaoUnit, &Function) -> Result<EditSet, PassError>,
) -> Result<(), PassError> {
    let mut k = 0;
    loop {
        let Some(function) = unit.functions_cached().get(k).cloned() else {
            return Ok(());
        };
        let edits = body(unit, &function)?;
        if !edits.is_empty() {
            unit.apply(edits);
        }
        k += 1;
    }
}

/// The pre-index driver: recompute every function view after every step.
///
/// Kept as the O(F²) baseline the throughput benchmark compares the
/// incremental index against; passes should use [`for_each_function`] or
/// [`run_functions`].
pub fn for_each_function_full_rebuild(
    unit: &mut MaoUnit,
    mut body: impl FnMut(&MaoUnit, &Function) -> Result<EditSet, PassError>,
) -> Result<(), PassError> {
    let mut k = 0;
    loop {
        let functions = unit.functions_rebuilt();
        let Some(function) = functions.get(k) else {
            return Ok(());
        };
        let edits = body(unit, function)?;
        if !edits.is_empty() {
            unit.apply(edits);
        }
        k += 1;
    }
}

/// Per-function context handed to [`run_functions`] bodies.
///
/// Collects stats and trace output locally so function bodies can run on
/// worker threads; the driver folds everything back into the pass's
/// [`PassContext`] in function order, keeping output deterministic.
pub struct FnCtx<'a> {
    /// Options of the enclosing pass invocation.
    pub options: &'a PassOptions,
    /// Profile data, when the pipeline carries any.
    pub profile: Option<&'a Profile>,
    /// Shared analysis cache (CFG, loops, dataflow per function).
    pub analyses: &'a AnalysisCache,
    /// Stats for this function; summed across functions by the driver.
    pub stats: PassStats,
    trace_level: u8,
    trace: Vec<TraceEvent>,
}

impl FnCtx<'_> {
    /// Buffer a trace event at `level` (the closure runs only when
    /// `level <= trace_level`); replayed into the pass context in function
    /// order after the run, keeping output deterministic.
    pub fn trace(&mut self, level: u8, event: impl FnOnce() -> TraceEvent) {
        if level <= self.trace_level {
            let mut ev = event();
            ev.level = level;
            self.trace.push(ev);
        }
    }

    /// The function's CFG, from the shared cache.
    pub fn cfg(&self, unit: &MaoUnit, f: &Function) -> Arc<crate::cfg::Cfg> {
        self.analyses.for_function(unit, f).cfg(unit, f)
    }

    /// The function's loop nest, from the shared cache.
    pub fn loops(&self, unit: &MaoUnit, f: &Function) -> Arc<crate::loops::LoopNest> {
        self.analyses.for_function(unit, f).loops(unit, f)
    }

    /// The function's liveness tables, from the shared cache.
    pub fn liveness(&self, unit: &MaoUnit, f: &Function) -> Arc<crate::dataflow::Liveness> {
        self.analyses.for_function(unit, f).liveness(unit, f)
    }

    /// The function's reaching definitions, from the shared cache.
    pub fn reaching(&self, unit: &MaoUnit, f: &Function) -> Arc<crate::dataflow::ReachingDefs> {
        self.analyses.for_function(unit, f).reaching(unit, f)
    }
}

/// What one function's body run produced.
struct FnOutcome {
    edits: EditSet,
    stats: PassStats,
    trace: Vec<TraceEvent>,
}

/// Run `body` over every function against the *immutable* unit, then merge
/// the per-function edit sets in function order and apply them once.
///
/// With `ctx.jobs <= 1` the functions run sequentially on the calling
/// thread; otherwise they are distributed over `ctx.jobs` scoped worker
/// threads. Both paths perform the identical computation — every body
/// invocation sees the same pre-edit unit — so the resulting assembly is
/// byte-identical regardless of the job count. This requires `body` to be
/// function-local: it must only derive edits from the function it is given
/// (plus read-only context like jump tables). Passes with cross-function
/// ordering dependencies (a shared RNG stream, unit-global layout) must use
/// [`for_each_function`] instead.
///
/// On error, the first failing function in function order wins and no edits
/// are applied. Returns the summed stats; trace lines are replayed into
/// `ctx` in function order.
pub fn run_functions<F>(
    unit: &mut MaoUnit,
    ctx: &mut PassContext,
    body: F,
) -> Result<PassStats, PassError>
where
    F: Fn(&MaoUnit, &Function, &mut FnCtx) -> Result<EditSet, PassError> + Sync,
{
    let jobs = ctx.jobs.max(1);
    let functions: Vec<Function> = unit.functions_cached().to_vec();
    let n = functions.len();
    let options = &ctx.options;
    let profile = ctx.profile.as_ref();
    let analyses: &AnalysisCache = &ctx.analyses;
    let trace_level = ctx.trace_level;
    let recorder = ctx.obs.recorder.clone();
    let run_one = |unit: &MaoUnit, function: &Function| -> Result<FnOutcome, PassError> {
        let mut span = mao_obs::Span::enter(&recorder, "function", &function.name);
        let mut fctx = FnCtx {
            options,
            profile,
            analyses,
            stats: PassStats::default(),
            trace_level,
            trace: Vec::new(),
        };
        let edits = body(unit, function, &mut fctx)?;
        span.counter("transformations", fctx.stats.transformations as u64);
        Ok(FnOutcome {
            edits,
            stats: fctx.stats,
            trace: fctx.trace,
        })
    };

    let outcomes: Vec<Option<Result<FnOutcome, PassError>>> = if jobs <= 1 || n <= 1 {
        let shared: &MaoUnit = unit;
        functions.iter().map(|f| Some(run_one(shared, f))).collect()
    } else {
        let shared: &MaoUnit = unit;
        let slots: Vec<Mutex<Option<Result<FnOutcome, PassError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = run_one(shared, &functions[i]);
                    *slots[i].lock().unwrap() = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap())
            .collect()
    };

    // Fold in function order: deterministic stats, trace, and edits.
    let mut total = PassStats::default();
    let mut merged = EditSet::new();
    for outcome in outcomes {
        let outcome = outcome.expect("every function slot is filled")?;
        total.transformations += outcome.stats.transformations;
        total.matches += outcome.stats.matches;
        total.notes.extend(outcome.stats.notes);
        for ev in outcome.trace {
            ctx.push_event(ev);
        }
        merged.merge(outcome.edits);
    }
    ctx.obs
        .metrics
        .counter("mao_functions_processed_total")
        .add(n as u64);
    if !merged.is_empty() {
        unit.apply(merged);
    }
    Ok(total)
}

/// Factory for registry entries.
pub type PassFactory = fn() -> Box<dyn MaoPass>;

/// Runtime-registered extension passes, merged into [`registry`].
///
/// The built-in registry is static because every pass in `crates/core`
/// depends only on the core IR. Passes that live *above* this crate in the
/// dependency graph (the superoptimizer needs `mao-sim` as its oracle, and
/// `mao-sim` depends on `mao`) cannot appear in the static table without a
/// cycle; they call [`register_extension`] once at startup instead — the
/// paper's `REGISTER_FUNC_PASS` done at runtime rather than link time.
fn extensions() -> &'static Mutex<BTreeMap<&'static str, (PassFactory, &'static [IsaId])>> {
    type ExtMap = BTreeMap<&'static str, (PassFactory, &'static [IsaId])>;
    static EXTENSIONS: std::sync::OnceLock<Mutex<ExtMap>> = std::sync::OnceLock::new();
    EXTENSIONS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Register (or re-register, idempotently) an extension pass under `name`,
/// declaring the instruction sets it supports (`&[IsaId::X86_64]` for a
/// target-specific pass like SUPEROPT, `&IsaId::ALL` for a neutral one).
/// The declaration is authoritative: the pipeline refuses to run the pass
/// on any other ISA with [`PassError::UnsupportedIsa`].
///
/// Extension passes shadow built-ins of the same name; callers should pick
/// fresh names. Safe to call from multiple threads and multiple times —
/// last registration wins, and registration is process-wide.
pub fn register_extension(name: &'static str, isas: &'static [IsaId], factory: PassFactory) {
    extensions().lock().unwrap().insert(name, (factory, isas));
}

/// The ISA declaration a runtime extension was registered with, if `name`
/// names an extension pass.
fn extension_isas(name: &str) -> Option<&'static [IsaId]> {
    extensions()
        .lock()
        .unwrap()
        .get(name)
        .map(|(_, isas)| *isas)
}

/// The global pass registry: the static built-in table plus every
/// [`register_extension`] pass. Names follow the paper where it names
/// passes (`NOPIN`, `NOPKILL`, `REDTEST`, `REDMOV`, `LOOP16`, `SCHED`).
pub fn registry() -> BTreeMap<&'static str, PassFactory> {
    let mut m = crate::passes::registry();
    for (name, (factory, _)) in extensions().lock().unwrap().iter() {
        m.insert(name, *factory);
    }
    m
}

/// One pass invocation, parsed from the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassInvocation {
    /// Pass name.
    pub name: String,
    /// Options.
    pub options: PassOptions,
}

/// Parse a `--mao=` option string into an ordered invocation list.
///
/// Grammar: `PASS[=opt[value],opt2,opt3[value]] (':' PASS...)*` — exactly
/// the shape of the paper's example
/// `--mao=LFIND=trace[0]:ASM=o[/dev/null]`.
pub fn parse_invocations(s: &str) -> Result<Vec<PassInvocation>, PassError> {
    let mut out = Vec::new();
    for part in s.split(':') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, rest) = match part.split_once('=') {
            Some((n, r)) => (n.trim(), Some(r)),
            None => (part, None),
        };
        if name.is_empty() {
            return Err(PassError::BadOptions(format!(
                "empty pass name in `{part}`"
            )));
        }
        let mut options = PassOptions::new();
        if let Some(rest) = rest {
            for opt in rest.split(',') {
                let opt = opt.trim();
                if opt.is_empty() {
                    continue;
                }
                match opt.split_once('[') {
                    Some((key, val)) => {
                        let val = val.strip_suffix(']').ok_or_else(|| {
                            PassError::BadOptions(format!("unterminated `[` in `{opt}`"))
                        })?;
                        options.set(key, val);
                    }
                    None => options.set(opt, ""),
                }
            }
        }
        out.push(PassInvocation {
            name: name.to_string(),
            options,
        });
    }
    Ok(out)
}

/// Report from running a pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Per-invocation (pass name, stats).
    pub passes: Vec<(String, PassStats)>,
    /// Per-invocation wall-clock microseconds, parallel to `passes`.
    pub timings_us: Vec<(String, u64)>,
    /// Concatenated trace output in the legacy one-line rendering, parallel
    /// to `events` (derived from it through one code path).
    pub trace: Vec<String>,
    /// The structured trace events behind `trace`.
    pub events: Vec<TraceEvent>,
    /// Analysis cache hit/miss counters for the whole run.
    pub cache: CacheStats,
}

impl PipelineReport {
    /// Total transformations across all passes.
    pub fn total_transformations(&self) -> usize {
        self.passes.iter().map(|(_, s)| s.transformations).sum()
    }

    /// Stats for a pass by name (first invocation).
    pub fn stats(&self, name: &str) -> Option<&PassStats> {
        self.passes.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The single rendering path from structured events to the legacy
    /// `trace` lines: every event recorded lands in both views.
    fn record_event(&mut self, ev: TraceEvent) {
        self.trace.push(ev.legacy_line().to_string());
        self.events.push(ev);
    }
}

/// Pipeline-wide execution configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Worker threads for function-level passes. `0` = auto (the machine's
    /// available parallelism); `1` = sequential.
    pub jobs: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig { jobs: 1 }
    }
}

impl PipelineConfig {
    /// Resolve `jobs == 0` (auto) to the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// Run an ordered list of pass invocations over the unit with the default
/// configuration (sequential).
pub fn run_pipeline(
    unit: &mut MaoUnit,
    invocations: &[PassInvocation],
    profile: Option<Profile>,
) -> Result<PipelineReport, PassError> {
    run_pipeline_with(unit, invocations, profile, &PipelineConfig::default())
}

/// Run an ordered list of pass invocations over the unit.
///
/// One [`AnalysisCache`] is shared by every invocation (and every worker
/// thread): passes that modify nothing reuse the previous pass's CFGs and
/// dataflow tables wholesale.
pub fn run_pipeline_with(
    unit: &mut MaoUnit,
    invocations: &[PassInvocation],
    profile: Option<Profile>,
    config: &PipelineConfig,
) -> Result<PipelineReport, PassError> {
    let analyses = Arc::new(AnalysisCache::new());
    run_pipeline_shared(unit, invocations, profile, config, &analyses)
}

/// Run a pipeline against a caller-provided [`AnalysisCache`].
///
/// This is the long-lived-service entry point: a daemon processing many
/// units can hand every run the same cache, so functions whose content and
/// position repeat across requests (the common case in incremental builds,
/// where most of a unit is unchanged) skip CFG/dataflow construction
/// entirely. The cache's epoch tracking still applies — a unit whose
/// context epoch differs from the previous run's flushes stale entries —
/// and the reported [`PipelineReport::cache`] counters are cumulative over
/// the cache's lifetime, not per run.
pub fn run_pipeline_shared(
    unit: &mut MaoUnit,
    invocations: &[PassInvocation],
    profile: Option<Profile>,
    config: &PipelineConfig,
    analyses: &Arc<AnalysisCache>,
) -> Result<PipelineReport, PassError> {
    run_pipeline_observed(unit, invocations, profile, config, analyses, &Obs::off())
}

/// Run a pipeline with telemetry: one span per pass invocation (and, inside
/// [`run_functions`], one per function), pass-labeled counters, and a
/// wall-time histogram, all flowing into the given [`Obs`] sinks.
///
/// Every other pipeline entry point delegates here with [`Obs::off`], whose
/// recorder is a single-branch no-op and whose metrics land in a private
/// registry — the observed and unobserved paths are one code path.
pub fn run_pipeline_observed(
    unit: &mut MaoUnit,
    invocations: &[PassInvocation],
    profile: Option<Profile>,
    config: &PipelineConfig,
    analyses: &Arc<AnalysisCache>,
    obs: &Obs,
) -> Result<PipelineReport, PassError> {
    let registry = registry();
    let mut report = PipelineReport::default();
    let mut profile = profile;
    let jobs = config.effective_jobs();
    let pass_wall_us = obs
        .metrics
        .histogram("mao_pass_wall_us", mao_obs::US_BUCKETS);
    for inv in invocations {
        let factory = registry
            .get(inv.name.as_str())
            .ok_or_else(|| PassError::UnknownPass(inv.name.clone()))?;
        let pass = factory();
        // ISA gate: for runtime extensions the registration declaration is
        // authoritative; built-ins declare via `MaoPass::supported_isas`.
        let supported: &[IsaId] = match extension_isas(inv.name.as_str()) {
            Some(isas) => isas,
            None => pass.supported_isas(),
        };
        if !supported.contains(&unit.isa()) {
            return Err(PassError::UnsupportedIsa {
                pass: inv.name.clone(),
                isa: unit.isa(),
            });
        }
        let mut ctx = PassContext::from_options(inv.options.clone());
        ctx.pass = inv.name.clone();
        ctx.profile = profile.take();
        ctx.jobs = jobs;
        ctx.analyses = analyses.clone();
        ctx.obs = obs.clone();
        // Common options every pass supports (§III.A: "dumping the current
        // state of the IR before or after a given pass").
        if ctx.options.has("dump-before") {
            report.record_event(
                TraceEvent::new(format!("=== IR before {} ===\n{}", inv.name, unit.emit()))
                    .scope(&inv.name),
            );
        }
        let mut span = mao_obs::Span::enter(&obs.recorder, "pass", &inv.name);
        let start = std::time::Instant::now();
        let stats = pass.run(unit, &mut ctx)?;
        let elapsed_us = start.elapsed().as_micros() as u64;
        span.counter("transformations", stats.transformations as u64);
        span.counter("matches", stats.matches as u64);
        drop(span);
        let labels: &[(&str, &str)] = &[("pass", inv.name.as_str())];
        obs.metrics
            .counter_with("mao_pass_invocations_total", labels)
            .inc();
        obs.metrics
            .counter_with("mao_pass_transformations_total", labels)
            .add(stats.transformations as u64);
        obs.metrics
            .counter_with("mao_pass_matches_total", labels)
            .add(stats.matches as u64);
        pass_wall_us.observe(elapsed_us);
        if ctx.options.has("dump-after") {
            report.record_event(
                TraceEvent::new(format!("=== IR after {} ===\n{}", inv.name, unit.emit()))
                    .scope(&inv.name),
            );
        }
        profile = ctx.profile.take();
        for ev in ctx.events.drain(..) {
            report.record_event(ev);
        }
        report.passes.push((inv.name.clone(), stats));
        report.timings_us.push((inv.name.clone(), elapsed_us));
    }
    report.cache = analyses.stats();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_example() {
        let invs = parse_invocations("LFIND=trace[0]:ASM=o[/dev/null]").unwrap();
        assert_eq!(invs.len(), 2);
        assert_eq!(invs[0].name, "LFIND");
        assert_eq!(invs[0].options.get("trace"), Some("0"));
        assert_eq!(invs[1].name, "ASM");
        assert_eq!(invs[1].options.get("o"), Some("/dev/null"));
    }

    #[test]
    fn parse_multi_option() {
        let invs = parse_invocations("NOPIN=seed[42],density[0.1],flag").unwrap();
        let o = &invs[0].options;
        assert_eq!(o.get_u64("seed", 0), 42);
        assert!((o.get_f64("density", 0.0) - 0.1).abs() < 1e-9);
        assert!(o.has("flag"));
        assert!(!o.has("nope"));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_invocations("P=o[v"),
            Err(PassError::BadOptions(_))
        ));
        assert!(matches!(
            parse_invocations("=x"),
            Err(PassError::BadOptions(_))
        ));
        // Empty segments are tolerated.
        assert_eq!(parse_invocations("::").unwrap().len(), 0);
    }

    #[test]
    fn options_defaults() {
        let o = PassOptions::new().with("n", "7");
        assert_eq!(o.get_u64("n", 1), 7);
        assert_eq!(o.get_u64("missing", 13), 13);
        assert_eq!(o.get_f64("n", 0.0), 7.0);
    }

    #[test]
    fn context_trace_levels() {
        let mut ctx = PassContext::from_options(PassOptions::new().with("trace", "2"));
        ctx.pass = "TESTPASS".to_string();
        ctx.trace(1, || TraceEvent::new("kept").field("n", 7));
        ctx.trace(3, || TraceEvent::new("dropped"));
        assert_eq!(ctx.rendered_trace(), vec!["kept"]);
        assert_eq!(ctx.events.len(), 1);
        assert_eq!(ctx.events[0].level, 1);
        assert_eq!(ctx.events[0].scope, "TESTPASS");
        assert_eq!(ctx.events[0].fields, vec![("n".into(), "7".into())]);
    }

    #[test]
    fn disabled_trace_never_builds_the_event() {
        let mut ctx = PassContext::from_options(PassOptions::new());
        assert_eq!(ctx.trace_level, 0);
        let mut built = false;
        ctx.trace(1, || {
            built = true;
            TraceEvent::new("expensive")
        });
        assert!(!built, "closure must not run when the level is filtered");
        assert!(ctx.events.is_empty());
        // Level 0 still passes the filter.
        ctx.trace(0, || TraceEvent::new("level0"));
        assert_eq!(ctx.rendered_trace(), vec!["level0"]);
    }

    #[test]
    fn unknown_pass_errors() {
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let invs = parse_invocations("NOSUCHPASS").unwrap();
        let err = run_pipeline(&mut unit, &invs, None).unwrap_err();
        assert_eq!(err, PassError::UnknownPass("NOSUCHPASS".into()));
    }

    #[derive(Debug, Default)]
    struct ExtPass;

    impl MaoPass for ExtPass {
        fn name(&self) -> &'static str {
            "EXTTEST"
        }

        fn description(&self) -> &'static str {
            "extension-registry test pass"
        }

        fn run(&self, _unit: &mut MaoUnit, _ctx: &mut PassContext) -> Result<PassStats, PassError> {
            let mut stats = PassStats::default();
            stats.matched(1);
            Ok(stats)
        }
    }

    #[test]
    fn extension_passes_join_the_registry_and_run() {
        register_extension("EXTTEST", &[IsaId::X86_64], || Box::new(ExtPass));
        // Idempotent re-registration.
        register_extension("EXTTEST", &[IsaId::X86_64], || Box::new(ExtPass));
        let reg = registry();
        assert!(reg.contains_key("EXTTEST"));
        assert!(reg.contains_key("REDTEST"), "built-ins still present");
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let invs = parse_invocations("EXTTEST").unwrap();
        let report = run_pipeline(&mut unit, &invs, None).unwrap();
        assert_eq!(report.stats("EXTTEST").unwrap().matches, 1);
    }

    fn a64_unit() -> MaoUnit {
        MaoUnit::parse_isa(
            ".type f, @function\nf:\n\tnop\n\tret\n",
            crate::isa::IsaId::Aarch64,
        )
        .unwrap()
    }

    #[test]
    fn x86_only_pass_on_a64_unit_is_a_structured_error() {
        let mut unit = a64_unit();
        assert_eq!(unit.isa(), IsaId::Aarch64);
        for name in ["SCHED", "LOOP16", "REDTEST"] {
            let invs = parse_invocations(name).unwrap();
            let err = run_pipeline(&mut unit, &invs, None).unwrap_err();
            assert_eq!(
                err,
                PassError::UnsupportedIsa {
                    pass: name.into(),
                    isa: IsaId::Aarch64,
                }
            );
            assert!(err.to_string().contains("does not support ISA `aarch64`"));
        }
    }

    #[test]
    fn isa_neutral_passes_run_on_a64_units() {
        let mut unit = a64_unit();
        let invs = parse_invocations("MAOPASS:NOPKILL:DCE").unwrap();
        let report = run_pipeline(&mut unit, &invs, None).unwrap();
        // NOPKILL operates purely on the neutral entry surface: the A64 NOP
        // is gone, the rest of the unit is intact.
        assert_eq!(report.stats("NOPKILL").unwrap().transformations, 1);
        let text = unit.emit();
        assert!(!text.contains("nop"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }

    #[test]
    fn extension_isa_declaration_is_enforced() {
        register_extension("EXTX86ONLY", &[IsaId::X86_64], || Box::new(ExtPass));
        register_extension("EXTNEUTRAL", &IsaId::ALL, || Box::new(ExtPass));
        let mut unit = a64_unit();
        let err =
            run_pipeline(&mut unit, &parse_invocations("EXTX86ONLY").unwrap(), None).unwrap_err();
        assert_eq!(
            err,
            PassError::UnsupportedIsa {
                pass: "EXTX86ONLY".into(),
                isa: IsaId::Aarch64,
            }
        );
        // The registration declaration is authoritative, even though
        // `ExtPass` itself inherits the x86-only `supported_isas` default.
        let report =
            run_pipeline(&mut unit, &parse_invocations("EXTNEUTRAL").unwrap(), None).unwrap();
        assert_eq!(report.stats("EXTNEUTRAL").unwrap().matches, 1);
    }
}
