//! The pass manager: registration, options, ordering, tracing.
//!
//! Mirrors the paper's §III.A machinery in idiomatic Rust:
//!
//! * passes are named and looked up in a registry
//!   (`REGISTER_FUNC_PASS("MAOPASS", MaoPass)` → [`registry`]);
//! * invocation and ordering are controlled by a command-line option string
//!   (`--mao=LFIND=trace[0]:ASM=o[/dev/null]` → [`parse_invocations`]);
//! * every pass gets a tracing facility and pass-specific options
//!   (`MAO_OPTIONS_DEFINE` → [`PassOptions`]).

use std::collections::BTreeMap;
use std::fmt;

use crate::profile::Profile;
use crate::unit::{EditSet, Function, MaoUnit};

/// Error produced by a pass or by the pipeline driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// Named pass not found in the registry.
    UnknownPass(String),
    /// Malformed `--mao=` option string.
    BadOptions(String),
    /// Relaxation failed inside a pass.
    Relax(String),
    /// Any other pass-specific failure.
    Other(String),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::UnknownPass(p) => write!(f, "unknown pass `{p}`"),
            PassError::BadOptions(m) => write!(f, "bad --mao options: {m}"),
            PassError::Relax(m) => write!(f, "relaxation failed: {m}"),
            PassError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for PassError {}

impl From<crate::relax::RelaxError> for PassError {
    fn from(e: crate::relax::RelaxError) -> PassError {
        PassError::Relax(e.to_string())
    }
}

/// Pass-specific options, parsed from `NAME=opt[value],opt2[value2]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassOptions {
    map: BTreeMap<String, String>,
}

impl PassOptions {
    /// Empty options.
    pub fn new() -> PassOptions {
        PassOptions::default()
    }

    /// Set an option (builder style).
    pub fn with(mut self, key: &str, value: &str) -> PassOptions {
        self.map.insert(key.to_string(), value.to_string());
        self
    }

    /// Set an option.
    pub fn set(&mut self, key: &str, value: &str) {
        self.map.insert(key.to_string(), value.to_string());
    }

    /// Raw option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Option present at all (with or without a value)?
    pub fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Integer option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Float option with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

/// Statistics returned by one pass invocation (feeds the Fig. 7 table).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Number of code transformations performed.
    pub transformations: usize,
    /// Number of opportunities examined (pattern matches found, whether or
    /// not transformed) — lets analysis-only runs report counts.
    pub matches: usize,
    /// Free-form notes (one per interesting event).
    pub notes: Vec<String>,
}

impl PassStats {
    /// Record a transformation.
    pub fn transformed(&mut self, n: usize) {
        self.transformations += n;
    }

    /// Record an examined opportunity.
    pub fn matched(&mut self, n: usize) {
        self.matches += n;
    }
}

/// Context handed to every pass: options, tracing, optional profile data.
#[derive(Debug, Default)]
pub struct PassContext {
    /// Options for this invocation.
    pub options: PassOptions,
    /// Trace verbosity (0 = silent); the `trace[N]` option sets it.
    pub trace_level: u8,
    /// Captured trace lines (also printed to stderr at level > 0 when
    /// `trace_stderr` is set).
    pub trace_lines: Vec<String>,
    /// Echo trace lines to stderr.
    pub trace_stderr: bool,
    /// Hardware-counter / reuse-distance profile, when provided.
    pub profile: Option<Profile>,
}

impl PassContext {
    /// Build a context from options (reads `trace[N]`).
    pub fn from_options(options: PassOptions) -> PassContext {
        let trace_level = options.get_u64("trace", 0) as u8;
        PassContext {
            options,
            trace_level,
            ..PassContext::default()
        }
    }

    /// Emit a trace line at `level` (kept if `level <= trace_level`).
    pub fn trace(&mut self, level: u8, msg: impl fmt::Display) {
        if level <= self.trace_level {
            let line = msg.to_string();
            if self.trace_stderr {
                eprintln!("[mao] {line}");
            }
            self.trace_lines.push(line);
        }
    }
}

/// A MAO optimization pass.
///
/// The Rust analogue of the paper's `MaoFunctionPass` with its `Go()`
/// method. Unit-level passes implement [`MaoPass::run`] directly;
/// function-level passes use the [`for_each_function`] helper.
pub trait MaoPass {
    /// Registry name (`REDTEST`, `LOOP16`, ...).
    fn name(&self) -> &'static str;

    /// One-line description.
    fn description(&self) -> &'static str;

    /// Run over the unit. Returns statistics; mutates the unit in place.
    fn run(&self, unit: &mut MaoUnit, ctx: &mut PassContext) -> Result<PassStats, PassError>;
}

/// Run `body` for every function of the unit, applying each function's
/// edits before moving to the next (entry ids shift after edits, so
/// functions are recomputed each step).
pub fn for_each_function(
    unit: &mut MaoUnit,
    mut body: impl FnMut(&MaoUnit, &Function) -> Result<EditSet, PassError>,
) -> Result<(), PassError> {
    let mut k = 0;
    loop {
        let functions = unit.functions();
        let Some(function) = functions.get(k) else {
            return Ok(());
        };
        let edits = body(unit, function)?;
        if !edits.is_empty() {
            unit.apply(edits);
        }
        k += 1;
    }
}

/// Factory for registry entries.
pub type PassFactory = fn() -> Box<dyn MaoPass>;

/// The global pass registry. Names follow the paper where it names passes
/// (`NOPIN`, `NOPKILL`, `REDTEST`, `REDMOV`, `LOOP16`, `SCHED`).
pub fn registry() -> BTreeMap<&'static str, PassFactory> {
    crate::passes::registry()
}

/// One pass invocation, parsed from the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassInvocation {
    /// Pass name.
    pub name: String,
    /// Options.
    pub options: PassOptions,
}

/// Parse a `--mao=` option string into an ordered invocation list.
///
/// Grammar: `PASS[=opt[value],opt2,opt3[value]] (':' PASS...)*` — exactly
/// the shape of the paper's example
/// `--mao=LFIND=trace[0]:ASM=o[/dev/null]`.
pub fn parse_invocations(s: &str) -> Result<Vec<PassInvocation>, PassError> {
    let mut out = Vec::new();
    for part in s.split(':') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, rest) = match part.split_once('=') {
            Some((n, r)) => (n.trim(), Some(r)),
            None => (part, None),
        };
        if name.is_empty() {
            return Err(PassError::BadOptions(format!("empty pass name in `{part}`")));
        }
        let mut options = PassOptions::new();
        if let Some(rest) = rest {
            for opt in rest.split(',') {
                let opt = opt.trim();
                if opt.is_empty() {
                    continue;
                }
                match opt.split_once('[') {
                    Some((key, val)) => {
                        let val = val.strip_suffix(']').ok_or_else(|| {
                            PassError::BadOptions(format!("unterminated `[` in `{opt}`"))
                        })?;
                        options.set(key, val);
                    }
                    None => options.set(opt, ""),
                }
            }
        }
        out.push(PassInvocation {
            name: name.to_string(),
            options,
        });
    }
    Ok(out)
}

/// Report from running a pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Per-invocation (pass name, stats).
    pub passes: Vec<(String, PassStats)>,
    /// Concatenated trace output.
    pub trace: Vec<String>,
}

impl PipelineReport {
    /// Total transformations across all passes.
    pub fn total_transformations(&self) -> usize {
        self.passes.iter().map(|(_, s)| s.transformations).sum()
    }

    /// Stats for a pass by name (first invocation).
    pub fn stats(&self, name: &str) -> Option<&PassStats> {
        self.passes.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// Run an ordered list of pass invocations over the unit.
pub fn run_pipeline(
    unit: &mut MaoUnit,
    invocations: &[PassInvocation],
    profile: Option<Profile>,
) -> Result<PipelineReport, PassError> {
    let registry = registry();
    let mut report = PipelineReport::default();
    let mut profile = profile;
    for inv in invocations {
        let factory = registry
            .get(inv.name.as_str())
            .ok_or_else(|| PassError::UnknownPass(inv.name.clone()))?;
        let pass = factory();
        let mut ctx = PassContext::from_options(inv.options.clone());
        ctx.profile = profile.take();
        // Common options every pass supports (§III.A: "dumping the current
        // state of the IR before or after a given pass").
        if ctx.options.has("dump-before") {
            report
                .trace
                .push(format!("=== IR before {} ===\n{}", inv.name, unit.emit()));
        }
        let stats = pass.run(unit, &mut ctx)?;
        if ctx.options.has("dump-after") {
            report
                .trace
                .push(format!("=== IR after {} ===\n{}", inv.name, unit.emit()));
        }
        profile = ctx.profile.take();
        report.trace.append(&mut ctx.trace_lines);
        report.passes.push((inv.name.clone(), stats));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_example() {
        let invs = parse_invocations("LFIND=trace[0]:ASM=o[/dev/null]").unwrap();
        assert_eq!(invs.len(), 2);
        assert_eq!(invs[0].name, "LFIND");
        assert_eq!(invs[0].options.get("trace"), Some("0"));
        assert_eq!(invs[1].name, "ASM");
        assert_eq!(invs[1].options.get("o"), Some("/dev/null"));
    }

    #[test]
    fn parse_multi_option() {
        let invs = parse_invocations("NOPIN=seed[42],density[0.1],flag").unwrap();
        let o = &invs[0].options;
        assert_eq!(o.get_u64("seed", 0), 42);
        assert!((o.get_f64("density", 0.0) - 0.1).abs() < 1e-9);
        assert!(o.has("flag"));
        assert!(!o.has("nope"));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_invocations("P=o[v"),
            Err(PassError::BadOptions(_))
        ));
        assert!(matches!(
            parse_invocations("=x"),
            Err(PassError::BadOptions(_))
        ));
        // Empty segments are tolerated.
        assert_eq!(parse_invocations("::").unwrap().len(), 0);
    }

    #[test]
    fn options_defaults() {
        let o = PassOptions::new().with("n", "7");
        assert_eq!(o.get_u64("n", 1), 7);
        assert_eq!(o.get_u64("missing", 13), 13);
        assert_eq!(o.get_f64("n", 0.0), 7.0);
    }

    #[test]
    fn context_trace_levels() {
        let mut ctx = PassContext::from_options(PassOptions::new().with("trace", "2"));
        ctx.trace(1, "kept");
        ctx.trace(3, "dropped");
        assert_eq!(ctx.trace_lines, vec!["kept"]);
    }

    #[test]
    fn unknown_pass_errors() {
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let invs = parse_invocations("NOSUCHPASS").unwrap();
        let err = run_pipeline(&mut unit, &invs, None).unwrap_err();
        assert_eq!(err, PassError::UnknownPass("NOSUCHPASS".into()));
    }
}
