//! The MAO IR: one long entry list with section and function views.
//!
//! The paper: *"After parsing, all assembly directives and instructions form
//! one long list of MAO IR nodes. To reflect the structure of assembly
//! files, MAO offers a notion of sections and functions and provides easy
//! access to these higher level concepts via corresponding iterators."*
//!
//! A [`MaoUnit`] owns the flat `Vec<Entry>`; [`Section`] and [`Function`]
//! are computed views of index ranges. A function split across sections by
//! an intermittent data section (the jump-table pattern GCC emits for
//! `switch`) has multiple [`Function::spans`] and its iterator walks them
//! transparently, exactly as §II requires.
//!
//! The views live in a lazily built [`UnitIndex`] that [`MaoUnit::apply`]
//! patches in place when an [`EditSet`] only touches entries strictly inside
//! function bodies (the common case for peephole passes). Structural edits —
//! anything inserting or removing labels, section directives, or `.type`
//! markers, or touching entries outside function spans — drop the index for
//! a full rebuild on next access and bump [`MaoUnit::context_epoch`], the
//! signal analysis caches use to discard results that may have read
//! cross-function context (e.g. jump tables in `.rodata`).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::OnceLock;

use mao_asm::{Directive, Entry, ParseError};

use crate::isa::x86::Instruction;
use crate::isa::{Insn, IsaId};

/// Index of an entry in the unit's flat list.
pub type EntryId = usize;

/// A contiguous run of entries in one section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (`.text`, `.rodata`, ...).
    pub name: String,
    /// Entry ranges belonging to this section, in file order. A section can
    /// appear several times in a file; each appearance is one range.
    pub ranges: Vec<Range<EntryId>>,
}

impl Section {
    /// Is this an executable (text-like) section?
    pub fn is_text(&self) -> bool {
        is_text_section(&self.name)
    }

    /// All entry ids in this section, in order.
    #[inline]
    pub fn entry_ids(&self) -> impl Iterator<Item = EntryId> + '_ {
        self.ranges.iter().flat_map(|r| r.clone())
    }
}

fn is_text_section(name: &str) -> bool {
    name == ".text" || name.starts_with(".text.")
}

/// A function view over the unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function (symbol) name.
    pub name: String,
    /// Entry id of the function's defining label.
    pub label_id: EntryId,
    /// Entry ranges forming the function body, in order. More than one when
    /// a data section interrupts the function's text.
    pub spans: Vec<Range<EntryId>>,
}

impl Function {
    /// All entry ids of the function body, in order, spanning section splits
    /// transparently.
    #[inline]
    pub fn entry_ids(&self) -> impl Iterator<Item = EntryId> + '_ {
        self.spans.iter().flat_map(|r| r.clone())
    }

    /// Does the function contain this entry id?
    ///
    /// Spans are sorted and disjoint, so this is a binary search over span
    /// boundaries rather than a linear scan.
    #[inline]
    pub fn contains(&self, id: EntryId) -> bool {
        self.spans
            .binary_search_by(|r| {
                if r.end <= id {
                    std::cmp::Ordering::Less
                } else if r.start > id {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }
}

/// The section, function, and label views of a unit, built in one pass over
/// the entries and kept current across [`MaoUnit::apply`] when possible.
#[derive(Debug, Clone, Default, PartialEq)]
struct UnitIndex {
    sections: Vec<Section>,
    functions: Vec<Function>,
    labels: HashMap<&'static str, EntryId>,
}

/// Section name in effect for each entry (`.text` before any section
/// directive, matching gas's default).
fn section_names(entries: &[Entry]) -> Vec<&str> {
    let mut out = Vec::with_capacity(entries.len());
    let mut current = ".text";
    for e in entries {
        if let Entry::Directive(d) = e {
            if let Some(name) = d.section_name() {
                current = name;
            }
            // Directives like .previous/.popsection are not modeled; the
            // corpus this reproduction handles does not use them.
        }
        out.push(current);
    }
    out
}

/// Build the full index from scratch: one pass for section names, then the
/// section ranges, label map, and function spans.
fn build_index(entries: &[Entry]) -> UnitIndex {
    let names = section_names(entries);

    // Sections: group maximal runs of equal section name.
    let mut sections: Vec<Section> = Vec::new();
    let mut slot_of: HashMap<&str, usize> = HashMap::new();
    let mut i = 0;
    while i < names.len() {
        let name = names[i];
        let mut j = i;
        while j < names.len() && names[j] == name {
            j += 1;
        }
        let slot = *slot_of.entry(name).or_insert_with(|| {
            sections.push(Section {
                name: name.to_string(),
                ranges: Vec::new(),
            });
            sections.len() - 1
        });
        sections[slot].ranges.push(i..j);
        i = j;
    }

    // Labels: first definition wins.
    let mut labels: HashMap<&'static str, EntryId> = HashMap::new();
    for (id, e) in entries.iter().enumerate() {
        if let Entry::Label(l) = e {
            labels.entry(l.as_str()).or_insert(id);
        }
    }

    // Functions: a function starts at its defining label (in a text section,
    // with a matching `.type sym, @function`) and extends to the next
    // function start or the end of the unit. Non-text ranges inside that
    // extent are excluded from the spans, so iteration skips interleaved
    // data sections — the transparency property of §II.
    let symbols: Vec<&str> = entries
        .iter()
        .filter_map(|e| match e {
            Entry::Directive(Directive::Type { symbol, kind }) if kind == "function" => {
                Some(symbol.as_str())
            }
            _ => None,
        })
        .collect();
    let mut starts: Vec<(EntryId, &str)> = Vec::new();
    for (id, e) in entries.iter().enumerate() {
        if let Entry::Label(l) = e {
            if is_text_section(names[id]) && symbols.contains(&l.as_str()) {
                starts.push((id, l));
            }
        }
    }
    let mut functions = Vec::with_capacity(starts.len());
    for (k, &(start, name)) in starts.iter().enumerate() {
        let end = starts.get(k + 1).map_or(entries.len(), |&(s, _)| s);
        let mut spans: Vec<Range<EntryId>> = Vec::new();
        let mut i = start;
        while i < end {
            if is_text_section(names[i]) {
                let mut j = i;
                while j < end && is_text_section(names[j]) {
                    j += 1;
                }
                spans.push(i..j);
                i = j;
            } else {
                i += 1;
            }
        }
        functions.push(Function {
            name: name.to_string(),
            label_id: start,
            spans,
        });
    }

    UnitIndex {
        sections,
        functions,
        labels,
    }
}

/// Is this entry one the index structure depends on? Labels define the label
/// map and function starts; section directives define section ranges and
/// which entries count as text; `.type` directives define which labels are
/// functions. Touching any of these means the index must be rebuilt.
fn is_structural(e: &Entry) -> bool {
    match e {
        Entry::Label(_) => true,
        Entry::Insn(_) => false,
        Entry::Directive(d) => d.section_name().is_some() || matches!(d, Directive::Type { .. }),
    }
}

/// The MAO IR unit: the parsed assembly file.
#[derive(Debug, Clone, Default)]
pub struct MaoUnit {
    entries: Vec<Entry>,
    /// The instruction set the unit's instructions belong to. Inferred from
    /// the first instruction entry (directive-only units default to x86-64,
    /// matching the pre-ISA-boundary behavior). Mixed-ISA units are not
    /// modeled: the front end parses a whole file under one dialect.
    isa: IsaId,
    /// Lazily built section/function/label views; dropped (and rebuilt on
    /// next access) whenever an edit cannot be patched in place.
    index: OnceLock<UnitIndex>,
    /// Bumped whenever an edit may have changed cross-function context
    /// (anything outside function bodies, e.g. jump tables in `.rodata`).
    /// Analysis caches compare epochs to decide whether per-function results
    /// derived from such context are still valid.
    context_epoch: u64,
}

impl PartialEq for MaoUnit {
    fn eq(&self, other: &MaoUnit) -> bool {
        // The index and epoch are derived/bookkeeping state; two units are
        // equal iff their entries are.
        self.entries == other.entries
    }
}

impl MaoUnit {
    /// Build a unit from already-parsed entries. The unit's ISA is inferred
    /// from the first instruction entry.
    pub fn from_entries(entries: Vec<Entry>) -> MaoUnit {
        let isa = mao_asm::snapshot::unit_isa(&entries);
        MaoUnit {
            entries,
            isa,
            ..MaoUnit::default()
        }
    }

    /// Parse assembly text into a unit (the default first pass of the
    /// pipeline). Instructions are parsed in the x86-64 dialect; use
    /// [`MaoUnit::parse_isa`] for other targets.
    pub fn parse(text: &str) -> Result<MaoUnit, ParseError> {
        Ok(MaoUnit::from_entries(mao_asm::parse(text)?))
    }

    /// Parse assembly text under the given ISA's dialect.
    pub fn parse_isa(text: &str, isa: IsaId) -> Result<MaoUnit, ParseError> {
        let mut unit = MaoUnit::from_entries(mao_asm::parse_isa(text, isa)?);
        // Directive-only units still belong to the requested target; the
        // entry scan cannot see that.
        unit.isa = isa;
        Ok(unit)
    }

    /// Like [`MaoUnit::parse`], splitting large inputs across up to `jobs`
    /// threads (0 = one per available core). Output is byte-identical to
    /// the sequential parse; small inputs stay sequential.
    pub fn parse_with_jobs(text: &str, jobs: usize) -> Result<MaoUnit, ParseError> {
        Ok(MaoUnit::from_entries(mao_asm::parse_with_jobs(text, jobs)?))
    }

    /// Like [`MaoUnit::parse_with_jobs`] under the given ISA's dialect.
    pub fn parse_with_jobs_isa(text: &str, jobs: usize, isa: IsaId) -> Result<MaoUnit, ParseError> {
        let mut unit = MaoUnit::from_entries(mao_asm::parse_with_jobs_isa(text, jobs, isa)?);
        unit.isa = isa;
        Ok(unit)
    }

    /// Like [`MaoUnit::from_entries`] with the unit's ISA pinned rather
    /// than inferred — for snapshot loads whose request declared a target
    /// (a directive-only entry list carries no ISA evidence of its own).
    pub fn from_entries_isa(entries: Vec<Entry>, isa: IsaId) -> MaoUnit {
        let mut unit = MaoUnit::from_entries(entries);
        unit.isa = isa;
        unit
    }

    /// The instruction set this unit's instructions belong to.
    #[inline]
    pub fn isa(&self) -> IsaId {
        self.isa
    }

    /// Emit the unit as textual assembly (the `ASM` pass).
    pub fn emit(&self) -> String {
        mao_asm::emit(&self.entries)
    }

    /// The flat entry list.
    #[inline]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the unit empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by id.
    #[inline]
    pub fn entry(&self, id: EntryId) -> &Entry {
        &self.entries[id]
    }

    /// Mutable entry access (for in-place rewriting). The caller may change
    /// anything — including turning the entry into a label or section
    /// directive — so this conservatively drops the cached index and bumps
    /// the context epoch.
    pub fn entry_mut(&mut self, id: EntryId) -> &mut Entry {
        self.invalidate_index();
        &mut self.entries[id]
    }

    /// The x86 instruction at `id`, if that entry is one. Instructions from
    /// other ISAs return `None`; x86-only passes see through this accessor
    /// and naturally skip foreign instructions.
    #[inline]
    pub fn insn(&self, id: EntryId) -> Option<&Instruction> {
        self.entries[id].insn()
    }

    /// The instruction at `id` regardless of ISA, if that entry is one.
    #[inline]
    pub fn insn_any(&self, id: EntryId) -> Option<&Insn> {
        self.entries[id].insn_any()
    }

    /// Epoch of cross-function context. Bumped by [`MaoUnit::apply`] when an
    /// edit may have changed entries outside function bodies; per-function
    /// analysis results that read such context (CFG jump-table resolution)
    /// are only valid while the epoch is unchanged.
    #[inline]
    pub fn context_epoch(&self) -> u64 {
        self.context_epoch
    }

    fn index(&self) -> &UnitIndex {
        self.index.get_or_init(|| build_index(&self.entries))
    }

    fn invalidate_index(&mut self) {
        self.index = OnceLock::new();
        self.context_epoch = self.context_epoch.wrapping_add(1);
    }

    /// Section name in effect for each entry (`.text` before any section
    /// directive, matching gas's default).
    pub fn section_names(&self) -> Vec<&str> {
        section_names(&self.entries)
    }

    /// The section views (cached; cloned for callers that mutate the unit
    /// while holding them).
    pub fn sections(&self) -> Vec<Section> {
        self.index().sections.clone()
    }

    /// The section views, borrowed from the cached index.
    #[inline]
    pub fn sections_cached(&self) -> &[Section] {
        &self.index().sections
    }

    /// Map from label name to its entry id (first definition wins).
    pub fn labels(&self) -> HashMap<&str, EntryId> {
        self.index()
            .labels
            .iter()
            .map(|(&name, &id)| (name, id))
            .collect()
    }

    /// Find a label's entry id.
    ///
    /// This is the unit's one label resolver: on duplicate definitions the
    /// *first* occurrence wins, and every consumer (relaxation, displacement
    /// computation, the alignment passes) must resolve through here so they
    /// agree on which definition a branch targets.
    pub fn find_label(&self, name: &str) -> Option<EntryId> {
        self.index().labels.get(name).copied()
    }

    /// Resolve the branch at `id` to its target entry: `Some` only when the
    /// entry is an instruction with a label operand that is defined in this
    /// unit. O(1) via the cached label index.
    pub fn branch_target(&self, id: EntryId) -> Option<EntryId> {
        self.insn_any(id)
            .and_then(|i| i.target_label())
            .and_then(|l| self.find_label(l))
    }

    /// The function views (cached; cloned for callers that mutate the unit
    /// while holding them).
    pub fn functions(&self) -> Vec<Function> {
        self.index().functions.clone()
    }

    /// The function views, borrowed from the cached index. Prefer this over
    /// [`MaoUnit::functions`] when the unit is not mutated while iterating.
    #[inline]
    pub fn functions_cached(&self) -> &[Function] {
        &self.index().functions
    }

    /// Compute the function views from scratch, bypassing the cached index.
    /// This is the pre-index baseline; it exists so benchmarks can compare
    /// against incremental maintenance. Prefer [`MaoUnit::functions`].
    pub fn functions_rebuilt(&self) -> Vec<Function> {
        build_index(&self.entries).functions
    }

    /// Find a function view by name.
    pub fn find_function(&self, name: &str) -> Option<Function> {
        self.index()
            .functions
            .iter()
            .find(|f| f.name == name)
            .cloned()
    }

    /// Try to patch the cached index across `edits` without a rebuild.
    ///
    /// Patchable edits touch only entries strictly inside function spans and
    /// neither insert, delete, nor replace structural entries (labels,
    /// section directives, `.type`). Such edits can only shift index
    /// boundaries: every boundary `b` moves to `b + shift(b)` where
    /// `shift(b)` sums the net entry-count change of all edits at ids `< b`.
    ///
    /// Returns `None` when the edits are not patchable and the index must be
    /// rebuilt.
    fn try_patch_index(index: &UnitIndex, entries: &[Entry], edits: &EditSet) -> Option<UnitIndex> {
        // Appending at the end extends the last section/function: rebuild.
        if edits.insert_before.contains_key(&usize::MAX) {
            return None;
        }

        // Net length change contributed by the edit at each touched id,
        // mirroring the exact semantics of `apply`.
        let mut touched: Vec<(EntryId, isize)> = Vec::with_capacity(edits.len());
        {
            let mut ids: Vec<EntryId> = edits
                .deleted
                .iter()
                .copied()
                .chain(edits.replaced.keys().copied())
                .chain(edits.insert_before.keys().copied())
                .chain(edits.insert_after.keys().copied())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            for id in ids {
                if id >= entries.len() {
                    // Out-of-range ids are silently ignored by `apply`;
                    // don't try to reason about them incrementally.
                    return None;
                }
                let mut net = 0isize;
                if let Some(before) = edits.insert_before.get(&id) {
                    net += before.len() as isize;
                }
                if edits.deleted.contains(&id) {
                    net -= 1;
                } else if let Some(repl) = edits.replaced.get(&id) {
                    net += repl.len() as isize - 1;
                }
                if let Some(after) = edits.insert_after.get(&id) {
                    net += after.len() as isize;
                }
                touched.push((id, net));
            }
        }

        // No structural entries inserted or produced by replacement.
        let inserted_ok = edits
            .insert_before
            .values()
            .chain(edits.insert_after.values())
            .chain(edits.replaced.values())
            .flatten()
            .all(|e| !is_structural(e));
        if !inserted_ok {
            return None;
        }
        // No structural entries deleted or replaced away.
        let targets_ok = edits
            .deleted
            .iter()
            .chain(edits.replaced.keys())
            .all(|&id| !is_structural(&entries[id]));
        if !targets_ok {
            return None;
        }

        // Every touched id must sit strictly inside a function span:
        // `span.start < id < span.end` (span starts are the function label
        // or a `.text` re-entry directive — both structural, and inserting
        // before them would land entries outside the span).
        // `insert_after` may additionally target `span.start` itself, since
        // entries after it are unambiguously inside the span.
        for &(id, _) in &touched {
            let inside = index.functions.iter().any(|f| {
                f.spans.iter().any(|s| {
                    let after_only = !edits.deleted.contains(&id)
                        && !edits.replaced.contains_key(&id)
                        && !edits.insert_before.contains_key(&id);
                    s.start < id && id < s.end || (after_only && id == s.start && id < s.end)
                })
            });
            if !inside {
                return None;
            }
        }

        // Prefix sums: shift(b) = Σ net(id) over touched ids < b.
        let mut prefix: Vec<isize> = Vec::with_capacity(touched.len() + 1);
        prefix.push(0);
        for &(_, net) in &touched {
            prefix.push(prefix.last().unwrap() + net);
        }
        let shift = |b: EntryId| -> EntryId {
            let k = touched.partition_point(|&(id, _)| id < b);
            (b as isize + prefix[k]) as EntryId
        };
        let shift_range = |r: &Range<EntryId>| shift(r.start)..shift(r.end);
        // An entry AT position `p` (a label) also moves past entries
        // inserted immediately before it; range boundaries do not (inserts
        // before a range start are rejected above).
        let shift_entity =
            |p: EntryId| -> EntryId { shift(p) + edits.insert_before.get(&p).map_or(0, Vec::len) };

        Some(UnitIndex {
            sections: index
                .sections
                .iter()
                .map(|s| Section {
                    name: s.name.clone(),
                    ranges: s.ranges.iter().map(shift_range).collect(),
                })
                .collect(),
            functions: index
                .functions
                .iter()
                .map(|f| Function {
                    name: f.name.clone(),
                    label_id: shift_entity(f.label_id),
                    spans: f.spans.iter().map(shift_range).collect(),
                })
                .collect(),
            labels: index
                .labels
                .iter()
                .map(|(&name, &id)| (name, shift_entity(id)))
                .collect(),
        })
    }

    /// Apply a batch of edits. Returns the number of entries after editing.
    ///
    /// If the cached index is live and the edits only touch entries strictly
    /// inside function bodies (no structural entries involved), the index is
    /// patched in place; otherwise it is dropped for a rebuild on next
    /// access and the context epoch is bumped.
    pub fn apply(&mut self, edits: EditSet) -> usize {
        if edits.is_empty() {
            return self.entries.len();
        }
        let patched = self
            .index
            .get()
            .and_then(|idx| MaoUnit::try_patch_index(idx, &self.entries, &edits));

        let mut out = Vec::with_capacity(self.entries.len() + 8);
        for (id, entry) in self.entries.drain(..).enumerate() {
            if let Some(before) = edits.insert_before.get(&id) {
                out.extend(before.iter().cloned());
            }
            if !edits.deleted.contains(&id) {
                match edits.replaced.get(&id) {
                    Some(new_entries) => out.extend(new_entries.iter().cloned()),
                    None => out.push(entry),
                }
            }
            if let Some(after) = edits.insert_after.get(&id) {
                out.extend(after.iter().cloned());
            }
        }
        if let Some(at_end) = edits.insert_before.get(&usize::MAX) {
            out.extend(at_end.iter().cloned());
        }
        self.entries = out;

        match patched {
            Some(idx) => {
                debug_assert_eq!(
                    idx,
                    build_index(&self.entries),
                    "incrementally patched index diverged from a full rebuild"
                );
                self.index = OnceLock::from(idx);
            }
            None => self.invalidate_index(),
        }
        self.entries.len()
    }
}

/// A batch of deferred edits against a [`MaoUnit`].
///
/// Passes collect edits while iterating (ids stay stable), then call
/// [`MaoUnit::apply`] once; all ids refer to the pre-edit numbering.
#[derive(Debug, Clone, Default)]
pub struct EditSet {
    deleted: std::collections::BTreeSet<EntryId>,
    replaced: HashMap<EntryId, Vec<Entry>>,
    insert_before: HashMap<EntryId, Vec<Entry>>,
    insert_after: HashMap<EntryId, Vec<Entry>>,
}

impl EditSet {
    /// Empty edit set.
    pub fn new() -> EditSet {
        EditSet::default()
    }

    /// Any edits recorded?
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty()
            && self.replaced.is_empty()
            && self.insert_before.is_empty()
            && self.insert_after.is_empty()
    }

    /// Number of edit operations recorded.
    pub fn len(&self) -> usize {
        self.deleted.len()
            + self.replaced.len()
            + self.insert_before.len()
            + self.insert_after.len()
    }

    /// Delete entry `id`.
    pub fn delete(&mut self, id: EntryId) -> &mut Self {
        self.deleted.insert(id);
        self
    }

    /// Replace entry `id` with `entries` (empty = delete).
    pub fn replace(&mut self, id: EntryId, entries: Vec<Entry>) -> &mut Self {
        self.replaced.insert(id, entries);
        self
    }

    /// Replace entry `id` with a single instruction (any ISA, via `Into`).
    pub fn replace_insn(&mut self, id: EntryId, insn: impl Into<Insn>) -> &mut Self {
        self.replace(id, vec![Entry::Insn(insn.into())])
    }

    /// Insert `entries` immediately before entry `id`. Use `usize::MAX` to
    /// append at the end of the unit.
    pub fn insert_before(&mut self, id: EntryId, entries: Vec<Entry>) -> &mut Self {
        self.insert_before.entry(id).or_default().extend(entries);
        self
    }

    /// Insert `entries` immediately after entry `id`.
    pub fn insert_after(&mut self, id: EntryId, entries: Vec<Entry>) -> &mut Self {
        self.insert_after.entry(id).or_default().extend(entries);
        self
    }

    /// All entry ids this edit set touches, in ascending order.
    pub fn touched_ids(&self) -> Vec<EntryId> {
        let mut ids: Vec<EntryId> = self
            .deleted
            .iter()
            .copied()
            .chain(self.replaced.keys().copied())
            .chain(self.insert_before.keys().copied())
            .chain(self.insert_after.keys().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Is entry `id` deleted by this edit set?
    pub(crate) fn is_deleted(&self, id: EntryId) -> bool {
        self.deleted.contains(&id)
    }

    /// Replacement entries for `id`, if any.
    pub(crate) fn replacement(&self, id: EntryId) -> Option<&[Entry]> {
        self.replaced.get(&id).map(Vec::as_slice)
    }

    /// Entries inserted immediately before `id`, if any.
    pub(crate) fn inserted_before(&self, id: EntryId) -> Option<&[Entry]> {
        self.insert_before.get(&id).map(Vec::as_slice)
    }

    /// Entries inserted immediately after `id`, if any.
    pub(crate) fn inserted_after(&self, id: EntryId) -> Option<&[Entry]> {
        self.insert_after.get(&id).map(Vec::as_slice)
    }

    /// Fold `other` into `self`. Replacements from `other` win on id
    /// collision; inserts at the same id are appended after `self`'s, so
    /// merging edit sets produced against disjoint id ranges (one per
    /// function) is order-exact with applying them separately.
    pub fn merge(&mut self, other: EditSet) {
        self.deleted.extend(other.deleted);
        for (id, entries) in other.replaced {
            self.replaced.insert(id, entries);
        }
        for (id, entries) in other.insert_before {
            self.insert_before.entry(id).or_default().extend(entries);
        }
        for (id, entries) in other.insert_after {
            self.insert_after.entry(id).or_default().extend(entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_FUNCS: &str = r#"
	.text
	.globl	f
	.type	f, @function
f:
	push %rbp
	pop %rbp
	ret
	.size	f, .-f
	.globl	g
	.type	g, @function
g:
	nop
	ret
	.size	g, .-g
"#;

    #[test]
    fn functions_are_found() {
        let unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let funcs = unit.functions();
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].name, "f");
        assert_eq!(funcs[1].name, "g");
        // f's body: label + 3 insns + .size + .globl/.type of g.
        let f_insns: Vec<_> = funcs[0]
            .entry_ids()
            .filter_map(|id| unit.insn(id))
            .collect();
        assert_eq!(f_insns.len(), 3);
        let g_insns: Vec<_> = funcs[1]
            .entry_ids()
            .filter_map(|id| unit.insn(id))
            .collect();
        assert_eq!(g_insns.len(), 2);
    }

    /// The §II scenario: a function split in two by an intermittent data
    /// section must iterate transparently.
    #[test]
    fn function_split_by_data_section() {
        let text = r#"
	.text
	.type	h, @function
h:
	nop
	jmp *.Ltab(,%rax,8)
	.section	.rodata
.Ltab:
	.quad	.L1
	.quad	.L2
	.text
.L1:
	nop
.L2:
	ret
	.size	h, .-h
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let funcs = unit.functions();
        assert_eq!(funcs.len(), 1);
        let h = &funcs[0];
        assert_eq!(h.spans.len(), 2, "split into two spans: {:?}", h.spans);
        let insns: Vec<_> = h.entry_ids().filter_map(|id| unit.insn(id)).collect();
        // nop, jmp, nop, ret — the .quad data is NOT iterated.
        assert_eq!(insns.len(), 4);
        assert!(insns
            .iter()
            .all(|i| !matches!(i.mnemonic, crate::isa::x86::Mnemonic::Movss)));
    }

    #[test]
    fn sections_views() {
        let unit = MaoUnit::parse(".text\nnop\n.section .rodata\n.long 1\n.text\nret\n").unwrap();
        let sections = unit.sections();
        assert_eq!(sections.len(), 2);
        let text = &sections[0];
        assert!(text.is_text());
        assert_eq!(text.ranges.len(), 2); // .text appears twice
        assert_eq!(text.entry_ids().count(), 4);
    }

    #[test]
    fn default_section_is_text() {
        let unit = MaoUnit::parse("nop\n").unwrap();
        assert_eq!(unit.section_names(), vec![".text"]);
    }

    #[test]
    fn labels_map() {
        let unit = MaoUnit::parse("a:\nnop\nb:\nret\n").unwrap();
        assert_eq!(unit.find_label("b"), Some(2));
        assert_eq!(unit.labels().len(), 2);
        assert_eq!(unit.find_label("zz"), None);
    }

    #[test]
    fn edits_apply_in_order() {
        let mut unit = MaoUnit::parse("nop\nnop\nnop\n").unwrap();
        let mut edits = EditSet::new();
        edits.delete(1);
        edits.insert_before(0, vec![Entry::Label("start".into())]);
        edits.insert_after(2, vec![Entry::Insn(Instruction::nop().into())]);
        unit.apply(edits);
        let text = unit.emit();
        assert_eq!(text, "start:\n\tnop\n\tnop\n\tnop\n");
    }

    #[test]
    fn replace_edit() {
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let mut edits = EditSet::new();
        edits.replace_insn(0, Instruction::nop_of_len(2));
        unit.apply(edits);
        assert_eq!(unit.emit(), "\tnopw\n");
    }

    #[test]
    fn empty_editset_is_noop() {
        let mut unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let before = unit.clone();
        let edits = EditSet::new();
        assert!(edits.is_empty());
        unit.apply(edits);
        assert_eq!(unit, before);
    }

    #[test]
    fn contains_binary_search_matches_linear() {
        let f = Function {
            name: "f".into(),
            label_id: 3,
            spans: vec![3..7, 12..15, 20..21],
        };
        for id in 0..25 {
            let linear = f.spans.iter().any(|r| r.contains(&id));
            assert_eq!(f.contains(id), linear, "id {id}");
        }
    }

    /// An interior edit (delete one insn inside `f`) must keep the cached
    /// index live and correctly shifted — `g`'s boundaries move left by one.
    #[test]
    fn interior_edit_patches_index() {
        let mut unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let funcs = unit.functions(); // builds the index
        let epoch = unit.context_epoch();
        let g_before = funcs[1].clone();
        let f_insn = funcs[0]
            .entry_ids()
            .find(|&id| unit.insn(id).is_some())
            .unwrap();

        let mut edits = EditSet::new();
        edits.delete(f_insn);
        unit.apply(edits);

        assert_eq!(
            unit.context_epoch(),
            epoch,
            "interior edit must not bump the context epoch"
        );
        let g_after = unit.find_function("g").unwrap();
        assert_eq!(g_after.label_id, g_before.label_id - 1);
        // The patched index must agree with a from-scratch unit.
        let rebuilt = MaoUnit::parse(&unit.emit()).unwrap();
        assert_eq!(unit.functions(), rebuilt.functions());
        assert_eq!(unit.sections(), rebuilt.sections());
    }

    /// Deleting a label is structural: the index must be rebuilt and the
    /// context epoch bumped.
    #[test]
    fn structural_edit_bumps_epoch() {
        let mut unit = MaoUnit::parse("a:\nnop\nb:\nret\n").unwrap();
        let _ = unit.functions();
        let epoch = unit.context_epoch();
        let mut edits = EditSet::new();
        edits.delete(2); // the label `b`
        unit.apply(edits);
        assert!(unit.context_epoch() > epoch);
        assert_eq!(unit.find_label("b"), None);
        assert_eq!(unit.find_label("a"), Some(0));
    }

    /// Inserting after the function label (first probe of an instrumented
    /// function) is patchable; inserting before it is not.
    #[test]
    fn insert_at_span_start_boundary() {
        let mut unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let g = unit.find_function("g").unwrap();
        let epoch = unit.context_epoch();
        let mut edits = EditSet::new();
        edits.insert_after(g.label_id, vec![Entry::Insn(Instruction::nop().into())]);
        unit.apply(edits);
        assert_eq!(
            unit.context_epoch(),
            epoch,
            "insert_after label is patchable"
        );
        let g2 = unit.find_function("g").unwrap();
        assert_eq!(
            g2.entry_ids().filter_map(|id| unit.insn(id)).count(),
            3,
            "inserted nop lands inside g"
        );

        let mut edits = EditSet::new();
        edits.insert_before(g2.label_id, vec![Entry::Insn(Instruction::nop().into())]);
        unit.apply(edits);
        assert!(
            unit.context_epoch() > epoch,
            "insert_before a function label falls back to a rebuild"
        );
    }

    /// Merged edit sets from disjoint functions apply exactly like the
    /// individual sets applied in function order.
    #[test]
    fn editset_merge_matches_sequential_apply() {
        let mut seq = MaoUnit::parse(TWO_FUNCS).unwrap();
        let mut merged = seq.clone();
        let funcs = seq.functions();

        let mut per_fn: Vec<EditSet> = Vec::new();
        for f in &funcs {
            let first_insn = f.entry_ids().find(|&id| seq.insn(id).is_some()).unwrap();
            let mut e = EditSet::new();
            e.replace_insn(first_insn, Instruction::nop_of_len(2));
            e.insert_after(first_insn, vec![Entry::Insn(Instruction::nop().into())]);
            per_fn.push(e);
        }

        // Sequential: apply per function, ids are disjoint so pre-edit ids
        // stay valid only for the FIRST apply — recompute per function the
        // way the sequential driver does.
        for e in per_fn.clone() {
            // ids refer to pre-edit numbering of the ORIGINAL unit; applying
            // f's edits shifts g. Recompute g's edit against the shifted
            // unit by rebuilding it from the merged reference below instead.
            let _ = e;
        }
        let mut all = EditSet::new();
        for e in per_fn.clone() {
            all.merge(e);
        }
        merged.apply(all);

        // Apply the same edits one at a time against ids remapped by hand:
        // f's edits first (ids unchanged), then g's (shifted by +1 from f's
        // net insert).
        let mut e0 = per_fn[0].clone();
        let _ = &mut e0;
        seq.apply(per_fn[0].clone());
        let g = seq.find_function("g").unwrap();
        let first_insn = g.entry_ids().find(|&id| seq.insn(id).is_some()).unwrap();
        let mut e1 = EditSet::new();
        e1.replace_insn(first_insn, Instruction::nop_of_len(2));
        e1.insert_after(first_insn, vec![Entry::Insn(Instruction::nop().into())]);
        seq.apply(e1);

        assert_eq!(merged.emit(), seq.emit());
    }
}
