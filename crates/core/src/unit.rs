//! The MAO IR: one long entry list with section and function views.
//!
//! The paper: *"After parsing, all assembly directives and instructions form
//! one long list of MAO IR nodes. To reflect the structure of assembly
//! files, MAO offers a notion of sections and functions and provides easy
//! access to these higher level concepts via corresponding iterators."*
//!
//! A [`MaoUnit`] owns the flat `Vec<Entry>`; [`Section`] and [`Function`]
//! are computed views of index ranges. A function split across sections by
//! an intermittent data section (the jump-table pattern GCC emits for
//! `switch`) has multiple [`Function::spans`] and its iterator walks them
//! transparently, exactly as §II requires.

use std::collections::HashMap;
use std::ops::Range;

use mao_asm::{Directive, Entry, ParseError};
use mao_x86::Instruction;

/// Index of an entry in the unit's flat list.
pub type EntryId = usize;

/// A contiguous run of entries in one section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (`.text`, `.rodata`, ...).
    pub name: String,
    /// Entry ranges belonging to this section, in file order. A section can
    /// appear several times in a file; each appearance is one range.
    pub ranges: Vec<Range<EntryId>>,
}

impl Section {
    /// Is this an executable (text-like) section?
    pub fn is_text(&self) -> bool {
        is_text_section(&self.name)
    }

    /// All entry ids in this section, in order.
    pub fn entry_ids(&self) -> impl Iterator<Item = EntryId> + '_ {
        self.ranges.iter().flat_map(|r| r.clone())
    }
}

fn is_text_section(name: &str) -> bool {
    name == ".text" || name.starts_with(".text.")
}

/// A function view over the unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function (symbol) name.
    pub name: String,
    /// Entry id of the function's defining label.
    pub label_id: EntryId,
    /// Entry ranges forming the function body, in order. More than one when
    /// a data section interrupts the function's text.
    pub spans: Vec<Range<EntryId>>,
}

impl Function {
    /// All entry ids of the function body, in order, spanning section splits
    /// transparently.
    pub fn entry_ids(&self) -> impl Iterator<Item = EntryId> + '_ {
        self.spans.iter().flat_map(|r| r.clone())
    }

    /// Does the function contain this entry id?
    pub fn contains(&self, id: EntryId) -> bool {
        self.spans.iter().any(|r| r.contains(&id))
    }
}

/// The MAO IR unit: the parsed assembly file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaoUnit {
    entries: Vec<Entry>,
}

impl MaoUnit {
    /// Build a unit from already-parsed entries.
    pub fn from_entries(entries: Vec<Entry>) -> MaoUnit {
        MaoUnit { entries }
    }

    /// Parse assembly text into a unit (the default first pass of the
    /// pipeline).
    pub fn parse(text: &str) -> Result<MaoUnit, ParseError> {
        Ok(MaoUnit {
            entries: mao_asm::parse(text)?,
        })
    }

    /// Emit the unit as textual assembly (the `ASM` pass).
    pub fn emit(&self) -> String {
        mao_asm::emit(&self.entries)
    }

    /// The flat entry list.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the unit empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by id.
    pub fn entry(&self, id: EntryId) -> &Entry {
        &self.entries[id]
    }

    /// Mutable entry access (for in-place instruction rewriting).
    pub fn entry_mut(&mut self, id: EntryId) -> &mut Entry {
        &mut self.entries[id]
    }

    /// The instruction at `id`, if that entry is one.
    pub fn insn(&self, id: EntryId) -> Option<&Instruction> {
        self.entries[id].insn()
    }

    /// Section name in effect for each entry (`.text` before any section
    /// directive, matching gas's default).
    pub fn section_names(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.entries.len());
        let mut current = ".text";
        for e in &self.entries {
            if let Entry::Directive(d) = e {
                if let Some(name) = d.section_name() {
                    current = name;
                }
                // Directives like .previous/.popsection are not modeled; the
                // corpus this reproduction handles does not use them.
            }
            out.push(current);
        }
        out
    }

    /// Compute the section views.
    pub fn sections(&self) -> Vec<Section> {
        let names = self.section_names();
        let mut sections: Vec<Section> = Vec::new();
        let mut index: HashMap<&str, usize> = HashMap::new();
        let mut i = 0;
        while i < names.len() {
            let name = names[i];
            let mut j = i;
            while j < names.len() && names[j] == name {
                j += 1;
            }
            let slot = *index.entry(name).or_insert_with(|| {
                sections.push(Section {
                    name: name.to_string(),
                    ranges: Vec::new(),
                });
                sections.len() - 1
            });
            sections[slot].ranges.push(i..j);
            i = j;
        }
        sections
    }

    /// Map from label name to its entry id (first definition wins).
    pub fn labels(&self) -> HashMap<&str, EntryId> {
        let mut map = HashMap::new();
        for (id, e) in self.entries.iter().enumerate() {
            if let Entry::Label(l) = e {
                map.entry(l.as_str()).or_insert(id);
            }
        }
        map
    }

    /// Find a label's entry id.
    pub fn find_label(&self, name: &str) -> Option<EntryId> {
        self.entries
            .iter()
            .position(|e| e.label() == Some(name))
    }

    /// Symbols declared as functions via `.type sym, @function`.
    fn function_symbols(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                Entry::Directive(Directive::Type { symbol, kind }) if kind == "function" => {
                    Some(symbol.as_str())
                }
                _ => None,
            })
            .collect()
    }

    /// Compute the function views.
    ///
    /// A function starts at its defining label (in a text section, with a
    /// matching `.type` directive) and extends to the next function start or
    /// the end of the unit. Non-text ranges inside that extent are excluded
    /// from the spans, so iteration skips interleaved data sections — the
    /// transparency property of §II.
    pub fn functions(&self) -> Vec<Function> {
        let names = self.section_names();
        let symbols = self.function_symbols();
        let mut starts: Vec<(EntryId, &str)> = Vec::new();
        for (id, e) in self.entries.iter().enumerate() {
            if let Entry::Label(l) = e {
                if is_text_section(names[id]) && symbols.contains(&l.as_str()) {
                    starts.push((id, l));
                }
            }
        }
        let mut functions = Vec::with_capacity(starts.len());
        for (k, &(start, name)) in starts.iter().enumerate() {
            let end = starts.get(k + 1).map_or(self.entries.len(), |&(s, _)| s);
            let mut spans: Vec<Range<EntryId>> = Vec::new();
            let mut i = start;
            while i < end {
                if is_text_section(names[i]) {
                    let mut j = i;
                    while j < end && is_text_section(names[j]) {
                        j += 1;
                    }
                    spans.push(i..j);
                    i = j;
                } else {
                    i += 1;
                }
            }
            functions.push(Function {
                name: name.to_string(),
                label_id: start,
                spans,
            });
        }
        functions
    }

    /// Find a function view by name.
    pub fn find_function(&self, name: &str) -> Option<Function> {
        self.functions().into_iter().find(|f| f.name == name)
    }

    /// Apply a batch of edits. Returns the number of entries after editing.
    pub fn apply(&mut self, edits: EditSet) -> usize {
        let mut out = Vec::with_capacity(self.entries.len() + 8);
        for (id, entry) in self.entries.drain(..).enumerate() {
            if let Some(before) = edits.insert_before.get(&id) {
                out.extend(before.iter().cloned());
            }
            if !edits.deleted.contains(&id) {
                match edits.replaced.get(&id) {
                    Some(new_entries) => out.extend(new_entries.iter().cloned()),
                    None => out.push(entry),
                }
            }
            if let Some(after) = edits.insert_after.get(&id) {
                out.extend(after.iter().cloned());
            }
        }
        if let Some(at_end) = edits.insert_before.get(&usize::MAX) {
            out.extend(at_end.iter().cloned());
        }
        self.entries = out;
        self.entries.len()
    }
}

/// A batch of deferred edits against a [`MaoUnit`].
///
/// Passes collect edits while iterating (ids stay stable), then call
/// [`MaoUnit::apply`] once; all ids refer to the pre-edit numbering.
#[derive(Debug, Clone, Default)]
pub struct EditSet {
    deleted: std::collections::BTreeSet<EntryId>,
    replaced: HashMap<EntryId, Vec<Entry>>,
    insert_before: HashMap<EntryId, Vec<Entry>>,
    insert_after: HashMap<EntryId, Vec<Entry>>,
}

impl EditSet {
    /// Empty edit set.
    pub fn new() -> EditSet {
        EditSet::default()
    }

    /// Any edits recorded?
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty()
            && self.replaced.is_empty()
            && self.insert_before.is_empty()
            && self.insert_after.is_empty()
    }

    /// Number of edit operations recorded.
    pub fn len(&self) -> usize {
        self.deleted.len() + self.replaced.len() + self.insert_before.len() + self.insert_after.len()
    }

    /// Delete entry `id`.
    pub fn delete(&mut self, id: EntryId) -> &mut Self {
        self.deleted.insert(id);
        self
    }

    /// Replace entry `id` with `entries` (empty = delete).
    pub fn replace(&mut self, id: EntryId, entries: Vec<Entry>) -> &mut Self {
        self.replaced.insert(id, entries);
        self
    }

    /// Replace entry `id` with a single instruction.
    pub fn replace_insn(&mut self, id: EntryId, insn: Instruction) -> &mut Self {
        self.replace(id, vec![Entry::Insn(insn)])
    }

    /// Insert `entries` immediately before entry `id`. Use `usize::MAX` to
    /// append at the end of the unit.
    pub fn insert_before(&mut self, id: EntryId, entries: Vec<Entry>) -> &mut Self {
        self.insert_before.entry(id).or_default().extend(entries);
        self
    }

    /// Insert `entries` immediately after entry `id`.
    pub fn insert_after(&mut self, id: EntryId, entries: Vec<Entry>) -> &mut Self {
        self.insert_after.entry(id).or_default().extend(entries);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_FUNCS: &str = r#"
	.text
	.globl	f
	.type	f, @function
f:
	push %rbp
	pop %rbp
	ret
	.size	f, .-f
	.globl	g
	.type	g, @function
g:
	nop
	ret
	.size	g, .-g
"#;

    #[test]
    fn functions_are_found() {
        let unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let funcs = unit.functions();
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].name, "f");
        assert_eq!(funcs[1].name, "g");
        // f's body: label + 3 insns + .size + .globl/.type of g.
        let f_insns: Vec<_> = funcs[0]
            .entry_ids()
            .filter_map(|id| unit.insn(id))
            .collect();
        assert_eq!(f_insns.len(), 3);
        let g_insns: Vec<_> = funcs[1]
            .entry_ids()
            .filter_map(|id| unit.insn(id))
            .collect();
        assert_eq!(g_insns.len(), 2);
    }

    /// The §II scenario: a function split in two by an intermittent data
    /// section must iterate transparently.
    #[test]
    fn function_split_by_data_section() {
        let text = r#"
	.text
	.type	h, @function
h:
	nop
	jmp *.Ltab(,%rax,8)
	.section	.rodata
.Ltab:
	.quad	.L1
	.quad	.L2
	.text
.L1:
	nop
.L2:
	ret
	.size	h, .-h
"#;
        let unit = MaoUnit::parse(text).unwrap();
        let funcs = unit.functions();
        assert_eq!(funcs.len(), 1);
        let h = &funcs[0];
        assert_eq!(h.spans.len(), 2, "split into two spans: {:?}", h.spans);
        let insns: Vec<_> = h.entry_ids().filter_map(|id| unit.insn(id)).collect();
        // nop, jmp, nop, ret — the .quad data is NOT iterated.
        assert_eq!(insns.len(), 4);
        assert!(insns.iter().all(|i| !matches!(
            i.mnemonic,
            mao_x86::Mnemonic::Movss
        )));
    }

    #[test]
    fn sections_views() {
        let unit = MaoUnit::parse(".text\nnop\n.section .rodata\n.long 1\n.text\nret\n").unwrap();
        let sections = unit.sections();
        assert_eq!(sections.len(), 2);
        let text = &sections[0];
        assert!(text.is_text());
        assert_eq!(text.ranges.len(), 2); // .text appears twice
        assert_eq!(text.entry_ids().count(), 4);
    }

    #[test]
    fn default_section_is_text() {
        let unit = MaoUnit::parse("nop\n").unwrap();
        assert_eq!(unit.section_names(), vec![".text"]);
    }

    #[test]
    fn labels_map() {
        let unit = MaoUnit::parse("a:\nnop\nb:\nret\n").unwrap();
        assert_eq!(unit.find_label("b"), Some(2));
        assert_eq!(unit.labels().len(), 2);
        assert_eq!(unit.find_label("zz"), None);
    }

    #[test]
    fn edits_apply_in_order() {
        let mut unit = MaoUnit::parse("nop\nnop\nnop\n").unwrap();
        let mut edits = EditSet::new();
        edits.delete(1);
        edits.insert_before(0, vec![Entry::Label("start".into())]);
        edits.insert_after(2, vec![Entry::Insn(Instruction::nop())]);
        unit.apply(edits);
        let text = unit.emit();
        assert_eq!(text, "start:\n\tnop\n\tnop\n\tnop\n");
    }

    #[test]
    fn replace_edit() {
        let mut unit = MaoUnit::parse("nop\n").unwrap();
        let mut edits = EditSet::new();
        edits.replace_insn(0, Instruction::nop_of_len(2));
        unit.apply(edits);
        assert_eq!(unit.emit(), "\tnopw\n");
    }

    #[test]
    fn empty_editset_is_noop() {
        let mut unit = MaoUnit::parse(TWO_FUNCS).unwrap();
        let before = unit.clone();
        let edits = EditSet::new();
        assert!(edits.is_empty());
        unit.apply(edits);
        assert_eq!(unit, before);
    }
}
