//! Hardware-counter profile annotation.
//!
//! The paper (§II): *"MAO's IR can also be annotated with hardware counter
//! profile information. Tools like oprofile associate hardware event samples
//! to offsets within functions. Since MAO has instruction sizes available,
//! samples can be directly mapped to individual instructions."*
//!
//! A [`Profile`] carries two kinds of data consumed by passes:
//!
//! * PMU samples with register-file snapshots — input to the instruction
//!   simulation pass (§III.E.m) that amplifies sampled effective addresses;
//! * per-load reuse distances — input to the inverse-prefetching pass
//!   (§III.E.k) that turns low-reuse loads into non-temporal ones.

use std::collections::HashMap;

use crate::isa::x86::RegId;

/// A site within a function, identified by the instruction's ordinal
/// position (samples arrive as offsets; the relaxation layout maps offsets
/// to ordinals, so ordinals are the stable currency here).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Site {
    /// Function name.
    pub function: String,
    /// 0-based index among the function's instructions.
    pub insn_index: usize,
}

impl Site {
    /// Convenience constructor.
    pub fn new(function: &str, insn_index: usize) -> Site {
        Site {
            function: function.to_string(),
            insn_index,
        }
    }
}

/// One PMU sample: the sampled instruction plus the register file content
/// at that point (as delivered by PEBS-style sampling hardware).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Where the sample hit.
    pub site: Site,
    /// Register file snapshot.
    pub regs: HashMap<RegId, u64>,
    /// Effective address the hardware reported for this instruction, if it
    /// accesses memory.
    pub address: Option<u64>,
}

/// Profile data attached to a pass pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// PMU samples with register snapshots.
    pub samples: Vec<Sample>,
    /// Measured reuse distance (in distinct cache lines touched between
    /// successive uses) per load site. `u64::MAX` means "no reuse observed".
    pub reuse_distance: HashMap<Site, u64>,
    /// Event counts per site (e.g. `CPU_CYCLES`), keyed by event name.
    pub events: HashMap<String, HashMap<Site, u64>>,
}

impl Profile {
    /// Empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Record a reuse distance for a load site.
    pub fn set_reuse_distance(&mut self, site: Site, distance: u64) {
        self.reuse_distance.insert(site, distance);
    }

    /// Reuse distance at a site.
    pub fn reuse_distance(&self, site: &Site) -> Option<u64> {
        self.reuse_distance.get(site).copied()
    }

    /// Add a PMU sample.
    pub fn add_sample(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Add an event count.
    pub fn add_event(&mut self, event: &str, site: Site, count: u64) {
        *self
            .events
            .entry(event.to_string())
            .or_default()
            .entry(site)
            .or_insert(0) += count;
    }

    /// Total count of an event across all sites.
    pub fn event_total(&self, event: &str) -> u64 {
        self.events
            .get(event)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_distance_roundtrip() {
        let mut p = Profile::new();
        p.set_reuse_distance(Site::new("f", 3), 100_000);
        assert_eq!(p.reuse_distance(&Site::new("f", 3)), Some(100_000));
        assert_eq!(p.reuse_distance(&Site::new("f", 4)), None);
    }

    #[test]
    fn event_accumulation() {
        let mut p = Profile::new();
        p.add_event("CPU_CYCLES", Site::new("f", 0), 10);
        p.add_event("CPU_CYCLES", Site::new("f", 0), 5);
        p.add_event("CPU_CYCLES", Site::new("g", 1), 1);
        assert_eq!(p.event_total("CPU_CYCLES"), 16);
        assert_eq!(p.event_total("MISSES"), 0);
    }

    #[test]
    fn samples_store_registers() {
        let mut p = Profile::new();
        let mut regs = HashMap::new();
        regs.insert(RegId::Rax, 0x1000);
        p.add_sample(Sample {
            site: Site::new("f", 2),
            regs,
            address: Some(0xdead),
        });
        assert_eq!(p.samples.len(), 1);
        assert_eq!(p.samples[0].regs[&RegId::Rax], 0x1000);
    }
}
