//! Cross-run [`AnalysisCache`] reuse — the property the `maod` service
//! relies on: sequential `run_pipeline_shared` runs over different unit
//! instances share one cache, so repeated function content skips
//! CFG/dataflow construction; structural mutation flushes via the epoch;
//! capacity bounds growth through LRU eviction.

use std::sync::Arc;

use mao::pass::{parse_invocations, run_pipeline_shared, PipelineConfig};
use mao::{AnalysisCache, MaoUnit};

/// `n` distinct small functions; LFIND (analysis-only) visits each one.
fn unit_text(n: usize) -> String {
    let mut text = String::from("\t.text\n");
    for i in 0..n {
        text.push_str(&format!(
            "\t.type\tf{i}, @function\nf{i}:\n.L{i}:\n\taddl ${i}, %eax\n\tjne .L{i}\n\tret\n"
        ));
    }
    text
}

fn run(unit: &mut MaoUnit, passes: &str, analyses: &Arc<AnalysisCache>) {
    let invocations = parse_invocations(passes).unwrap();
    run_pipeline_shared(
        unit,
        &invocations,
        None,
        &PipelineConfig { jobs: 1 },
        analyses,
    )
    .unwrap();
}

#[test]
fn sequential_runs_on_identical_units_hit_the_cache() {
    let text = unit_text(6);
    let analyses = Arc::new(AnalysisCache::new());

    // First run, fresh cache: every function's analyses are built exactly
    // once. (The counters are per *lookup* — a pass that asks for cfg then
    // loops performs two lookups per function, so hits can be non-zero
    // even on the first run; what matters is the build count.)
    let mut first = MaoUnit::parse(&text).unwrap();
    let functions = first.functions().len() as u64;
    assert_eq!(functions, 6);
    run(&mut first, "LFIND", &analyses);
    let s1 = analyses.stats();
    assert_eq!(s1.misses, functions, "each function built exactly once");
    let lookups_per_run = s1.hits + s1.misses;

    // A *different* unit parsed from the same text: same content, same
    // positions, same (fresh) epoch — nothing is rebuilt, every lookup
    // hits.
    let mut second = MaoUnit::parse(&text).unwrap();
    run(&mut second, "LFIND", &analyses);
    let s2 = analyses.stats();
    assert_eq!(s2.misses, s1.misses, "no rebuilds on the identical rerun");
    assert_eq!(s2.hits, s1.hits + lookups_per_run);
    assert!(s2.hit_rate() > s1.hit_rate());

    // Third run: hit rate keeps climbing toward 1.
    let mut third = MaoUnit::parse(&text).unwrap();
    run(&mut third, "LFIND", &analyses);
    let s3 = analyses.stats();
    assert_eq!(s3.misses, s1.misses);
    assert_eq!(s3.hits, s1.hits + 2 * lookups_per_run);
    assert!(s3.hit_rate() > s2.hit_rate());
}

#[test]
fn disjoint_content_misses_then_hits_its_own_entries() {
    let analyses = Arc::new(AnalysisCache::new());
    let text_a = unit_text(3);
    // Different bodies ⇒ different content keys ⇒ no cross-talk.
    let text_b = "\t.text\n\t.type\tg, @function\ng:\n\tsubl $7, %ebx\n\tret\n";

    let mut a = MaoUnit::parse(&text_a).unwrap();
    run(&mut a, "LFIND", &analyses);
    assert_eq!(analyses.stats().misses, 3);
    let mut b = MaoUnit::parse(text_b).unwrap();
    run(&mut b, "LFIND", &analyses);
    // b's function was built fresh, not served from a's entries.
    assert_eq!(analyses.stats().misses, 4, "different content must rebuild");

    // Each text re-run hits its own cached entries: no further rebuilds.
    let mut a2 = MaoUnit::parse(&text_a).unwrap();
    run(&mut a2, "LFIND", &analyses);
    let mut b2 = MaoUnit::parse(text_b).unwrap();
    run(&mut b2, "LFIND", &analyses);
    assert_eq!(analyses.stats().misses, 4);
}

#[test]
fn structural_mutation_flushes_via_the_epoch() {
    // One function with an unreachable block: DCE deletes it, which bumps
    // the unit's context epoch.
    let text = "\t.text\n\t.type\tf, @function\nf:\n\tret\n.Ldead:\n\taddl $1, %eax\n\tret\n";
    let analyses = Arc::new(AnalysisCache::new());
    let mut unit = MaoUnit::parse(text).unwrap();

    run(&mut unit, "LFIND", &analyses);
    let before = analyses.stats();
    assert_eq!(before.misses, 1);
    assert!(!analyses.is_empty());
    let epoch_before = unit.context_epoch();

    // DCE transforms (removes the dead block) — the epoch moves.
    run(&mut unit, "DCE", &analyses);
    assert!(
        unit.context_epoch() > epoch_before,
        "DCE must bump the epoch when it deletes entries"
    );
    let mid = analyses.stats();

    // The next analysis run sees a new epoch: stale entries are flushed and
    // the (new-content) function is rebuilt instead of served stale.
    run(&mut unit, "LFIND", &analyses);
    let after = analyses.stats();
    assert_eq!(
        after.misses,
        mid.misses + 1,
        "post-mutation run must rebuild, not hit stale pre-mutation analyses"
    );
}

#[test]
fn capacity_bounds_growth_through_lru_eviction() {
    let text = unit_text(8);
    let analyses = Arc::new(AnalysisCache::with_capacity(3));
    assert_eq!(analyses.capacity(), 3);

    let mut unit = MaoUnit::parse(&text).unwrap();
    run(&mut unit, "LFIND", &analyses);
    let stats = analyses.stats();
    assert_eq!(stats.misses, 8);
    assert!(
        analyses.len() <= 3,
        "cache grew past capacity: {}",
        analyses.len()
    );
    assert!(stats.evictions >= 5, "evictions: {}", stats.evictions);

    // Rerunning still works (and stays bounded) even though most entries
    // were evicted — correctness never depends on residency.
    let mut again = MaoUnit::parse(&text).unwrap();
    run(&mut again, "LFIND", &analyses);
    assert!(analyses.len() <= 3);

    // An unbounded cache (capacity 0) keeps everything.
    let unbounded = Arc::new(AnalysisCache::new());
    let mut u = MaoUnit::parse(&text).unwrap();
    run(&mut u, "LFIND", &unbounded);
    assert_eq!(unbounded.len(), 8);
    assert_eq!(unbounded.stats().evictions, 0);
}

#[test]
fn shared_cache_and_private_cache_agree_on_results() {
    // The cache must be invisible to pass semantics: the same pipeline on
    // the same input emits byte-identical assembly with a cold cache, a
    // warm shared cache, and a tiny always-evicting cache.
    let text = unit_text(5);
    let passes = "REDTEST:ADDADD:CONSTFOLD:DCE:SCHED";

    let mut cold = MaoUnit::parse(&text).unwrap();
    run(&mut cold, passes, &Arc::new(AnalysisCache::new()));

    let shared = Arc::new(AnalysisCache::new());
    let mut warmup = MaoUnit::parse(&text).unwrap();
    run(&mut warmup, passes, &shared);
    let mut warm = MaoUnit::parse(&text).unwrap();
    run(&mut warm, passes, &shared);

    let mut tiny = MaoUnit::parse(&text).unwrap();
    run(
        &mut tiny,
        passes,
        &Arc::new(AnalysisCache::with_capacity(1)),
    );

    assert_eq!(cold.emit(), warm.emit());
    assert_eq!(cold.emit(), tiny.emit());
}
