//! Property tests for the fragment relaxation engine.
//!
//! 1. On arbitrary generated units, `relax` (fragments + worklist) must
//!    produce exactly the layout of `relax_reference` (the retained legacy
//!    entry-at-a-time solver): same addresses, sizes, branch forms, and
//!    iteration count.
//! 2. After arbitrary random edit batches, `LayoutCache::patch` must leave
//!    the unit and its cached layout identical to applying the same edits
//!    to a clone and solving from scratch — including edits that force the
//!    full-solve fallback (section directives).
//!
//! The generator derives whole programs from one `u64` via SplitMix64, so
//! every failure reproduces from the printed seed.

use mao::relax::{relax, relax_reference, LayoutCache};
use mao::unit::{EditSet, MaoUnit};
use mao_asm::Entry;
use proptest::prelude::*;

fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn below(state: &mut u64, n: u64) -> u64 {
    next(state) % n
}

/// `.Lx` is only rarely defined, so branches to it usually stay unresolved
/// (pinned rel32) — the case the worklist must never re-check.
const LABELS: [&str; 5] = [".La", ".Lb", ".Lc", ".Ld", ".Lx"];

/// A random unit: nop runs sized to put branch deltas near the ±0x7f rel8
/// boundary, duplicate labels, forward/backward/unresolved branches, calls,
/// `.p2align` with and without max-skip, and occasional section switches.
fn random_asm(seed: u64) -> String {
    let mut st = seed;
    let mut s = String::new();
    let items = 8 + below(&mut st, 32);
    for _ in 0..items {
        match below(&mut st, 20) {
            0..=6 => {
                for _ in 0..=below(&mut st, 45) {
                    s.push_str("\tnop\n");
                }
            }
            7..=9 => {
                // Repeated definitions exercise first-wins label resolution.
                s.push_str(LABELS[below(&mut st, 4) as usize]);
                s.push_str(":\n");
            }
            10..=12 => {
                let op = ["jne", "je", "jl", "jmp"][below(&mut st, 4) as usize];
                let l = LABELS[below(&mut st, 5) as usize];
                s.push_str(&format!("\t{op} {l}\n"));
            }
            13 => {
                let l = ["f", ".La"][below(&mut st, 2) as usize];
                s.push_str(&format!("\tcall {l}\n"));
            }
            14..=15 => {
                let d = [".p2align 4", ".p2align 4,,7", ".p2align 3,,2", ".p2align 5"]
                    [below(&mut st, 4) as usize];
                s.push_str(&format!("\t{d}\n"));
            }
            16..=18 => {
                let i = [
                    "addl $1, %eax",
                    "movl $305419896, %ecx",
                    "cmpl $0, %edx",
                    "subl $1, -4(%rbp)",
                    "ret",
                ][below(&mut st, 5) as usize];
                s.push_str(&format!("\t{i}\n"));
            }
            _ => {
                let d = [".text", ".section .text.cold"][below(&mut st, 2) as usize];
                s.push_str(&format!("\t{d}\n"));
            }
        }
    }
    s
}

fn parse_entries(asm: &str) -> Vec<Entry> {
    MaoUnit::parse(asm).unwrap().entries().to_vec()
}

/// A random edit batch against a unit of `len` entries: inserts (including
/// labels, branches, alignment, and — to exercise the patch fallback —
/// section directives), deletes, replaces, and end-of-unit appends.
fn random_edits(st: &mut u64, len: usize) -> EditSet {
    let snippets = [
        "\tnop\n",
        "\tnop\n\tnop\n\tnop\n",
        "\taddl $1, %eax\n",
        ".Lb:\n",
        "\tjne .La\n",
        "\t.p2align 4,,7\n",
        "\t.section .text.cold\n",
    ];
    let mut edits = EditSet::new();
    for _ in 0..=below(st, 3) {
        let snippet = snippets[below(st, snippets.len() as u64) as usize];
        match below(st, 10) {
            0..=4 if len > 0 => {
                edits.insert_before(below(st, len as u64) as usize, parse_entries(snippet));
            }
            5..=6 if len > 0 => {
                edits.delete(below(st, len as u64) as usize);
            }
            7..=8 if len > 0 => {
                edits.replace(below(st, len as u64) as usize, parse_entries(snippet));
            }
            _ => {
                edits.insert_before(usize::MAX, parse_entries(snippet));
            }
        }
    }
    edits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    #[test]
    fn fragment_relax_matches_reference(seed in any::<u64>()) {
        let asm = random_asm(seed);
        let unit = MaoUnit::parse(&asm)
            .unwrap_or_else(|e| panic!("generated asm must parse ({e:?}), seed {seed}:\n{asm}"));
        let reference = relax_reference(&unit)
            .unwrap_or_else(|e| panic!("reference solve failed ({e}), seed {seed}:\n{asm}"));
        let fragment = relax(&unit)
            .unwrap_or_else(|e| panic!("fragment solve failed ({e}), seed {seed}:\n{asm}"));
        prop_assert!(
            fragment.agrees_with(&reference),
            "layouts diverge, seed {seed}:\n{asm}"
        );
    }

    #[test]
    fn incremental_patch_matches_full_relax(seed in any::<u64>()) {
        let asm = random_asm(seed);
        let mut unit = MaoUnit::parse(&asm)
            .unwrap_or_else(|e| panic!("generated asm must parse ({e:?}), seed {seed}:\n{asm}"));
        let mut cache = LayoutCache::new();
        cache
            .layout(&unit)
            .unwrap_or_else(|e| panic!("initial solve failed ({e}), seed {seed}:\n{asm}"));
        let mut st = seed ^ 0x5ca1_ab1e_0ddb_a11;
        for round in 0..3 {
            let edits = random_edits(&mut st, unit.len());
            let mut expected_unit = unit.clone();
            expected_unit.apply(edits.clone());
            cache
                .patch(&mut unit, edits)
                .unwrap_or_else(|e| panic!("patch failed ({e}), seed {seed} round {round}:\n{asm}"));
            prop_assert_eq!(
                unit.entries(),
                expected_unit.entries(),
                "patched unit text diverged, seed {} round {}",
                seed,
                round
            );
            let patched = cache
                .layout(&unit)
                .unwrap_or_else(|e| panic!("patched solve failed ({e}), seed {seed}:\n{asm}"));
            let expected = relax_reference(&expected_unit)
                .unwrap_or_else(|e| panic!("reference solve failed ({e}), seed {seed}:\n{asm}"));
            prop_assert!(
                patched.agrees_with(&expected),
                "patched layout diverges from full solve, seed {seed} round {round}:\n{asm}"
            );
        }
    }
}
