//! Content-addressed on-disk result store: the persistent cache tier.
//!
//! One file per 128-bit [`RequestKey`] under a configurable directory, so
//! a daemon restart begins warm and multiple `maod` instances can share
//! artifacts through a common directory. The layout is deliberately dumb —
//! flat files, no index file, no lock file:
//!
//! * **Atomic writes.** Entries are written to a `.tmp-<pid>-<n>` sibling
//!   and `rename(2)`d into place, so a reader never observes a partial
//!   entry and two instances racing on the same key simply last-write-win
//!   identical content (the key is a content hash of the request).
//! * **Self-verifying entries.** Each file carries a magic+version stamp,
//!   the key it claims to store, explicit lengths, and an FNV-1a checksum
//!   of the body. Truncated, bit-flipped, stale-version, or misnamed files
//!   fail decode and are *evicted, never served*.
//! * **Size-bounded LRU eviction.** The cache tracks per-key sizes and a
//!   last-access order (seeded from file mtimes at startup, maintained
//!   in-memory afterwards) and deletes least-recently-used entries once
//!   the configured byte budget is exceeded.
//! * **`fsync` optional.** Build artifacts are re-computable, so the
//!   default trades durability-on-power-loss for write latency; `fsync:
//!   true` forces data + directory syncs for shared NFS-like setups.
//!
//! The version stamp ([`DISK_FORMAT_VERSION`]) must be bumped whenever the
//! serialized [`OptimizeOutcome`] shape *or the meaning of a cached result*
//! changes (new pass semantics, changed emission), invalidating every
//! existing entry at once. Pass configuration does not need a stamp: the
//! pass string is part of the request key itself.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::protocol::OptimizeOutcome;
use crate::result_cache::RequestKey;

/// Bumped whenever the entry encoding or the meaning of a cached result
/// changes; entries with any other version are treated as stale and
/// evicted on contact.
pub const DISK_FORMAT_VERSION: u32 = 1;

/// 8-byte file magic. The trailing byte doubles as a human-readable format
/// generation in hexdumps.
const MAGIC: &[u8; 8] = b"MAODC\0\0\x01";

/// Entry file extension.
const EXT: &str = "mc";

/// Construction parameters for a [`DiskCache`].
#[derive(Debug, Clone)]
pub struct DiskCacheConfig {
    /// Directory holding the entries (created if missing).
    pub dir: PathBuf,
    /// Total byte budget across entries (0 = unbounded).
    pub max_bytes: u64,
    /// Force file + directory syncs on every write.
    pub fsync: bool,
}

impl DiskCacheConfig {
    /// Defaults: unbounded, no fsync.
    pub fn new(dir: impl Into<PathBuf>) -> DiskCacheConfig {
        DiskCacheConfig {
            dir: dir.into(),
            max_bytes: 0,
            fsync: false,
        }
    }
}

/// Counters, cumulative over the cache's lifetime (this instance only —
/// other instances sharing the directory keep their own).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries deleted to respect the byte budget.
    pub evictions: u64,
    /// Corrupt/truncated/stale entries deleted instead of served.
    pub corrupt: u64,
    /// Bytes currently resident (as indexed by this instance).
    pub bytes: u64,
    /// Entries currently resident (as indexed by this instance).
    pub entries: u64,
    /// Configured byte budget (0 = unbounded).
    pub max_bytes: u64,
}

/// Registry mirrors of the counters (attached at most once).
struct DiskMetrics {
    hits: mao::obs::Counter,
    misses: mao::obs::Counter,
    insertions: mao::obs::Counter,
    evictions: mao::obs::Counter,
    corrupt: mao::obs::Counter,
}

struct IndexEntry {
    bytes: u64,
    /// In-memory LRU stamp; seeded from mtime order at startup.
    last_access: u64,
}

struct Index {
    map: HashMap<u128, IndexEntry>,
    clock: u64,
    total_bytes: u64,
}

/// The persistent tier. Thread-safe; cheap operations hold a short index
/// lock, file I/O runs outside it where possible.
pub struct DiskCache {
    config: DiskCacheConfig,
    index: Mutex<Index>,
    tmp_counter: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    metrics: OnceLock<DiskMetrics>,
}

impl DiskCache {
    /// Open (creating if needed) the cache directory and index any entries
    /// already present — the restart-warm path and the shared-directory
    /// path both start here.
    pub fn open(config: DiskCacheConfig) -> io::Result<DiskCache> {
        std::fs::create_dir_all(&config.dir)?;
        let mut entries: Vec<(u128, u64, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(".tmp-") {
                // A crashed writer's leftover; safe to delete once clearly
                // abandoned (in-progress writes are milliseconds old).
                let stale = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .map(|age| age.as_secs() > 300)
                    .unwrap_or(false);
                if stale {
                    let _ = std::fs::remove_file(&path);
                }
                continue;
            }
            let Some(key) = key_of_file_name(&name) else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            entries.push((key, meta.len(), mtime));
        }
        // Oldest files get the lowest LRU stamps.
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        let mut map = HashMap::with_capacity(entries.len());
        let mut total_bytes = 0u64;
        for (clock, (key, bytes, _)) in entries.iter().enumerate() {
            total_bytes += bytes;
            map.insert(
                *key,
                IndexEntry {
                    bytes: *bytes,
                    last_access: clock as u64,
                },
            );
        }
        Ok(DiskCache {
            index: Mutex::new(Index {
                clock: map.len() as u64,
                map,
                total_bytes,
            }),
            config,
            tmp_counter: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            metrics: OnceLock::new(),
        })
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Mirror the counters into `metrics` as the
    /// `mao_result_cache_disk_*_total` families. First attachment wins.
    pub fn attach_metrics(&self, metrics: &mao::obs::Metrics) {
        let _ = self.metrics.set(DiskMetrics {
            hits: metrics.counter("mao_result_cache_disk_hits_total"),
            misses: metrics.counter("mao_result_cache_disk_misses_total"),
            insertions: metrics.counter("mao_result_cache_disk_insertions_total"),
            evictions: metrics.counter("mao_result_cache_disk_evictions_total"),
            corrupt: metrics.counter("mao_result_cache_disk_corrupt_total"),
        });
    }

    fn path_of(&self, key: RequestKey) -> PathBuf {
        self.config.dir.join(format!("{:032x}.{EXT}", key.raw()))
    }

    /// Look up an entry, decoding and verifying it. Invalid entries are
    /// deleted and reported as misses; a hit refreshes the LRU stamp.
    pub fn get(&self, key: RequestKey) -> Option<OptimizeOutcome> {
        let path = self.path_of(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                // Not present — or present under another instance and
                // vanished mid-read; either way a miss.
                self.miss();
                self.index.lock().unwrap().forget(key.raw());
                return None;
            }
        };
        match decode_entry(&bytes, key) {
            Ok(outcome) => {
                let mut index = self.index.lock().unwrap();
                index.touch(key.raw(), bytes.len() as u64);
                drop(index);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.hits.inc();
                }
                Some(outcome)
            }
            Err(_) => {
                // Truncated, corrupted, stale version, or wrong key:
                // evict, never serve.
                let _ = std::fs::remove_file(&path);
                self.index.lock().unwrap().forget(key.raw());
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.corrupt.inc();
                }
                self.miss();
                None
            }
        }
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.misses.inc();
        }
    }

    /// Write an entry (atomic tmp+rename), then evict LRU entries past the
    /// byte budget. Write errors are swallowed — the disk tier is an
    /// accelerator, not a source of truth — but eviction accounting stays
    /// exact for what was written.
    pub fn put(&self, key: RequestKey, outcome: &OptimizeOutcome) {
        let bytes = encode_entry(key, outcome);
        let tmp = self.config.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let final_path = self.path_of(key);
        let written = (|| -> io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            if self.config.fsync {
                file.sync_all()?;
            }
            drop(file);
            std::fs::rename(&tmp, &final_path)?;
            if self.config.fsync {
                if let Ok(dir) = std::fs::File::open(&self.config.dir) {
                    let _ = dir.sync_all();
                }
            }
            Ok(())
        })();
        if written.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.insertions.inc();
        }
        let victims: Vec<u128> = {
            let mut index = self.index.lock().unwrap();
            index.touch(key.raw(), bytes.len() as u64);
            if self.config.max_bytes == 0 {
                Vec::new()
            } else {
                index.evict_plan(self.config.max_bytes, key.raw())
            }
        };
        for victim in victims {
            let path = self
                .config
                .dir
                .join(format!("{victim:032x}.{EXT}", victim = victim));
            let _ = std::fs::remove_file(&path);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.evictions.inc();
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskCacheStats {
        let index = self.index.lock().unwrap();
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes: index.total_bytes,
            entries: index.map.len() as u64,
            max_bytes: self.config.max_bytes,
        }
    }
}

impl Index {
    /// Record an access (insert or refresh), updating byte accounting.
    fn touch(&mut self, key: u128, bytes: u64) {
        self.clock += 1;
        let stamp = self.clock;
        match self.map.get_mut(&key) {
            Some(entry) => {
                self.total_bytes = self.total_bytes - entry.bytes + bytes;
                entry.bytes = bytes;
                entry.last_access = stamp;
            }
            None => {
                self.total_bytes += bytes;
                self.map.insert(
                    key,
                    IndexEntry {
                        bytes,
                        last_access: stamp,
                    },
                );
            }
        }
    }

    /// Drop a key from the index (file already gone or going).
    fn forget(&mut self, key: u128) {
        if let Some(entry) = self.map.remove(&key) {
            self.total_bytes -= entry.bytes;
        }
    }

    /// Select and forget LRU victims until `total_bytes <= budget`. The
    /// just-written `keep` key is never chosen — a single entry larger than
    /// the budget stays resident rather than thrashing.
    fn evict_plan(&mut self, budget: u64, keep: u128) -> Vec<u128> {
        let mut victims = Vec::new();
        while self.total_bytes > budget {
            let Some(victim) = self
                .map
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_access)
                .map(|(k, _)| *k)
            else {
                break;
            };
            self.forget(victim);
            victims.push(victim);
        }
        victims
    }
}

/// `<032x hex key>.mc` → key.
fn key_of_file_name(name: &str) -> Option<u128> {
    let hex = name.strip_suffix(&format!(".{EXT}"))?;
    if hex.len() != 32 {
        return None;
    }
    u128::from_str_radix(hex, 16).ok()
}

// ---------------------------------------------------------------------------
// Entry encoding: magic, version, key, body length, body, FNV-1a checksum.
// All integers little-endian. The body is a length-prefixed dump of the
// OptimizeOutcome fields.
// ---------------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Serialize one entry to its on-disk bytes.
pub fn encode_entry(key: RequestKey, outcome: &OptimizeOutcome) -> Vec<u8> {
    let mut body = Vec::with_capacity(outcome.asm.len() + 256);
    put_bytes(&mut body, outcome.asm.as_bytes());
    body.extend_from_slice(&(outcome.passes.len() as u32).to_le_bytes());
    for (name, transformations, matches) in &outcome.passes {
        put_bytes(&mut body, name.as_bytes());
        body.extend_from_slice(&(*transformations as u64).to_le_bytes());
        body.extend_from_slice(&(*matches as u64).to_le_bytes());
    }
    body.extend_from_slice(&(outcome.timings_us.len() as u32).to_le_bytes());
    for (name, us) in &outcome.timings_us {
        put_bytes(&mut body, name.as_bytes());
        body.extend_from_slice(&us.to_le_bytes());
    }
    body.extend_from_slice(&(outcome.trace.len() as u32).to_le_bytes());
    for line in &outcome.trace {
        put_bytes(&mut body, line.as_bytes());
    }

    let mut out = Vec::with_capacity(body.len() + 48);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.raw().to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out
}

/// Entry decode failure (all variants are handled identically — evict —
/// but the distinction helps tests and debugging).
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Too short, bad magic, or declared lengths exceed the file.
    Malformed,
    /// Written by a different format generation.
    StaleVersion,
    /// The file claims to store a different key than its name implies.
    WrongKey,
    /// The body checksum does not match.
    Corrupt,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Malformed)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Malformed);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Corrupt)
    }
}

/// Decode and verify one entry file's bytes for `expected` key.
pub fn decode_entry(bytes: &[u8], expected: RequestKey) -> Result<OptimizeOutcome, DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(8)? != MAGIC {
        return Err(DecodeError::Malformed);
    }
    if c.u32()? != DISK_FORMAT_VERSION {
        return Err(DecodeError::StaleVersion);
    }
    let key = u128::from_le_bytes(c.take(16)?.try_into().unwrap());
    if key != expected.raw() {
        return Err(DecodeError::WrongKey);
    }
    let body_len = c.u64()? as usize;
    let body_start = c.pos;
    // The body plus its trailing 8-byte checksum must fit exactly.
    if bytes.len() != body_start + body_len + 8 {
        return Err(DecodeError::Malformed);
    }
    let body = &bytes[body_start..body_start + body_len];
    let checksum = u64::from_le_bytes(bytes[body_start + body_len..].try_into().unwrap());
    if fnv1a(body) != checksum {
        return Err(DecodeError::Corrupt);
    }

    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    let asm = c.string()?;
    let mut passes = Vec::new();
    for _ in 0..c.u32()? {
        let name = c.string()?;
        let transformations = c.u64()? as usize;
        let matches = c.u64()? as usize;
        passes.push((name, transformations, matches));
    }
    let mut timings_us = Vec::new();
    for _ in 0..c.u32()? {
        let name = c.string()?;
        let us = c.u64()?;
        timings_us.push((name, us));
    }
    let mut trace = Vec::new();
    for _ in 0..c.u32()? {
        trace.push(c.string()?);
    }
    if c.pos != body.len() {
        return Err(DecodeError::Malformed);
    }
    Ok(OptimizeOutcome {
        asm,
        passes,
        timings_us,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result_cache::request_key;

    fn outcome(asm: &str) -> OptimizeOutcome {
        OptimizeOutcome {
            asm: asm.to_string(),
            passes: vec![("DCE".into(), 2, 3)],
            timings_us: vec![("DCE".into(), 41)],
            trace: vec!["a line".into()],
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "maod-disk-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn encode_decode_roundtrip() {
        let key = request_key("nop\n", "DCE");
        let original = outcome("nop\n");
        let bytes = encode_entry(key, &original);
        assert_eq!(decode_entry(&bytes, key).unwrap(), original);
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let key = request_key("nop\n", "DCE");
        let bytes = encode_entry(key, &outcome("nop\n"));
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_entry(&bytes[..cut], key).is_err(),
                "truncated at {cut}"
            );
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(decode_entry(&flipped, key).is_err(), "bit flip detected");
        let other = request_key("other\n", "DCE");
        assert_eq!(decode_entry(&bytes, other), Err(DecodeError::WrongKey));
        let mut stale = bytes.clone();
        stale[8] = 99; // version field
        assert_eq!(decode_entry(&stale, key), Err(DecodeError::StaleVersion));
    }

    #[test]
    fn put_get_and_restart_reindex() {
        let dir = tempdir("roundtrip");
        let key = request_key("a\n", "DCE");
        {
            let cache = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
            assert!(cache.get(key).is_none());
            cache.put(key, &outcome("a\n"));
            assert_eq!(cache.get(key).unwrap().asm, "a\n");
            let s = cache.stats();
            assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        }
        // A fresh instance over the same directory starts warm.
        let cache = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.get(key).unwrap().asm, "a\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_evicted_not_served() {
        let dir = tempdir("corrupt");
        let cache = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
        let key = request_key("a\n", "DCE");
        cache.put(key, &outcome("a\n"));
        let path = cache.path_of(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.get(key).is_none());
        assert!(!path.exists(), "corrupt entry deleted");
        let s = cache.stats();
        assert_eq!(s.corrupt, 1);
        assert_eq!(s.entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_bound_evicts_lru() {
        let dir = tempdir("evict");
        let one_entry = encode_entry(request_key("0", ""), &outcome("0")).len() as u64;
        let cache = DiskCache::open(DiskCacheConfig {
            dir: dir.clone(),
            max_bytes: one_entry * 2 + 1,
            fsync: false,
        })
        .unwrap();
        let k0 = request_key("0", "");
        let k1 = request_key("1", "");
        let k2 = request_key("2", "");
        cache.put(k0, &outcome("0"));
        cache.put(k1, &outcome("1"));
        assert!(cache.get(k0).is_some()); // refresh k0; k1 becomes LRU
        cache.put(k2, &outcome("2"));
        assert!(cache.get(k1).is_none(), "LRU entry evicted");
        assert!(cache.get(k0).is_some());
        assert!(cache.get(k2).is_some());
        assert_eq!(cache.stats().evictions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_instances_share_a_directory() {
        let dir = tempdir("share");
        let a = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
        let b = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
        let key = request_key("shared\n", "DCE");
        a.put(key, &outcome("shared\n"));
        // B never wrote this key but reads A's entry.
        assert_eq!(b.get(key).unwrap().asm, "shared\n");
        assert_eq!(b.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
