//! Content-addressed on-disk result store: the persistent cache tier.
//!
//! One self-verifying `.mc` file per 128-bit [`RequestKey`], so a daemon
//! restart begins warm and multiple `maod` instances can share artifacts
//! through a common directory. This module owns only the *entry codec* —
//! magic+version stamp, embedded key, explicit lengths, FNV-1a body
//! checksum ([`encode_entry`]/[`decode_entry`]); the file management
//! (atomic writes, validated evict-never-serve reads, segmented
//! scan-resistant LRU eviction, compact startup index) is the shared
//! [`ArtifactStore`] machinery, which the layout and snapshot tiers reuse.
//! The on-disk entry format is unchanged from when this module carried its
//! own store: caches written by earlier builds are read back verbatim.
//!
//! The version stamp ([`DISK_FORMAT_VERSION`]) must be bumped whenever the
//! serialized [`OptimizeOutcome`] shape *or the meaning of a cached result*
//! changes (new pass semantics, changed emission), invalidating every
//! existing entry at once. Pass configuration does not need a stamp: the
//! pass string is part of the request key itself.

use std::io;
use std::path::{Path, PathBuf};

use crate::protocol::OptimizeOutcome;
use crate::result_cache::RequestKey;
use crate::store::{ArtifactStore, StoreConfig, StoreStats};

/// Bumped whenever the entry encoding or the meaning of a cached result
/// changes; entries with any other version are treated as stale and
/// evicted on contact.
pub const DISK_FORMAT_VERSION: u32 = 1;

/// 8-byte file magic. The trailing byte doubles as a human-readable format
/// generation in hexdumps.
const MAGIC: &[u8; 8] = b"MAODC\0\0\x01";

/// Entry file extension.
const EXT: &str = "mc";

/// Construction parameters for a [`DiskCache`].
#[derive(Debug, Clone)]
pub struct DiskCacheConfig {
    /// Directory holding the entries (created if missing).
    pub dir: PathBuf,
    /// Total byte budget across entries (0 = unbounded).
    pub max_bytes: u64,
    /// Force file + directory syncs on every write.
    pub fsync: bool,
}

impl DiskCacheConfig {
    /// Defaults: unbounded, no fsync.
    pub fn new(dir: impl Into<PathBuf>) -> DiskCacheConfig {
        DiskCacheConfig {
            dir: dir.into(),
            max_bytes: 0,
            fsync: false,
        }
    }
}

/// Counters, cumulative over the cache's lifetime (this instance only —
/// other instances sharing the directory keep their own).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries deleted to respect the byte budget.
    pub evictions: u64,
    /// Corrupt/truncated/stale entries deleted instead of served.
    pub corrupt: u64,
    /// Bytes currently resident (as indexed by this instance).
    pub bytes: u64,
    /// Entries currently resident (as indexed by this instance).
    pub entries: u64,
    /// Configured byte budget (0 = unbounded).
    pub max_bytes: u64,
}

impl From<StoreStats> for DiskCacheStats {
    fn from(s: StoreStats) -> DiskCacheStats {
        DiskCacheStats {
            hits: s.hits,
            misses: s.misses,
            insertions: s.insertions,
            evictions: s.evictions,
            corrupt: s.corrupt,
            bytes: s.bytes,
            entries: s.entries,
            max_bytes: s.max_bytes,
        }
    }
}

/// The persistent result tier: the `.mc` codec over an [`ArtifactStore`].
pub struct DiskCache {
    store: ArtifactStore,
}

impl DiskCache {
    /// Open (creating if needed) the cache directory and index any entries
    /// already present — the restart-warm path and the shared-directory
    /// path both start here.
    pub fn open(config: DiskCacheConfig) -> io::Result<DiskCache> {
        let store = ArtifactStore::open(StoreConfig {
            dir: config.dir,
            max_bytes: config.max_bytes,
            fsync: config.fsync,
            ext: EXT,
        })?;
        Ok(DiskCache { store })
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Mirror the counters into `metrics` as the
    /// `mao_result_cache_disk_*_total` families. First attachment wins.
    pub fn attach_metrics(&self, metrics: &mao::obs::Metrics) {
        self.store.attach_metrics(metrics, "mao_result_cache_disk");
    }

    #[cfg(test)]
    fn path_of(&self, key: RequestKey) -> PathBuf {
        self.store.path_of(key.raw())
    }

    /// Look up an entry, decoding and verifying it. Invalid entries are
    /// deleted and reported as misses; a hit refreshes the LRU position.
    pub fn get(&self, key: RequestKey) -> Option<OptimizeOutcome> {
        let mut decoded = None;
        self.store
            .get_with(key.raw(), |bytes| match decode_entry(bytes, key) {
                Ok(outcome) => {
                    decoded = Some(outcome);
                    true
                }
                Err(_) => false,
            })?;
        decoded
    }

    /// Write an entry (atomic tmp+rename), then evict entries past the byte
    /// budget. Write errors are swallowed — the disk tier is an accelerator,
    /// not a source of truth.
    pub fn put(&self, key: RequestKey, outcome: &OptimizeOutcome) {
        self.store.put(key.raw(), &encode_entry(key, outcome));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DiskCacheStats {
        self.store.stats().into()
    }
}

// ---------------------------------------------------------------------------
// Entry encoding: magic, version, key, body length, body, FNV-1a checksum.
// All integers little-endian. The body is a length-prefixed dump of the
// OptimizeOutcome fields.
// ---------------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Serialize one entry to its on-disk bytes.
pub fn encode_entry(key: RequestKey, outcome: &OptimizeOutcome) -> Vec<u8> {
    let mut body = Vec::with_capacity(outcome.asm.len() + 256);
    put_bytes(&mut body, outcome.asm.as_bytes());
    body.extend_from_slice(&(outcome.passes.len() as u32).to_le_bytes());
    for (name, transformations, matches) in &outcome.passes {
        put_bytes(&mut body, name.as_bytes());
        body.extend_from_slice(&(*transformations as u64).to_le_bytes());
        body.extend_from_slice(&(*matches as u64).to_le_bytes());
    }
    body.extend_from_slice(&(outcome.timings_us.len() as u32).to_le_bytes());
    for (name, us) in &outcome.timings_us {
        put_bytes(&mut body, name.as_bytes());
        body.extend_from_slice(&us.to_le_bytes());
    }
    body.extend_from_slice(&(outcome.trace.len() as u32).to_le_bytes());
    for line in &outcome.trace {
        put_bytes(&mut body, line.as_bytes());
    }

    let mut out = Vec::with_capacity(body.len() + 48);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&DISK_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.raw().to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out
}

/// Entry decode failure (all variants are handled identically — evict —
/// but the distinction helps tests and debugging).
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Too short, bad magic, or declared lengths exceed the file.
    Malformed,
    /// Written by a different format generation.
    StaleVersion,
    /// The file claims to store a different key than its name implies.
    WrongKey,
    /// The body checksum does not match.
    Corrupt,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Malformed)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Malformed);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Corrupt)
    }
}

/// Decode and verify one entry file's bytes for `expected` key.
pub fn decode_entry(bytes: &[u8], expected: RequestKey) -> Result<OptimizeOutcome, DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(8)? != MAGIC {
        return Err(DecodeError::Malformed);
    }
    if c.u32()? != DISK_FORMAT_VERSION {
        return Err(DecodeError::StaleVersion);
    }
    let key = u128::from_le_bytes(c.take(16)?.try_into().unwrap());
    if key != expected.raw() {
        return Err(DecodeError::WrongKey);
    }
    let body_len = c.u64()? as usize;
    let body_start = c.pos;
    // The body plus its trailing 8-byte checksum must fit exactly.
    if bytes.len() != body_start + body_len + 8 {
        return Err(DecodeError::Malformed);
    }
    let body = &bytes[body_start..body_start + body_len];
    let checksum = u64::from_le_bytes(bytes[body_start + body_len..].try_into().unwrap());
    if fnv1a(body) != checksum {
        return Err(DecodeError::Corrupt);
    }

    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    let asm = c.string()?;
    let mut passes = Vec::new();
    for _ in 0..c.u32()? {
        let name = c.string()?;
        let transformations = c.u64()? as usize;
        let matches = c.u64()? as usize;
        passes.push((name, transformations, matches));
    }
    let mut timings_us = Vec::new();
    for _ in 0..c.u32()? {
        let name = c.string()?;
        let us = c.u64()?;
        timings_us.push((name, us));
    }
    let mut trace = Vec::new();
    for _ in 0..c.u32()? {
        trace.push(c.string()?);
    }
    if c.pos != body.len() {
        return Err(DecodeError::Malformed);
    }
    Ok(OptimizeOutcome {
        asm,
        passes,
        timings_us,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result_cache::request_key;

    fn outcome(asm: &str) -> OptimizeOutcome {
        OptimizeOutcome {
            asm: asm.to_string(),
            passes: vec![("DCE".into(), 2, 3)],
            timings_us: vec![("DCE".into(), 41)],
            trace: vec!["a line".into()],
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "maod-disk-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn encode_decode_roundtrip() {
        let key = request_key("nop\n", "DCE", mao::isa::IsaId::X86_64);
        let original = outcome("nop\n");
        let bytes = encode_entry(key, &original);
        assert_eq!(decode_entry(&bytes, key).unwrap(), original);
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let key = request_key("nop\n", "DCE", mao::isa::IsaId::X86_64);
        let bytes = encode_entry(key, &outcome("nop\n"));
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_entry(&bytes[..cut], key).is_err(),
                "truncated at {cut}"
            );
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(decode_entry(&flipped, key).is_err(), "bit flip detected");
        let other = request_key("other\n", "DCE", mao::isa::IsaId::X86_64);
        assert_eq!(decode_entry(&bytes, other), Err(DecodeError::WrongKey));
        let mut stale = bytes.clone();
        stale[8] = 99; // version field
        assert_eq!(decode_entry(&stale, key), Err(DecodeError::StaleVersion));
    }

    #[test]
    fn put_get_and_restart_reindex() {
        let dir = tempdir("roundtrip");
        let key = request_key("a\n", "DCE", mao::isa::IsaId::X86_64);
        {
            let cache = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
            assert!(cache.get(key).is_none());
            cache.put(key, &outcome("a\n"));
            assert_eq!(cache.get(key).unwrap().asm, "a\n");
            let s = cache.stats();
            assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        }
        // A fresh instance over the same directory starts warm.
        let cache = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.get(key).unwrap().asm, "a\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_evicted_not_served() {
        let dir = tempdir("corrupt");
        let cache = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
        let key = request_key("a\n", "DCE", mao::isa::IsaId::X86_64);
        cache.put(key, &outcome("a\n"));
        let path = cache.path_of(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.get(key).is_none());
        assert!(!path.exists(), "corrupt entry deleted");
        let s = cache.stats();
        assert_eq!(s.corrupt, 1);
        assert_eq!(s.entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_bound_evicts_lru() {
        let dir = tempdir("evict");
        let one_entry =
            encode_entry(request_key("0", "", mao::isa::IsaId::X86_64), &outcome("0")).len() as u64;
        let cache = DiskCache::open(DiskCacheConfig {
            dir: dir.clone(),
            max_bytes: one_entry * 2 + 1,
            fsync: false,
        })
        .unwrap();
        let k0 = request_key("0", "", mao::isa::IsaId::X86_64);
        let k1 = request_key("1", "", mao::isa::IsaId::X86_64);
        let k2 = request_key("2", "", mao::isa::IsaId::X86_64);
        cache.put(k0, &outcome("0"));
        cache.put(k1, &outcome("1"));
        assert!(cache.get(k0).is_some()); // refresh k0; k1 becomes LRU
        cache.put(k2, &outcome("2"));
        assert!(cache.get(k1).is_none(), "LRU entry evicted");
        assert!(cache.get(k0).is_some());
        assert!(cache.get(k2).is_some());
        assert_eq!(cache.stats().evictions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_instances_share_a_directory() {
        let dir = tempdir("share");
        let a = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
        let b = DiskCache::open(DiskCacheConfig::new(&dir)).unwrap();
        let key = request_key("shared\n", "DCE", mao::isa::IsaId::X86_64);
        a.put(key, &outcome("shared\n"));
        // B never wrote this key but reads A's entry.
        assert_eq!(b.get(key).unwrap().asm, "shared\n");
        assert_eq!(b.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
