//! Content-addressed, tiered result cache for whole optimization requests.
//!
//! Keyed by a 128-bit hash of `(input asm, pass string, ISA)`. The worker count
//! is deliberately *not* part of the key: the PR 1 parallel driver
//! guarantees byte-identical output (including trace lines) for every
//! `jobs` value, so a unit optimized at `--jobs 8` is a valid answer for
//! the same unit at `--jobs 1`.
//!
//! Two tiers:
//!
//! * **Memory** — LRU with a configurable entry capacity. Values are
//!   handed out as `Arc`s so a hit never copies the (potentially megabytes
//!   of) output assembly under the lock.
//! * **Disk** (optional) — a persistent [`DiskCache`] consulted on memory
//!   misses. A disk hit is *promoted* into the memory tier, so the next
//!   lookup is pure memory; an insert writes through to both tiers. This
//!   is what makes restarts begin warm and lets multiple `maod` instances
//!   share artifacts via a common directory.
//!
//! Hit/miss/eviction/insertion counters for both tiers feed the `stats`
//! endpoint and the Prometheus scrape.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::disk_cache::{DiskCache, DiskCacheStats};
use crate::protocol::OptimizeOutcome;

/// Registry mirrors of the cache counters (attached at most once).
struct CacheMetrics {
    hits: mao::obs::Counter,
    misses: mao::obs::Counter,
    evictions: mao::obs::Counter,
    insertions: mao::obs::Counter,
}

/// 128-bit content key of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestKey(u128);

impl RequestKey {
    /// The raw 128-bit value (file names, wire debugging).
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Deterministic shard assignment for `shards` partitions. Uses the
    /// high (independently seeded) hash half, so shard balance is
    /// uncorrelated with the memory tier's bucket placement.
    pub fn shard(self, shards: usize) -> usize {
        if shards <= 1 {
            0
        } else {
            ((self.0 >> 64) as u64 % shards as u64) as usize
        }
    }
}

/// Hash `(asm, passes, isa)` into a [`RequestKey`].
///
/// Two independently-seeded 64-bit hashes are concatenated; a collision
/// needs both to collide at once, which at 2^-128 is beyond the service's
/// lifetime request count by any margin. The ISA participates because the
/// same text optimized for different targets yields different results.
pub fn request_key(asm: &str, passes: &str, isa: mao::isa::IsaId) -> RequestKey {
    let mut lo = std::collections::hash_map::DefaultHasher::new();
    0x6d616f_u64.hash(&mut lo); // "mao" seed
    isa.tag().hash(&mut lo);
    asm.hash(&mut lo);
    passes.hash(&mut lo);
    let mut hi = std::collections::hash_map::DefaultHasher::new();
    0x64616f6d_u64.hash(&mut hi); // "maod" seed
    isa.tag().hash(&mut hi);
    passes.hash(&mut hi);
    asm.hash(&mut hi);
    RequestKey(((hi.finish() as u128) << 64) | lo.finish() as u128)
}

/// Counters, cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity (entries).
    pub capacity: usize,
    /// Persistent-tier counters (None when no disk tier is configured).
    pub disk: Option<DiskCacheStats>,
}

impl ResultCacheStats {
    /// Hits as a fraction of all lookups (0.0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheState {
    /// Key → (last-use stamp, outcome).
    map: HashMap<RequestKey, (u64, Arc<OptimizeOutcome>)>,
    /// Monotonic access clock for LRU stamps.
    clock: u64,
}

/// Which tier answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from the in-memory LRU.
    Memory,
    /// Served from the persistent tier (and promoted to memory).
    Disk,
}

/// Thread-safe content-addressed tiered cache of optimize outcomes.
pub struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
    disk: Option<DiskCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    metrics: OnceLock<CacheMetrics>,
}

impl ResultCache {
    /// Memory-only cache holding at most `capacity` results (0 =
    /// unbounded).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache::with_disk(capacity, None)
    }

    /// Cache with an optional persistent tier behind the memory LRU.
    pub fn with_disk(capacity: usize, disk: Option<DiskCache>) -> ResultCache {
        ResultCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
            disk,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            metrics: OnceLock::new(),
        }
    }

    /// The persistent tier, when configured.
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Mirror this cache's counters into `metrics` as the
    /// `mao_result_cache_*_total` families (and the disk tier's as
    /// `mao_result_cache_disk_*_total`). First attachment wins; the
    /// registry copies start at the attach point (they are exposure
    /// counters, not a replay of history).
    pub fn attach_metrics(&self, metrics: &mao::obs::Metrics) {
        let _ = self.metrics.set(CacheMetrics {
            hits: metrics.counter("mao_result_cache_hits_total"),
            misses: metrics.counter("mao_result_cache_misses_total"),
            evictions: metrics.counter("mao_result_cache_evictions_total"),
            insertions: metrics.counter("mao_result_cache_insertions_total"),
        });
        if let Some(disk) = &self.disk {
            disk.attach_metrics(metrics);
        }
    }

    /// Look up a request: memory first, then the persistent tier (a disk
    /// hit is promoted into memory). The memory hit/miss counters track
    /// the memory tier only; the disk tier keeps its own.
    pub fn get(&self, key: RequestKey) -> Option<(Arc<OptimizeOutcome>, CacheTier)> {
        {
            let mut state = self.state.lock().unwrap();
            state.clock += 1;
            let stamp = state.clock;
            if let Some(entry) = state.map.get_mut(&key) {
                entry.0 = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.hits.inc();
                }
                return Some((entry.1.clone(), CacheTier::Memory));
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.misses.inc();
            }
        }
        // Memory miss: consult the persistent tier outside the memory lock
        // (file reads must not serialize unrelated lookups).
        let disk = self.disk.as_ref()?;
        let outcome = Arc::new(disk.get(key)?);
        self.insert_memory(key, outcome.clone());
        Some((outcome, CacheTier::Disk))
    }

    /// Store a result in memory (evicting LRU entries past capacity) and
    /// write it through to the persistent tier when one is configured.
    pub fn insert(&self, key: RequestKey, outcome: Arc<OptimizeOutcome>) {
        self.insert_memory(key, outcome.clone());
        if let Some(disk) = &self.disk {
            disk.put(key, &outcome);
        }
    }

    /// Memory-tier insert only — used for disk-hit promotion, which must
    /// not rewrite the entry it just read.
    fn insert_memory(&self, key: RequestKey, outcome: Arc<OptimizeOutcome>) {
        let mut state = self.state.lock().unwrap();
        state.clock += 1;
        let stamp = state.clock;
        state.map.insert(key, (stamp, outcome));
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.insertions.inc();
        }
        if self.capacity > 0 {
            while state.map.len() > self.capacity {
                let lru = state
                    .map
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(k, _)| *k)
                    .expect("non-empty map over capacity");
                state.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.evictions.inc();
                }
            }
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (both tiers).
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
            disk: self.disk.as_ref().map(DiskCache::stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(asm: &str) -> Arc<OptimizeOutcome> {
        Arc::new(OptimizeOutcome {
            asm: asm.to_string(),
            passes: vec![],
            timings_us: vec![],
            trace: vec![],
        })
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = ResultCache::new(8);
        let k = request_key("nop\n", "DCE", mao::isa::IsaId::X86_64);
        assert!(cache.get(k).is_none());
        cache.insert(k, outcome("nop\n"));
        let (hit, tier) = cache.get(k).unwrap();
        assert_eq!(hit.asm, "nop\n");
        assert_eq!(tier, CacheTier::Memory);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!(s.disk.is_none(), "memory-only cache has no disk stats");
    }

    #[test]
    fn disk_tier_promotes_on_hit() {
        let dir =
            std::env::temp_dir().join(format!("maod-result-cache-tier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let open = || {
            crate::disk_cache::DiskCache::open(crate::disk_cache::DiskCacheConfig::new(&dir))
                .unwrap()
        };
        let k = request_key("nop\n", "DCE", mao::isa::IsaId::X86_64);
        {
            let warm = ResultCache::with_disk(8, Some(open()));
            warm.insert(k, outcome("nop\n"));
        }
        // Fresh memory tier, same directory: first lookup is a disk hit...
        let cache = ResultCache::with_disk(8, Some(open()));
        let (hit, tier) = cache.get(k).unwrap();
        assert_eq!(hit.asm, "nop\n");
        assert_eq!(tier, CacheTier::Disk);
        // ...which promoted the entry, so the second is pure memory.
        let (_, tier) = cache.get(k).unwrap();
        assert_eq!(tier, CacheTier::Memory);
        let s = cache.stats();
        let d = s.disk.unwrap();
        assert_eq!((s.hits, s.misses), (1, 1), "memory tier saw one of each");
        assert_eq!((d.hits, d.misses), (1, 0), "the only disk lookup hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_inputs_distinct_keys() {
        assert_ne!(
            request_key("a", "P", mao::isa::IsaId::X86_64),
            request_key("b", "P", mao::isa::IsaId::X86_64)
        );
        assert_ne!(
            request_key("a", "P", mao::isa::IsaId::X86_64),
            request_key("a", "Q", mao::isa::IsaId::X86_64)
        );
        // Swapping asm and passes must not collide either.
        assert_ne!(
            request_key("a", "b", mao::isa::IsaId::X86_64),
            request_key("b", "a", mao::isa::IsaId::X86_64)
        );
        assert_eq!(
            request_key("a", "P", mao::isa::IsaId::X86_64),
            request_key("a", "P", mao::isa::IsaId::X86_64)
        );
        // The same text targeting a different ISA is a different request.
        assert_ne!(
            request_key("a", "P", mao::isa::IsaId::X86_64),
            request_key("a", "P", mao::isa::IsaId::Aarch64)
        );
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = ResultCache::new(2);
        let k1 = request_key("1", "", mao::isa::IsaId::X86_64);
        let k2 = request_key("2", "", mao::isa::IsaId::X86_64);
        let k3 = request_key("3", "", mao::isa::IsaId::X86_64);
        cache.insert(k1, outcome("1"));
        cache.insert(k2, outcome("2"));
        // Touch k1 so k2 becomes the LRU entry.
        assert!(cache.get(k1).is_some());
        cache.insert(k3, outcome("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(k1).is_some(), "recently used entry survives");
        assert!(cache.get(k2).is_none(), "LRU entry was evicted");
        assert!(cache.get(k3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let cache = ResultCache::new(0);
        for i in 0..100 {
            cache.insert(
                request_key(&i.to_string(), "", mao::isa::IsaId::X86_64),
                outcome("x"),
            );
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
    }
}
