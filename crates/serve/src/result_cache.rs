//! Content-addressed result cache for whole optimization requests.
//!
//! Keyed by a 128-bit hash of `(input asm, pass string)`. The worker count
//! is deliberately *not* part of the key: the PR 1 parallel driver
//! guarantees byte-identical output (including trace lines) for every
//! `jobs` value, so a unit optimized at `--jobs 8` is a valid answer for
//! the same unit at `--jobs 1`.
//!
//! Eviction is LRU with a configurable entry capacity; hit/miss/eviction/
//! insertion counters feed the `stats` endpoint. Values are handed out as
//! `Arc`s so a hit never copies the (potentially megabytes of) output
//! assembly under the lock.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::protocol::OptimizeOutcome;

/// Registry mirrors of the cache counters (attached at most once).
struct CacheMetrics {
    hits: mao::obs::Counter,
    misses: mao::obs::Counter,
    evictions: mao::obs::Counter,
    insertions: mao::obs::Counter,
}

/// 128-bit content key of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestKey(u128);

/// Hash `(asm, passes)` into a [`RequestKey`].
///
/// Two independently-seeded 64-bit hashes are concatenated; a collision
/// needs both to collide at once, which at 2^-128 is beyond the service's
/// lifetime request count by any margin.
pub fn request_key(asm: &str, passes: &str) -> RequestKey {
    let mut lo = std::collections::hash_map::DefaultHasher::new();
    0x6d616f_u64.hash(&mut lo); // "mao" seed
    asm.hash(&mut lo);
    passes.hash(&mut lo);
    let mut hi = std::collections::hash_map::DefaultHasher::new();
    0x64616f6d_u64.hash(&mut hi); // "maod" seed
    passes.hash(&mut hi);
    asm.hash(&mut hi);
    RequestKey(((hi.finish() as u128) << 64) | lo.finish() as u128)
}

/// Counters, cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity (entries).
    pub capacity: usize,
}

impl ResultCacheStats {
    /// Hits as a fraction of all lookups (0.0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheState {
    /// Key → (last-use stamp, outcome).
    map: HashMap<RequestKey, (u64, Arc<OptimizeOutcome>)>,
    /// Monotonic access clock for LRU stamps.
    clock: u64,
}

/// Thread-safe content-addressed LRU cache of optimize outcomes.
pub struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    metrics: OnceLock<CacheMetrics>,
}

impl ResultCache {
    /// Cache holding at most `capacity` results (0 = unbounded).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            metrics: OnceLock::new(),
        }
    }

    /// Mirror this cache's counters into `metrics` as the
    /// `mao_result_cache_*_total` families. First attachment wins; the
    /// registry copies start at the attach point (they are exposure
    /// counters, not a replay of history).
    pub fn attach_metrics(&self, metrics: &mao::obs::Metrics) {
        let _ = self.metrics.set(CacheMetrics {
            hits: metrics.counter("mao_result_cache_hits_total"),
            misses: metrics.counter("mao_result_cache_misses_total"),
            evictions: metrics.counter("mao_result_cache_evictions_total"),
            insertions: metrics.counter("mao_result_cache_insertions_total"),
        });
    }

    /// Look up a request, refreshing its LRU stamp on a hit.
    pub fn get(&self, key: RequestKey) -> Option<Arc<OptimizeOutcome>> {
        let mut state = self.state.lock().unwrap();
        state.clock += 1;
        let stamp = state.clock;
        match state.map.get_mut(&key) {
            Some(entry) => {
                entry.0 = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.hits.inc();
                }
                Some(entry.1.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// Store a result, evicting least-recently-used entries past capacity.
    pub fn insert(&self, key: RequestKey, outcome: Arc<OptimizeOutcome>) {
        let mut state = self.state.lock().unwrap();
        state.clock += 1;
        let stamp = state.clock;
        state.map.insert(key, (stamp, outcome));
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.insertions.inc();
        }
        if self.capacity > 0 {
            while state.map.len() > self.capacity {
                let lru = state
                    .map
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(k, _)| *k)
                    .expect("non-empty map over capacity");
                state.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.evictions.inc();
                }
            }
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(asm: &str) -> Arc<OptimizeOutcome> {
        Arc::new(OptimizeOutcome {
            asm: asm.to_string(),
            passes: vec![],
            timings_us: vec![],
            trace: vec![],
        })
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = ResultCache::new(8);
        let k = request_key("nop\n", "DCE");
        assert!(cache.get(k).is_none());
        cache.insert(k, outcome("nop\n"));
        assert_eq!(cache.get(k).unwrap().asm, "nop\n");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn distinct_inputs_distinct_keys() {
        assert_ne!(request_key("a", "P"), request_key("b", "P"));
        assert_ne!(request_key("a", "P"), request_key("a", "Q"));
        // Swapping asm and passes must not collide either.
        assert_ne!(request_key("a", "b"), request_key("b", "a"));
        assert_eq!(request_key("a", "P"), request_key("a", "P"));
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = ResultCache::new(2);
        let k1 = request_key("1", "");
        let k2 = request_key("2", "");
        let k3 = request_key("3", "");
        cache.insert(k1, outcome("1"));
        cache.insert(k2, outcome("2"));
        // Touch k1 so k2 becomes the LRU entry.
        assert!(cache.get(k1).is_some());
        cache.insert(k3, outcome("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(k1).is_some(), "recently used entry survives");
        assert!(cache.get(k2).is_none(), "LRU entry was evicted");
        assert!(cache.get(k3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let cache = ResultCache::new(0);
        for i in 0..100 {
            cache.insert(request_key(&i.to_string(), ""), outcome("x"));
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
    }
}
