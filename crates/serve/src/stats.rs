//! Server-side observability counters and the `stats` snapshot.
//!
//! [`ServerStats`] registers its request counters directly in the engine's
//! `mao_obs::Metrics` registry, so the same cells feed both the JSON
//! `stats` response and the Prometheus `metrics` export — there is no
//! second set of numbers to drift. A point-in-time [`StatsSnapshot`]
//! consolidates what used to be three separate accessors (service
//! counters, result-cache stats, analysis-cache stats) and renders through
//! the single [`StatsSnapshot::to_json`] path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mao::obs::{Counter, Metrics, SpanTotal};
use mao::{CacheStats, RelaxTotals};

use crate::json::Json;
use crate::result_cache::ResultCacheStats;

/// Version of the `stats`/`metrics` response schema. Bumped when members
/// are added, renamed, or restructured; clients should check it before
/// digging into the object. Version 1 was the unversioned pre-telemetry
/// shape; version 2 added `schema_version` itself, the `spans` array, and
/// the `metrics` request; version 3 added the `admission` object, the
/// per-shard `shards` array (the flat `analysis_cache` object becomes the
/// cross-shard aggregate), and the optional `result_cache.disk` tier;
/// version 4 added the `superopt` object (window/search/rewrite counters
/// from SUPEROPT pass runs served by this daemon); version 5 added the
/// `frontend` object (parse time, snapshot-store hit/miss counters, symbol
/// interner size) and the `layout_cache.hit_disk`/`miss_disk` members
/// reporting the persistent layout tier; version 6 added the `cost_model`
/// object (name/source/generator/seed/mnemonic-count/fingerprint of the
/// process-global cost table every port/latency-sensitive pass plans
/// with — `hand-set` builtins or a `probe/<backend>` `.mpt` sweep);
/// version 7 added the `isa` object (optimize requests by instruction
/// set, one member per [`mao::isa::IsaId`] name) alongside per-request
/// ISA selection on the `optimize` request.
pub const STATS_SCHEMA_VERSION: u64 = 7;

/// Cumulative service counters. One instance lives for the daemon's whole
/// life and is shared by every connection and worker thread. The counters
/// are handles into the engine's metrics registry (families
/// `mao_requests_total`, `mao_requests_ok_total`, ...), so a Prometheus
/// scrape sees exactly what the `stats` snapshot reports.
pub struct ServerStats {
    started: Instant,
    requests_total: Counter,
    requests_ok: Counter,
    requests_error: Counter,
    panics: Counter,
    timeouts: Counter,
    offered: Counter,
    accepted: Counter,
    shed: Counter,
    in_flight: AtomicU64,
    /// Optimize requests per instruction set, indexed like
    /// [`mao::isa::IsaId::ALL`].
    isa_requests: Vec<Counter>,
    /// Pass name → (invocations, cumulative microseconds).
    pass_timings: Mutex<BTreeMap<String, (u64, u64)>>,
    /// Handles into the `mao_superopt_*` counter families the SUPEROPT
    /// pass increments when it runs inside this engine's pipelines.
    /// Registered here (at zero) so the families exist — and render in
    /// both `stats` and the Prometheus export — before the first request.
    superopt: SuperoptCounters,
}

/// The SUPEROPT pass's counter handles (see `mao-superopt`'s `Counters`;
/// same family names, same cells).
struct SuperoptCounters {
    windows: Counter,
    searches: Counter,
    rewrites: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    diff_rejects: Counter,
    oracle_rejects: Counter,
}

impl SuperoptCounters {
    fn new(metrics: &Metrics) -> SuperoptCounters {
        SuperoptCounters {
            windows: metrics.counter("mao_superopt_windows_total"),
            searches: metrics.counter("mao_superopt_searches_total"),
            rewrites: metrics.counter("mao_superopt_rewrites_total"),
            cache_hits: metrics.counter("mao_superopt_cache_hits_total"),
            cache_misses: metrics.counter("mao_superopt_cache_misses_total"),
            diff_rejects: metrics.counter("mao_superopt_diff_rejects_total"),
            oracle_rejects: metrics.counter("mao_superopt_oracle_rejects_total"),
        }
    }

    fn snapshot(&self) -> SuperoptStats {
        SuperoptStats {
            windows: self.windows.get(),
            searches: self.searches.get(),
            rewrites: self.rewrites.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            diff_rejects: self.diff_rejects.get(),
            oracle_rejects: self.oracle_rejects.get(),
        }
    }
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new(&Metrics::new())
    }
}

impl ServerStats {
    /// Fresh counters registered in `metrics`; uptime starts now.
    pub fn new(metrics: &Metrics) -> ServerStats {
        ServerStats {
            started: Instant::now(),
            requests_total: metrics.counter("mao_requests_total"),
            requests_ok: metrics.counter("mao_requests_ok_total"),
            requests_error: metrics.counter("mao_requests_error_total"),
            panics: metrics.counter("mao_request_panics_total"),
            timeouts: metrics.counter("mao_request_timeouts_total"),
            offered: metrics.counter("mao_requests_offered_total"),
            accepted: metrics.counter("mao_requests_accepted_total"),
            shed: metrics.counter("mao_requests_shed_total"),
            in_flight: AtomicU64::new(0),
            isa_requests: mao::isa::IsaId::ALL
                .iter()
                .map(|isa| metrics.counter_with("mao_requests_isa_total", &[("isa", isa.name())]))
                .collect(),
            pass_timings: Mutex::new(BTreeMap::new()),
            superopt: SuperoptCounters::new(metrics),
        }
    }

    /// An optimize request declared its target instruction set.
    pub fn record_isa(&self, isa: mao::isa::IsaId) {
        if let Some(i) = mao::isa::IsaId::ALL.iter().position(|x| *x == isa) {
            self.isa_requests[i].inc();
        }
    }

    /// A request entered service.
    pub fn begin_request(&self) {
        self.requests_total.inc();
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left service (any outcome).
    pub fn end_request(&self, ok: bool) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if ok {
            self.requests_ok.inc();
        } else {
            self.requests_error.inc();
        }
    }

    /// An administrative request (stats/ping/shutdown) was served. Counted
    /// in the total but not in ok/error/in-flight, which track optimize
    /// work.
    pub fn record_admin(&self) {
        self.requests_total.inc();
    }

    /// A request was isolated after a pass panic.
    pub fn record_panic(&self) {
        self.panics.inc();
    }

    /// A request hit its wall-clock budget.
    pub fn record_timeout(&self) {
        self.timeouts.inc();
    }

    /// A compute request reached the admission gate.
    pub fn record_offered(&self) {
        self.offered.inc();
    }

    /// The admission gate let a compute request through.
    pub fn record_accepted(&self) {
        self.accepted.inc();
    }

    /// The admission gate shed a compute request (`BUSY`).
    pub fn record_shed(&self) {
        self.shed.inc();
    }

    /// Fold one pipeline run's per-pass timings into the cumulative table.
    pub fn record_pass_timings(&self, timings_us: &[(String, u64)]) {
        let mut table = self.pass_timings.lock().unwrap();
        for (name, us) in timings_us {
            let entry = table.entry(name.clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += us;
        }
    }

    /// Requests currently in service.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total requests accepted.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.get()
    }

    /// Seconds since the counters were created.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Consolidate everything into one point-in-time [`StatsSnapshot`].
    pub fn snapshot(
        &self,
        result_cache: ResultCacheStats,
        analysis_cache: CacheStats,
        shards: Vec<ShardStats>,
        pending: u64,
        relax: RelaxTotals,
        span_totals: Vec<SpanTotal>,
        frontend: FrontendStats,
    ) -> StatsSnapshot {
        let per_pass_timings = self
            .pass_timings
            .lock()
            .unwrap()
            .iter()
            .map(|(name, (invocations, total_us))| (name.clone(), *invocations, *total_us))
            .collect();
        StatsSnapshot {
            schema_version: STATS_SCHEMA_VERSION,
            uptime_s: self.uptime_s(),
            requests: RequestCounters {
                total: self.requests_total.get(),
                ok: self.requests_ok.get(),
                errors: self.requests_error.get(),
                panics: self.panics.get(),
                timeouts: self.timeouts.get(),
            },
            isa_requests: mao::isa::IsaId::ALL
                .iter()
                .zip(&self.isa_requests)
                .map(|(isa, counter)| (isa.name().to_string(), counter.get()))
                .collect(),
            in_flight: self.in_flight(),
            admission: AdmissionStats {
                offered: self.offered.get(),
                accepted: self.accepted.get(),
                shed: self.shed.get(),
                pending,
            },
            result_cache,
            analysis_cache,
            shards,
            relax,
            per_pass_timings,
            span_totals,
            superopt: self.superopt.snapshot(),
            frontend,
            cost_model: CostModelStats::current(),
        }
    }
}

/// Provenance of the process-global cost model (schema v6). Answers "which
/// numbers did the scheduler and alignment passes plan with" — the builtin
/// hand-set tables or a measured `.mpt` sweep — without a daemon restart
/// ambiguity: the fingerprint is the `.mpt` payload checksum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostModelStats {
    /// Model name (`intel-core2-like`, `my-box`, ...).
    pub name: String,
    /// `hand-set` for builtins, `probe/<backend>` for sweeps.
    pub source: String,
    /// Generator identity, e.g. `mao-probe sweep v1`.
    pub generator: String,
    /// RNG seed the sweep ran with (0 for hand-set tables).
    pub seed: u64,
    /// Explicit per-mnemonic entries in the table.
    pub mnemonics: u64,
    /// `.mpt` payload checksum of the serialized table.
    pub fingerprint: u64,
}

impl CostModelStats {
    /// Snapshot the process-global provider.
    pub fn current() -> CostModelStats {
        let model = mao_x86::cost::current();
        CostModelStats {
            name: model.name.clone(),
            source: model.provenance.source.clone(),
            generator: model.provenance.generator.clone(),
            seed: model.provenance.seed,
            mnemonics: model.len() as u64,
            fingerprint: model.fingerprint(),
        }
    }
}

/// Point-in-time front-end totals: parse time, the snapshot tier, and the
/// process-wide symbol interner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Cumulative text-parse wall time across requests, microseconds
    /// (snapshot hits contribute nothing — that is the point).
    pub parse_us: u64,
    /// Requests whose unit loaded from a stored snapshot.
    pub snapshot_hits: u64,
    /// Requests that parsed text (and backfilled the snapshot store).
    pub snapshot_misses: u64,
    /// Bytes resident in the snapshot store (0 when not configured).
    pub snapshot_bytes: u64,
    /// Entries resident in the snapshot store (0 when not configured).
    pub snapshot_entries: u64,
    /// Distinct symbols interned process-wide.
    pub interner_symbols: u64,
    /// Bytes of interned symbol text.
    pub interner_bytes: u64,
}

/// Point-in-time SUPEROPT totals across every pipeline this engine ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperoptStats {
    /// Eligible windows considered.
    pub windows: u64,
    /// Windows that went to a fresh search (cache misses and failed
    /// re-verifications).
    pub searches: u64,
    /// Verified rewrites applied.
    pub rewrites: u64,
    /// Rewrite-cache lookups answered.
    pub cache_hits: u64,
    /// Rewrite-cache lookups that found nothing.
    pub cache_misses: u64,
    /// Candidates killed by the random-state differential filter.
    pub diff_rejects: u64,
    /// Candidates (or stale cache entries) killed by the full oracle.
    pub oracle_rejects: u64,
}

/// Request outcome counters within a [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCounters {
    /// Requests accepted (optimize + admin).
    pub total: u64,
    /// Optimize requests that succeeded.
    pub ok: u64,
    /// Optimize requests that failed (any error kind).
    pub errors: u64,
    /// Requests isolated after a pass panic.
    pub panics: u64,
    /// Requests that hit their wall-clock budget.
    pub timeouts: u64,
}

/// Admission-control counters: `offered == accepted + shed` always, and
/// `pending` is the point-in-time gauge the high-water mark bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Compute requests that reached the admission gate.
    pub offered: u64,
    /// Requests the gate let through to a shard queue.
    pub accepted: u64,
    /// Requests shed with `BUSY` at the high-water mark.
    pub shed: u64,
    /// Requests admitted but not yet finished right now.
    pub pending: u64,
}

/// One worker shard's view: requests it served and its private analysis
/// cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Compute requests this shard served.
    pub requests: u64,
    /// The shard's private analysis/layout cache counters.
    pub analysis_cache: CacheStats,
}

/// Point-in-time view of the whole service: request counters, admission
/// control, every cache tier, per-shard breakdowns, relaxation totals,
/// per-pass timings, and aggregated span totals. The `stats` response is
/// exactly [`StatsSnapshot::to_json`]; tests and benchmarks read the typed
/// fields directly.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// [`STATS_SCHEMA_VERSION`] at render time.
    pub schema_version: u64,
    /// Seconds the service has been up.
    pub uptime_s: f64,
    /// Request outcome counters.
    pub requests: RequestCounters,
    /// Optimize requests per instruction set: (canonical ISA name, count),
    /// one entry per supported ISA (schema v7).
    pub isa_requests: Vec<(String, u64)>,
    /// Optimize requests currently in service.
    pub in_flight: u64,
    /// Admission-control counters and the pending gauge.
    pub admission: AdmissionStats,
    /// Whole-request result cache counters (memory tier, plus the disk
    /// tier when a cache dir is configured).
    pub result_cache: ResultCacheStats,
    /// Cross-shard aggregate of the per-function analysis caches
    /// (includes the layout slots).
    pub analysis_cache: CacheStats,
    /// Per-shard breakdown: served requests and private cache counters.
    pub shards: Vec<ShardStats>,
    /// Process-wide relaxation-solver totals.
    pub relax: RelaxTotals,
    /// Per pass: (name, invocations, cumulative microseconds).
    pub per_pass_timings: Vec<(String, u64, u64)>,
    /// Aggregated span totals from the engine's recorder, one per
    /// (category, name).
    pub span_totals: Vec<SpanTotal>,
    /// SUPEROPT pass totals (zero until a request runs the pass).
    pub superopt: SuperoptStats,
    /// Front-end totals: parse time, snapshot tier, symbol interner.
    pub frontend: FrontendStats,
    /// Provenance of the cost model the passes planned with.
    pub cost_model: CostModelStats,
}

fn analysis_cache_json(stats: &CacheStats) -> Json {
    let total = stats.hits + stats.misses;
    Json::obj(vec![
        ("hits", Json::from(stats.hits)),
        ("misses", Json::from(stats.misses)),
        ("evictions", Json::from(stats.evictions)),
        (
            "hit_rate",
            Json::from(if total > 0 {
                stats.hits as f64 / total as f64
            } else {
                0.0
            }),
        ),
    ])
}

impl StatsSnapshot {
    /// The one rendering path for the `stats` response body.
    pub fn to_json(&self) -> Json {
        let analyses = &self.analysis_cache;
        let per_pass_timings: Vec<Json> = self
            .per_pass_timings
            .iter()
            .map(|(name, invocations, total_us)| {
                Json::obj(vec![
                    ("name", Json::from(name.clone())),
                    ("invocations", Json::from(*invocations)),
                    ("total_us", Json::from(*total_us)),
                ])
            })
            .collect();
        let spans: Vec<Json> = self
            .span_totals
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("cat", Json::from(t.cat.clone())),
                    ("name", Json::from(t.name.clone())),
                    ("count", Json::from(t.count)),
                    ("total_us", Json::from(t.total_us)),
                ])
            })
            .collect();
        let shards: Vec<Json> = self
            .shards
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("shard", Json::from(s.shard as u64)),
                    ("requests", Json::from(s.requests)),
                    ("analysis_cache", analysis_cache_json(&s.analysis_cache)),
                ])
            })
            .collect();
        let mut result_cache = vec![
            ("hits", Json::from(self.result_cache.hits)),
            ("misses", Json::from(self.result_cache.misses)),
            ("evictions", Json::from(self.result_cache.evictions)),
            ("insertions", Json::from(self.result_cache.insertions)),
            ("len", Json::from(self.result_cache.len)),
            ("capacity", Json::from(self.result_cache.capacity)),
            ("hit_rate", Json::from(self.result_cache.hit_rate())),
        ];
        if let Some(disk) = &self.result_cache.disk {
            result_cache.push((
                "disk",
                Json::obj(vec![
                    ("hits", Json::from(disk.hits)),
                    ("misses", Json::from(disk.misses)),
                    ("insertions", Json::from(disk.insertions)),
                    ("evictions", Json::from(disk.evictions)),
                    ("corrupt", Json::from(disk.corrupt)),
                    ("bytes", Json::from(disk.bytes)),
                    ("entries", Json::from(disk.entries)),
                    ("max_bytes", Json::from(disk.max_bytes)),
                ]),
            ));
        }
        Json::obj(vec![
            ("schema_version", Json::from(self.schema_version)),
            ("uptime_s", Json::from(self.uptime_s)),
            (
                "requests",
                Json::obj(vec![
                    ("total", Json::from(self.requests.total)),
                    ("ok", Json::from(self.requests.ok)),
                    ("errors", Json::from(self.requests.errors)),
                    ("panics", Json::from(self.requests.panics)),
                    ("timeouts", Json::from(self.requests.timeouts)),
                ]),
            ),
            (
                "isa",
                Json::Obj(
                    self.isa_requests
                        .iter()
                        .map(|(name, count)| (name.clone(), Json::from(*count)))
                        .collect(),
                ),
            ),
            ("in_flight", Json::from(self.in_flight)),
            (
                "admission",
                Json::obj(vec![
                    ("offered", Json::from(self.admission.offered)),
                    ("accepted", Json::from(self.admission.accepted)),
                    ("shed", Json::from(self.admission.shed)),
                    ("pending", Json::from(self.admission.pending)),
                ]),
            ),
            ("result_cache", Json::obj(result_cache)),
            ("analysis_cache", analysis_cache_json(analyses)),
            (
                "layout_cache",
                Json::obj(vec![
                    ("hits", Json::from(analyses.layout_hits)),
                    ("misses", Json::from(analyses.layout_misses)),
                    ("hit_rate", Json::from(analyses.layout_hit_rate())),
                    ("hit_disk", Json::from(analyses.layout_disk_hits)),
                    ("miss_disk", Json::from(analyses.layout_disk_misses)),
                ]),
            ),
            (
                "frontend",
                Json::obj(vec![
                    ("parse_us", Json::from(self.frontend.parse_us)),
                    ("snapshot_hits", Json::from(self.frontend.snapshot_hits)),
                    ("snapshot_misses", Json::from(self.frontend.snapshot_misses)),
                    ("snapshot_bytes", Json::from(self.frontend.snapshot_bytes)),
                    (
                        "snapshot_entries",
                        Json::from(self.frontend.snapshot_entries),
                    ),
                    (
                        "interner_symbols",
                        Json::from(self.frontend.interner_symbols),
                    ),
                    ("interner_bytes", Json::from(self.frontend.interner_bytes)),
                ]),
            ),
            ("shards", Json::Arr(shards)),
            (
                "relax",
                Json::obj(vec![
                    ("layouts", Json::from(self.relax.layouts)),
                    ("patches", Json::from(self.relax.patches)),
                    ("iterations", Json::from(self.relax.iterations)),
                    ("rechecks", Json::from(self.relax.rechecks)),
                    ("fragments", Json::from(self.relax.fragments)),
                ]),
            ),
            ("per_pass_timings", Json::Arr(per_pass_timings)),
            ("spans", Json::Arr(spans)),
            (
                "superopt",
                Json::obj(vec![
                    ("windows", Json::from(self.superopt.windows)),
                    ("searches", Json::from(self.superopt.searches)),
                    ("rewrites", Json::from(self.superopt.rewrites)),
                    ("cache_hits", Json::from(self.superopt.cache_hits)),
                    ("cache_misses", Json::from(self.superopt.cache_misses)),
                    ("diff_rejects", Json::from(self.superopt.diff_rejects)),
                    ("oracle_rejects", Json::from(self.superopt.oracle_rejects)),
                ]),
            ),
            (
                "cost_model",
                Json::obj(vec![
                    ("name", Json::from(self.cost_model.name.clone())),
                    ("source", Json::from(self.cost_model.source.clone())),
                    ("generator", Json::from(self.cost_model.generator.clone())),
                    ("seed", Json::from(self.cost_model.seed)),
                    ("mnemonics", Json::from(self.cost_model.mnemonics)),
                    (
                        "fingerprint",
                        Json::from(format!("{:016x}", self.cost_model.fingerprint)),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_of(stats: &ServerStats) -> Json {
        stats
            .snapshot(
                ResultCacheStats::default(),
                CacheStats::default(),
                Vec::new(),
                0,
                RelaxTotals::default(),
                Vec::new(),
                FrontendStats::default(),
            )
            .to_json()
    }

    #[test]
    fn snapshot_counts() {
        let metrics = Metrics::new();
        let stats = ServerStats::new(&metrics);
        stats.begin_request();
        stats.record_pass_timings(&[("DCE".into(), 10), ("SCHED".into(), 20)]);
        stats.record_pass_timings(&[("DCE".into(), 5)]);
        stats.end_request(true);
        stats.begin_request();
        stats.record_panic();
        stats.end_request(false);
        let snap = snapshot_of(&stats);
        assert_eq!(
            snap.get("schema_version").unwrap().as_u64(),
            Some(STATS_SCHEMA_VERSION)
        );
        let requests = snap.get("requests").unwrap();
        assert_eq!(requests.get("total").unwrap().as_u64(), Some(2));
        assert_eq!(requests.get("ok").unwrap().as_u64(), Some(1));
        assert_eq!(requests.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(requests.get("panics").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("in_flight").unwrap().as_u64(), Some(0));
        let timings = snap.get("per_pass_timings").unwrap().as_arr().unwrap();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].get("name").unwrap().as_str(), Some("DCE"));
        assert_eq!(timings[0].get("invocations").unwrap().as_u64(), Some(2));
        assert_eq!(timings[0].get("total_us").unwrap().as_u64(), Some(15));
        // The same counters are visible to a Prometheus scrape.
        assert_eq!(metrics.counter_value("mao_requests_total"), 2);
        assert_eq!(metrics.counter_value("mao_request_panics_total"), 1);
    }

    #[test]
    fn superopt_counters_flow_from_the_metrics_registry() {
        let metrics = Metrics::new();
        let stats = ServerStats::new(&metrics);
        // Zero until the pass runs, but the object (and the Prometheus
        // families) must exist from the first snapshot.
        let snap = snapshot_of(&stats);
        let so = snap.get("superopt").unwrap();
        assert_eq!(so.get("rewrites").unwrap().as_u64(), Some(0));
        // The pass writes through the shared registry by family name; the
        // stats handles must read the same cells.
        metrics.counter("mao_superopt_windows_total").add(3);
        metrics.counter("mao_superopt_searches_total").add(2);
        metrics.counter("mao_superopt_rewrites_total").inc();
        metrics.counter("mao_superopt_cache_hits_total").inc();
        metrics.counter("mao_superopt_diff_rejects_total").add(40);
        let snap = snapshot_of(&stats);
        let so = snap.get("superopt").unwrap();
        assert_eq!(so.get("windows").unwrap().as_u64(), Some(3));
        assert_eq!(so.get("searches").unwrap().as_u64(), Some(2));
        assert_eq!(so.get("rewrites").unwrap().as_u64(), Some(1));
        assert_eq!(so.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(so.get("cache_misses").unwrap().as_u64(), Some(0));
        assert_eq!(so.get("diff_rejects").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn admission_counters_reconcile_and_render() {
        let metrics = Metrics::new();
        let stats = ServerStats::new(&metrics);
        for _ in 0..5 {
            stats.record_offered();
        }
        for _ in 0..3 {
            stats.record_accepted();
        }
        for _ in 0..2 {
            stats.record_shed();
        }
        let snap = snapshot_of(&stats);
        let admission = snap.get("admission").unwrap();
        let offered = admission.get("offered").unwrap().as_u64().unwrap();
        let accepted = admission.get("accepted").unwrap().as_u64().unwrap();
        let shed = admission.get("shed").unwrap().as_u64().unwrap();
        assert_eq!(offered, 5);
        assert_eq!(accepted + shed, offered, "admission always reconciles");
        assert_eq!(metrics.counter_value("mao_requests_shed_total"), 2);
    }

    #[test]
    fn disk_tier_and_shards_render_when_present() {
        let stats = ServerStats::default();
        let mut result_cache = ResultCacheStats::default();
        result_cache.disk = Some(crate::disk_cache::DiskCacheStats {
            hits: 7,
            misses: 2,
            insertions: 9,
            evictions: 1,
            corrupt: 0,
            bytes: 4096,
            entries: 8,
            max_bytes: 1 << 20,
        });
        let shard = ShardStats {
            shard: 0,
            requests: 11,
            analysis_cache: CacheStats {
                hits: 4,
                ..CacheStats::default()
            },
        };
        let snap = stats
            .snapshot(
                result_cache,
                CacheStats::default(),
                vec![shard],
                3,
                RelaxTotals::default(),
                Vec::new(),
                FrontendStats::default(),
            )
            .to_json();
        let disk = snap.get("result_cache").unwrap().get("disk").unwrap();
        assert_eq!(disk.get("hits").unwrap().as_u64(), Some(7));
        assert_eq!(disk.get("bytes").unwrap().as_u64(), Some(4096));
        let shards = snap.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].get("requests").unwrap().as_u64(), Some(11));
        assert_eq!(
            shards[0]
                .get("analysis_cache")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        assert_eq!(
            snap.get("admission")
                .unwrap()
                .get("pending")
                .unwrap()
                .as_u64(),
            Some(3)
        );
    }

    #[test]
    fn cost_model_provenance_renders_in_the_snapshot() {
        let stats = ServerStats::default();
        let snap = snapshot_of(&stats);
        let cm = snap.get("cost_model").unwrap();
        // Whatever provider is installed (builtin here; tests elsewhere in
        // this process may install sweeps), the provenance must be present
        // and well-formed.
        assert!(!cm.get("name").unwrap().as_str().unwrap().is_empty());
        assert!(!cm.get("source").unwrap().as_str().unwrap().is_empty());
        assert!(cm.get("mnemonics").unwrap().as_u64().unwrap() > 0);
        assert_eq!(cm.get("fingerprint").unwrap().as_str().unwrap().len(), 16);
        assert!(cm.get("seed").unwrap().as_u64().is_some());
    }

    #[test]
    fn span_totals_render() {
        let stats = ServerStats::default();
        let snap = stats
            .snapshot(
                ResultCacheStats::default(),
                CacheStats::default(),
                Vec::new(),
                0,
                RelaxTotals::default(),
                vec![SpanTotal {
                    cat: "pass".into(),
                    name: "DCE".into(),
                    count: 3,
                    total_us: 42,
                }],
                FrontendStats::default(),
            )
            .to_json();
        let spans = snap.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("cat").unwrap().as_str(), Some("pass"));
        assert_eq!(spans[0].get("count").unwrap().as_u64(), Some(3));
    }
}
