//! Server-side observability counters and the `stats` snapshot.
//!
//! [`ServerStats`] registers its request counters directly in the engine's
//! `mao_obs::Metrics` registry, so the same cells feed both the JSON
//! `stats` response and the Prometheus `metrics` export — there is no
//! second set of numbers to drift. A point-in-time [`StatsSnapshot`]
//! consolidates what used to be three separate accessors (service
//! counters, result-cache stats, analysis-cache stats) and renders through
//! the single [`StatsSnapshot::to_json`] path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mao::obs::{Counter, Metrics, SpanTotal};
use mao::{CacheStats, RelaxTotals};

use crate::json::Json;
use crate::result_cache::ResultCacheStats;

/// Version of the `stats`/`metrics` response schema. Bumped when members
/// are added, renamed, or restructured; clients should check it before
/// digging into the object. Version 1 was the unversioned pre-telemetry
/// shape; version 2 added `schema_version` itself, the `spans` array, and
/// the `metrics` request.
pub const STATS_SCHEMA_VERSION: u64 = 2;

/// Cumulative service counters. One instance lives for the daemon's whole
/// life and is shared by every connection and worker thread. The counters
/// are handles into the engine's metrics registry (families
/// `mao_requests_total`, `mao_requests_ok_total`, ...), so a Prometheus
/// scrape sees exactly what the `stats` snapshot reports.
pub struct ServerStats {
    started: Instant,
    requests_total: Counter,
    requests_ok: Counter,
    requests_error: Counter,
    panics: Counter,
    timeouts: Counter,
    in_flight: AtomicU64,
    /// Pass name → (invocations, cumulative microseconds).
    pass_timings: Mutex<BTreeMap<String, (u64, u64)>>,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new(&Metrics::new())
    }
}

impl ServerStats {
    /// Fresh counters registered in `metrics`; uptime starts now.
    pub fn new(metrics: &Metrics) -> ServerStats {
        ServerStats {
            started: Instant::now(),
            requests_total: metrics.counter("mao_requests_total"),
            requests_ok: metrics.counter("mao_requests_ok_total"),
            requests_error: metrics.counter("mao_requests_error_total"),
            panics: metrics.counter("mao_request_panics_total"),
            timeouts: metrics.counter("mao_request_timeouts_total"),
            in_flight: AtomicU64::new(0),
            pass_timings: Mutex::new(BTreeMap::new()),
        }
    }

    /// A request entered service.
    pub fn begin_request(&self) {
        self.requests_total.inc();
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left service (any outcome).
    pub fn end_request(&self, ok: bool) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if ok {
            self.requests_ok.inc();
        } else {
            self.requests_error.inc();
        }
    }

    /// An administrative request (stats/ping/shutdown) was served. Counted
    /// in the total but not in ok/error/in-flight, which track optimize
    /// work.
    pub fn record_admin(&self) {
        self.requests_total.inc();
    }

    /// A request was isolated after a pass panic.
    pub fn record_panic(&self) {
        self.panics.inc();
    }

    /// A request hit its wall-clock budget.
    pub fn record_timeout(&self) {
        self.timeouts.inc();
    }

    /// Fold one pipeline run's per-pass timings into the cumulative table.
    pub fn record_pass_timings(&self, timings_us: &[(String, u64)]) {
        let mut table = self.pass_timings.lock().unwrap();
        for (name, us) in timings_us {
            let entry = table.entry(name.clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += us;
        }
    }

    /// Requests currently in service.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total requests accepted.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.get()
    }

    /// Seconds since the counters were created.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Consolidate everything into one point-in-time [`StatsSnapshot`].
    pub fn snapshot(
        &self,
        result_cache: ResultCacheStats,
        analysis_cache: CacheStats,
        relax: RelaxTotals,
        span_totals: Vec<SpanTotal>,
    ) -> StatsSnapshot {
        let per_pass_timings = self
            .pass_timings
            .lock()
            .unwrap()
            .iter()
            .map(|(name, (invocations, total_us))| (name.clone(), *invocations, *total_us))
            .collect();
        StatsSnapshot {
            schema_version: STATS_SCHEMA_VERSION,
            uptime_s: self.uptime_s(),
            requests: RequestCounters {
                total: self.requests_total.get(),
                ok: self.requests_ok.get(),
                errors: self.requests_error.get(),
                panics: self.panics.get(),
                timeouts: self.timeouts.get(),
            },
            in_flight: self.in_flight(),
            result_cache,
            analysis_cache,
            relax,
            per_pass_timings,
            span_totals,
        }
    }
}

/// Request outcome counters within a [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCounters {
    /// Requests accepted (optimize + admin).
    pub total: u64,
    /// Optimize requests that succeeded.
    pub ok: u64,
    /// Optimize requests that failed (any error kind).
    pub errors: u64,
    /// Requests isolated after a pass panic.
    pub panics: u64,
    /// Requests that hit their wall-clock budget.
    pub timeouts: u64,
}

/// Point-in-time view of the whole service: request counters, every cache,
/// relaxation totals, per-pass timings, and aggregated span totals. The
/// `stats` response is exactly [`StatsSnapshot::to_json`]; tests and
/// benchmarks read the typed fields directly.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// [`STATS_SCHEMA_VERSION`] at render time.
    pub schema_version: u64,
    /// Seconds the service has been up.
    pub uptime_s: f64,
    /// Request outcome counters.
    pub requests: RequestCounters,
    /// Optimize requests currently in service.
    pub in_flight: u64,
    /// Whole-request result cache counters.
    pub result_cache: ResultCacheStats,
    /// Per-function analysis cache counters (includes the layout slots).
    pub analysis_cache: CacheStats,
    /// Process-wide relaxation-solver totals.
    pub relax: RelaxTotals,
    /// Per pass: (name, invocations, cumulative microseconds).
    pub per_pass_timings: Vec<(String, u64, u64)>,
    /// Aggregated span totals from the engine's recorder, one per
    /// (category, name).
    pub span_totals: Vec<SpanTotal>,
}

impl StatsSnapshot {
    /// The one rendering path for the `stats` response body.
    pub fn to_json(&self) -> Json {
        let analyses = &self.analysis_cache;
        let analysis_total = analyses.hits + analyses.misses;
        let per_pass_timings: Vec<Json> = self
            .per_pass_timings
            .iter()
            .map(|(name, invocations, total_us)| {
                Json::obj(vec![
                    ("name", Json::from(name.clone())),
                    ("invocations", Json::from(*invocations)),
                    ("total_us", Json::from(*total_us)),
                ])
            })
            .collect();
        let spans: Vec<Json> = self
            .span_totals
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("cat", Json::from(t.cat.clone())),
                    ("name", Json::from(t.name.clone())),
                    ("count", Json::from(t.count)),
                    ("total_us", Json::from(t.total_us)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::from(self.schema_version)),
            ("uptime_s", Json::from(self.uptime_s)),
            (
                "requests",
                Json::obj(vec![
                    ("total", Json::from(self.requests.total)),
                    ("ok", Json::from(self.requests.ok)),
                    ("errors", Json::from(self.requests.errors)),
                    ("panics", Json::from(self.requests.panics)),
                    ("timeouts", Json::from(self.requests.timeouts)),
                ]),
            ),
            ("in_flight", Json::from(self.in_flight)),
            (
                "result_cache",
                Json::obj(vec![
                    ("hits", Json::from(self.result_cache.hits)),
                    ("misses", Json::from(self.result_cache.misses)),
                    ("evictions", Json::from(self.result_cache.evictions)),
                    ("insertions", Json::from(self.result_cache.insertions)),
                    ("len", Json::from(self.result_cache.len)),
                    ("capacity", Json::from(self.result_cache.capacity)),
                    ("hit_rate", Json::from(self.result_cache.hit_rate())),
                ]),
            ),
            (
                "analysis_cache",
                Json::obj(vec![
                    ("hits", Json::from(analyses.hits)),
                    ("misses", Json::from(analyses.misses)),
                    ("evictions", Json::from(analyses.evictions)),
                    (
                        "hit_rate",
                        Json::from(if analysis_total > 0 {
                            analyses.hits as f64 / analysis_total as f64
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
            (
                "layout_cache",
                Json::obj(vec![
                    ("hits", Json::from(analyses.layout_hits)),
                    ("misses", Json::from(analyses.layout_misses)),
                    ("hit_rate", Json::from(analyses.layout_hit_rate())),
                ]),
            ),
            (
                "relax",
                Json::obj(vec![
                    ("layouts", Json::from(self.relax.layouts)),
                    ("patches", Json::from(self.relax.patches)),
                    ("iterations", Json::from(self.relax.iterations)),
                    ("rechecks", Json::from(self.relax.rechecks)),
                    ("fragments", Json::from(self.relax.fragments)),
                ]),
            ),
            ("per_pass_timings", Json::Arr(per_pass_timings)),
            ("spans", Json::Arr(spans)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_counts() {
        let metrics = Metrics::new();
        let stats = ServerStats::new(&metrics);
        stats.begin_request();
        stats.record_pass_timings(&[("DCE".into(), 10), ("SCHED".into(), 20)]);
        stats.record_pass_timings(&[("DCE".into(), 5)]);
        stats.end_request(true);
        stats.begin_request();
        stats.record_panic();
        stats.end_request(false);
        let snap = stats
            .snapshot(
                ResultCacheStats::default(),
                CacheStats::default(),
                RelaxTotals::default(),
                Vec::new(),
            )
            .to_json();
        assert_eq!(
            snap.get("schema_version").unwrap().as_u64(),
            Some(STATS_SCHEMA_VERSION)
        );
        let requests = snap.get("requests").unwrap();
        assert_eq!(requests.get("total").unwrap().as_u64(), Some(2));
        assert_eq!(requests.get("ok").unwrap().as_u64(), Some(1));
        assert_eq!(requests.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(requests.get("panics").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("in_flight").unwrap().as_u64(), Some(0));
        let timings = snap.get("per_pass_timings").unwrap().as_arr().unwrap();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].get("name").unwrap().as_str(), Some("DCE"));
        assert_eq!(timings[0].get("invocations").unwrap().as_u64(), Some(2));
        assert_eq!(timings[0].get("total_us").unwrap().as_u64(), Some(15));
        // The same counters are visible to a Prometheus scrape.
        assert_eq!(metrics.counter_value("mao_requests_total"), 2);
        assert_eq!(metrics.counter_value("mao_request_panics_total"), 1);
    }

    #[test]
    fn span_totals_render() {
        let stats = ServerStats::default();
        let snap = stats
            .snapshot(
                ResultCacheStats::default(),
                CacheStats::default(),
                RelaxTotals::default(),
                vec![SpanTotal {
                    cat: "pass".into(),
                    name: "DCE".into(),
                    count: 3,
                    total_us: 42,
                }],
            )
            .to_json();
        let spans = snap.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("cat").unwrap().as_str(), Some("pass"));
        assert_eq!(spans[0].get("count").unwrap().as_u64(), Some(3));
    }
}
