//! Server-side observability counters and the `stats` snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mao::{CacheStats, RelaxTotals};

use crate::json::Json;
use crate::result_cache::ResultCacheStats;

/// Cumulative service counters. One instance lives for the daemon's whole
/// life and is shared by every connection and worker thread.
pub struct ServerStats {
    started: Instant,
    requests_total: AtomicU64,
    requests_ok: AtomicU64,
    requests_error: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    in_flight: AtomicU64,
    /// Pass name → (invocations, cumulative microseconds).
    pass_timings: Mutex<BTreeMap<String, (u64, u64)>>,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new()
    }
}

impl ServerStats {
    /// Fresh counters; uptime starts now.
    pub fn new() -> ServerStats {
        ServerStats {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            requests_ok: AtomicU64::new(0),
            requests_error: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            pass_timings: Mutex::new(BTreeMap::new()),
        }
    }

    /// A request entered service.
    pub fn begin_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left service (any outcome).
    pub fn end_request(&self, ok: bool) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if ok {
            self.requests_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.requests_error.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An administrative request (stats/ping/shutdown) was served. Counted
    /// in the total but not in ok/error/in-flight, which track optimize
    /// work.
    pub fn record_admin(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was isolated after a pass panic.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// A request hit its wall-clock budget.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one pipeline run's per-pass timings into the cumulative table.
    pub fn record_pass_timings(&self, timings_us: &[(String, u64)]) {
        let mut table = self.pass_timings.lock().unwrap();
        for (name, us) in timings_us {
            let entry = table.entry(name.clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += us;
        }
    }

    /// Requests currently in service.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Total requests accepted.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Render the `stats` response body.
    pub fn snapshot(
        &self,
        result_cache: &ResultCacheStats,
        analyses: &CacheStats,
        relax: &RelaxTotals,
    ) -> Json {
        let pass_timings: Vec<Json> = self
            .pass_timings
            .lock()
            .unwrap()
            .iter()
            .map(|(name, (invocations, total_us))| {
                Json::obj(vec![
                    ("name", Json::from(name.clone())),
                    ("invocations", Json::from(*invocations)),
                    ("total_us", Json::from(*total_us)),
                ])
            })
            .collect();
        let analysis_total = analyses.hits + analyses.misses;
        Json::obj(vec![
            ("uptime_s", Json::from(self.started.elapsed().as_secs_f64())),
            (
                "requests",
                Json::obj(vec![
                    (
                        "total",
                        Json::from(self.requests_total.load(Ordering::Relaxed)),
                    ),
                    ("ok", Json::from(self.requests_ok.load(Ordering::Relaxed))),
                    (
                        "errors",
                        Json::from(self.requests_error.load(Ordering::Relaxed)),
                    ),
                    ("panics", Json::from(self.panics.load(Ordering::Relaxed))),
                    (
                        "timeouts",
                        Json::from(self.timeouts.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("in_flight", Json::from(self.in_flight())),
            (
                "result_cache",
                Json::obj(vec![
                    ("hits", Json::from(result_cache.hits)),
                    ("misses", Json::from(result_cache.misses)),
                    ("evictions", Json::from(result_cache.evictions)),
                    ("insertions", Json::from(result_cache.insertions)),
                    ("len", Json::from(result_cache.len)),
                    ("capacity", Json::from(result_cache.capacity)),
                    ("hit_rate", Json::from(result_cache.hit_rate())),
                ]),
            ),
            (
                "analysis_cache",
                Json::obj(vec![
                    ("hits", Json::from(analyses.hits)),
                    ("misses", Json::from(analyses.misses)),
                    ("evictions", Json::from(analyses.evictions)),
                    (
                        "hit_rate",
                        Json::from(if analysis_total > 0 {
                            analyses.hits as f64 / analysis_total as f64
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ),
            (
                "layout_cache",
                Json::obj(vec![
                    ("hits", Json::from(analyses.layout_hits)),
                    ("misses", Json::from(analyses.layout_misses)),
                    ("hit_rate", Json::from(analyses.layout_hit_rate())),
                ]),
            ),
            (
                "relax",
                Json::obj(vec![
                    ("layouts", Json::from(relax.layouts)),
                    ("patches", Json::from(relax.patches)),
                    ("iterations", Json::from(relax.iterations)),
                    ("rechecks", Json::from(relax.rechecks)),
                    ("fragments", Json::from(relax.fragments)),
                ]),
            ),
            ("per_pass_timings", Json::Arr(pass_timings)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_counts() {
        let stats = ServerStats::new();
        stats.begin_request();
        stats.record_pass_timings(&[("DCE".into(), 10), ("SCHED".into(), 20)]);
        stats.record_pass_timings(&[("DCE".into(), 5)]);
        stats.end_request(true);
        stats.begin_request();
        stats.record_panic();
        stats.end_request(false);
        let snap = stats.snapshot(
            &ResultCacheStats::default(),
            &CacheStats::default(),
            &RelaxTotals::default(),
        );
        let requests = snap.get("requests").unwrap();
        assert_eq!(requests.get("total").unwrap().as_u64(), Some(2));
        assert_eq!(requests.get("ok").unwrap().as_u64(), Some(1));
        assert_eq!(requests.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(requests.get("panics").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("in_flight").unwrap().as_u64(), Some(0));
        let timings = snap.get("per_pass_timings").unwrap().as_arr().unwrap();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].get("name").unwrap().as_str(), Some("DCE"));
        assert_eq!(timings[0].get("invocations").unwrap().as_u64(), Some(2));
        assert_eq!(timings[0].get("total_us").unwrap().as_u64(), Some(15));
    }
}
