//! The event-driven connection layer: one thread multiplexing every
//! connection over `poll(2)`.
//!
//! The first daemon spent a thread per connection parked in a blocking
//! `read_frame`; a build farm holding hundreds of mostly-idle compiler
//! wrapper connections wasted a stack apiece, and a slow client could
//! wedge its thread mid-write. This reactor replaces all of that with a
//! single event loop:
//!
//! * **Readiness, not threads** — the listener, a wake pipe, and every
//!   connection sit in one `poll(2)` set (direct FFI; std already links
//!   libc and the workspace builds offline, so no polling crate).
//! * **Per-connection buffers** — length-prefixed frames are assembled
//!   from whatever bytes arrive; partial writes park in a write buffer
//!   and drain on `POLLOUT`. The loop never blocks on a socket.
//! * **Pipelining** — a client may send many frames without waiting.
//!   Each gets a per-connection sequence number at read time; responses
//!   complete out of order on the shard pool and are re-sequenced in a
//!   reorder buffer so the wire order always matches the request order.
//! * **Deadlines in the transport** — dispatched requests carry a
//!   [`Ticket`]; when one expires the reactor claims the response slot
//!   ([`Engine::expire`]) and synthesizes the timeout error itself, so a
//!   stuck pass cannot block the connection.
//! * **Idle timeouts** — connections quiet past the configured limit
//!   (with nothing queued or in flight) are closed.
//! * **Graceful drain** — SIGTERM or a `shutdown` request stops accepts;
//!   in-flight work finishes, response buffers flush, then the loop
//!   exits.
//!
//! Compute never runs on the reactor thread: [`Engine::handle_async`]
//! answers cache hits and admission rejections inline and ships real work
//! to the shard pool, whose completions return through a wake pipe.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::{Engine, Ticket};
use crate::protocol::{ErrorKind, Request, Response};
use crate::server::sig;

mod ffi {
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "linux")]
    pub type Nfds = u64;
    #[cfg(not(target_os = "linux"))]
    pub type Nfds = u32;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }
}

/// Wait for readiness on `fds` for at most `timeout`. Returns the number
/// of ready descriptors (0 = timeout); `EINTR` reads as a zero-ready wake.
fn poll(fds: &mut [ffi::PollFd], timeout: Duration) -> io::Result<usize> {
    let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
    let rc = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len() as ffi::Nfds, millis) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// An accepting socket (already nonblocking).
pub(crate) enum Acceptor {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Acceptor {
    fn fd(&self) -> RawFd {
        match self {
            Acceptor::Unix(l) => l.as_raw_fd(),
            Acceptor::Tcp(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Acceptor::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                Ok(Stream::Unix(stream))
            }
            Acceptor::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                stream.set_nodelay(true).ok();
                Ok(Stream::Tcp(stream))
            }
        }
    }
}

/// A nonblocking connection socket.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
}

/// A completed response on its way back to a connection.
struct Completion {
    conn: u64,
    seq: u64,
    response: Response,
}

/// Worker→reactor channel: a locked queue plus a wake pipe so a poll()
/// sleeping the reactor wakes the moment a shard finishes.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
}

impl Shared {
    fn push(&self, completion: Completion) {
        self.completions.lock().unwrap().push(completion);
        // A full pipe already guarantees a pending wake; drop the error.
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// One connection's state: framing buffers, the pipelining reorder
/// window, and in-flight deadlines.
struct ConnState {
    stream: Stream,
    /// Bytes read but not yet framed.
    rbuf: Vec<u8>,
    /// Encoded response bytes not yet written (from `wpos`).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Remaining payload bytes of an oversized frame being discarded.
    skip: usize,
    /// Sequence number for the next frame read off the wire.
    next_seq: u64,
    /// Sequence number the wire is waiting for (in-order responses).
    next_write_seq: u64,
    /// Responses completed out of order, keyed by sequence number.
    reorder: BTreeMap<u64, Response>,
    /// Dispatched requests awaiting a shard, with their deadlines.
    inflight: HashMap<u64, Ticket>,
    last_activity: Instant,
    /// Peer closed its write side; finish pending work, then close.
    eof: bool,
    /// Unrecoverable socket error; close immediately.
    dead: bool,
}

impl ConnState {
    fn new(stream: Stream) -> ConnState {
        ConnState {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            skip: 0,
            next_seq: 0,
            next_write_seq: 0,
            reorder: BTreeMap::new(),
            inflight: HashMap::new(),
            last_activity: Instant::now(),
            eof: false,
            dead: false,
        }
    }

    fn has_pending_output(&self) -> bool {
        self.wpos < self.wbuf.len() || !self.reorder.is_empty()
    }

    fn is_settled(&self) -> bool {
        self.inflight.is_empty() && !self.has_pending_output()
    }

    /// Queue `response` for `seq` and move every now-in-order response
    /// into the write buffer.
    fn complete(&mut self, seq: u64, response: Response) {
        self.inflight.remove(&seq);
        self.reorder.insert(seq, response);
        while let Some(response) = self.reorder.remove(&self.next_write_seq) {
            let payload = response.to_json_text();
            let payload = payload.as_bytes();
            self.wbuf
                .extend_from_slice(&(payload.len() as u32).to_be_bytes());
            self.wbuf.extend_from_slice(payload);
            self.next_write_seq += 1;
        }
    }

    /// Write as much buffered output as the socket takes right now.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }
}

/// Run the event loop until the engine drains. Consumes the (nonblocking)
/// listener; returns once every accepted request has been answered and
/// flushed (or the drain grace period expires).
pub(crate) fn run(engine: Engine, listener: Acceptor) -> io::Result<()> {
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let mut wake_rx = wake_rx;
    let shared = Arc::new(Shared {
        completions: Mutex::new(Vec::new()),
        wake_tx,
    });

    let idle_timeout = match engine.config().idle_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let max_frame = engine.config().max_request_bytes;
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_conn_id: u64 = 1;
    let mut accepting = true;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        if sig::termed() {
            engine.begin_shutdown();
        }
        if engine.is_shutting_down() && accepting {
            accepting = false;
            drain_deadline = Some(Instant::now() + Duration::from_secs(60));
            eprintln!(
                "[maod] draining ({} connections, {} pending)...",
                conns.len(),
                engine.pending()
            );
        }

        // Reap connections that are done (or broken): fatal errors first,
        // then clean EOFs and idle timeouts once nothing is owed to them.
        let now = Instant::now();
        conns.retain(|_, c| {
            if c.dead {
                return false;
            }
            if c.eof && c.is_settled() {
                return false;
            }
            if !accepting && c.is_settled() {
                return false; // draining: close idle connections
            }
            if let Some(idle) = idle_timeout {
                if c.is_settled() && now.duration_since(c.last_activity) >= idle {
                    return false;
                }
            }
            true
        });

        if !accepting {
            let settled = conns.values().all(|c| c.is_settled());
            let expired = drain_deadline.is_some_and(|d| now >= d);
            if (settled && conns.values().all(|c| c.inflight.is_empty())) || expired {
                break;
            }
        }

        // Assemble the poll set: wake pipe, listener (while accepting),
        // then every connection — read interest always, write interest
        // only while output is buffered.
        let mut fds: Vec<ffi::PollFd> = Vec::with_capacity(conns.len() + 2);
        fds.push(ffi::PollFd {
            fd: wake_rx.as_raw_fd(),
            events: ffi::POLLIN,
            revents: 0,
        });
        if accepting {
            fds.push(ffi::PollFd {
                fd: listener.fd(),
                events: ffi::POLLIN,
                revents: 0,
            });
        }
        let mut fd_conn: Vec<u64> = Vec::with_capacity(conns.len());
        for (&id, conn) in conns.iter() {
            let mut events = ffi::POLLIN;
            if conn.wpos < conn.wbuf.len() {
                events |= ffi::POLLOUT;
            }
            fds.push(ffi::PollFd {
                fd: conn.stream.fd(),
                events,
                revents: 0,
            });
            fd_conn.push(id);
        }

        // Sleep until the nearest deadline: an in-flight request's budget,
        // the idle sweep, or a coarse signal-check tick.
        let mut timeout = if accepting {
            Duration::from_millis(250)
        } else {
            Duration::from_millis(25)
        };
        for conn in conns.values() {
            for ticket in conn.inflight.values() {
                if let Some(deadline) = ticket.deadline() {
                    timeout = timeout.min(deadline.saturating_duration_since(now));
                }
            }
        }
        poll(&mut fds, timeout)?;

        // Wake pipe: drain the bytes; the payload is the queue itself.
        if fds[0].revents & ffi::POLLIN != 0 {
            let mut sink = [0u8; 256];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }

        // New connections.
        if accepting && fds[1].revents & ffi::POLLIN != 0 {
            loop {
                match listener.accept() {
                    Ok(stream) => {
                        conns.insert(next_conn_id, ConnState::new(stream));
                        next_conn_id += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("[maod] accept failed: {e}");
                        break;
                    }
                }
            }
        }

        // Connection I/O.
        let conn_fds_start = if accepting { 2 } else { 1 };
        for (slot, &id) in fd_conn.iter().enumerate() {
            let revents = fds[conn_fds_start + slot].revents;
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if revents & (ffi::POLLERR | ffi::POLLNVAL) != 0 {
                conn.dead = true;
                continue;
            }
            if revents & (ffi::POLLIN | ffi::POLLHUP) != 0 {
                read_and_dispatch(&engine, &shared, id, conn, max_frame);
            }
            if revents & ffi::POLLOUT != 0 {
                conn.flush();
            }
        }

        // Deadlines: synthesize timeout errors for expired dispatches. The
        // answered-once ticket makes this race-free against a shard
        // finishing at the same instant — exactly one side wins.
        let now = Instant::now();
        for conn in conns.values_mut() {
            let expired: Vec<u64> = conn
                .inflight
                .iter()
                .filter(|(_, t)| t.deadline().is_some_and(|d| d <= now))
                .map(|(&seq, _)| seq)
                .collect();
            for seq in expired {
                let ticket = &conn.inflight[&seq];
                if let Some(response) = engine.expire(ticket) {
                    conn.complete(seq, response);
                }
                // expire() returning None means the shard answered first;
                // its completion is in (or on its way to) the queue.
            }
        }

        // Shard completions (and inline responses pushed during dispatch).
        let completed: Vec<Completion> = std::mem::take(&mut *shared.completions.lock().unwrap());
        for completion in completed {
            // The connection may have died while the shard worked; the
            // result is simply dropped (its cache side effects remain).
            if let Some(conn) = conns.get_mut(&completion.conn) {
                conn.complete(completion.seq, completion.response);
            }
        }

        // Opportunistic flush: most responses fit the socket buffer, so
        // they leave in the same iteration they completed.
        for conn in conns.values_mut() {
            conn.flush();
        }
    }

    engine.join_workers();
    Ok(())
}

/// Pull everything the socket has, carve frames, and dispatch each one.
fn read_and_dispatch(
    engine: &Engine,
    shared: &Arc<Shared>,
    conn_id: u64,
    conn: &mut ConnState,
    max_frame: usize,
) {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.rbuf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }

    loop {
        // Finish discarding an oversized frame's payload first.
        if conn.skip > 0 {
            let n = conn.skip.min(conn.rbuf.len());
            conn.rbuf.drain(..n);
            conn.skip -= n;
            if conn.skip > 0 {
                break;
            }
            continue;
        }
        if conn.rbuf.len() < 4 {
            break;
        }
        let len =
            u32::from_be_bytes([conn.rbuf[0], conn.rbuf[1], conn.rbuf[2], conn.rbuf[3]]) as usize;
        if len > max_frame {
            // Refuse the frame but keep the connection: skip the payload
            // and answer in sequence like any other request.
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.rbuf.drain(..4);
            conn.skip = len;
            conn.complete(
                seq,
                Response::error(
                    ErrorKind::TooLarge,
                    format!("frame of {len} bytes exceeds the {max_frame}-byte limit"),
                ),
            );
            continue;
        }
        if conn.rbuf.len() < 4 + len {
            break;
        }
        let payload: Vec<u8> = conn.rbuf[4..4 + len].to_vec();
        conn.rbuf.drain(..4 + len);
        let seq = conn.next_seq;
        conn.next_seq += 1;
        dispatch(engine, shared, conn_id, conn, seq, &payload);
    }
}

/// Decode one frame and hand it to the engine. Responses — inline or from
/// a shard — funnel through the completion queue; dispatched requests
/// leave a deadline ticket with the connection.
fn dispatch(
    engine: &Engine,
    shared: &Arc<Shared>,
    conn_id: u64,
    conn: &mut ConnState,
    seq: u64,
    payload: &[u8],
) {
    let request = match std::str::from_utf8(payload) {
        Err(_) => Err("request is not utf-8".to_string()),
        Ok(text) => Request::from_json_text(text),
    };
    match request {
        Err(message) => conn.complete(seq, Response::error(ErrorKind::BadRequest, message)),
        Ok(request) => {
            let shared = shared.clone();
            let ticket = engine.handle_async(request, move |response| {
                shared.push(Completion {
                    conn: conn_id,
                    seq,
                    response,
                });
            });
            if let Some(ticket) = ticket {
                conn.inflight.insert(seq, ticket);
            }
        }
    }
}
