//! The request engine: caching, dispatch, isolation, accounting.
//!
//! [`Engine`] is the transport-independent core of `maod`. The socket
//! server, the stdin/stdout batch mode, and the tests all feed it
//! [`Request`]s and write out the [`Response`]s it returns. Three layers
//! wrap every optimize request:
//!
//! 1. **Caching** — a content-addressed [`ResultCache`] keyed by
//!    `hash(asm, passes)`; hits skip parsing and optimization entirely.
//!    Below it, one [`AnalysisCache`] is shared across *all* requests, so
//!    a repeated function body (same content, same position, same unit
//!    epoch — the incremental-build case) skips CFG/dataflow construction
//!    even when the whole-request cache misses.
//! 2. **Robustness** — requests run on a worker pool under
//!    `catch_unwind`; a panicking pass yields a structured `panic` error
//!    (and flushes the shared analysis cache, which may hold half-built
//!    state) while the daemon keeps serving. Each request has a
//!    wall-clock budget; on expiry the caller gets a `timeout` error and
//!    the abandoned computation finishes in the background — if it
//!    succeeds, its result is still inserted into the cache for next
//!    time. Oversized inputs are rejected up front.
//! 3. **Observability** — the engine owns an aggregating [`Obs`] bundle:
//!    every request is a span, queue-wait and service time feed
//!    histograms, both caches mirror their counters into the registry, and
//!    the pipeline runs under [`run_pipeline_observed`]. The `stats`
//!    request renders a consolidated [`StatsSnapshot`]; the `metrics`
//!    request renders the registry as Prometheus text.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mao::obs::{Histogram, Obs, PromText, Span, US_BUCKETS};
use mao::pass::{parse_invocations, run_pipeline_observed, PipelineConfig};
use mao::{AnalysisCache, MaoUnit};

use crate::pool::Pool;
use crate::protocol::{
    CacheOutcome, ErrorKind, OptimizeOutcome, OptimizeRequest, Request, Response, Timings,
    DEFAULT_MAX_REQUEST_BYTES, DEFAULT_TIMEOUT_MS,
};
use crate::result_cache::{request_key, ResultCache};
use crate::stats::{ServerStats, StatsSnapshot};

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads in the request pool (0 = one per available core).
    pub workers: usize,
    /// Default `--jobs` for function-level passes inside one request
    /// (0 = auto). The per-request `options.jobs` overrides it.
    pub jobs: usize,
    /// Default per-request wall-clock budget in milliseconds (0 = none).
    pub timeout_ms: u64,
    /// Result-cache capacity in entries (0 = unbounded).
    pub result_cache_capacity: usize,
    /// Analysis-cache capacity in functions (0 = unbounded).
    pub analysis_cache_capacity: usize,
    /// Maximum request size in bytes (frames and batch lines).
    pub max_request_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 0,
            jobs: 1,
            timeout_ms: DEFAULT_TIMEOUT_MS,
            result_cache_capacity: 1024,
            analysis_cache_capacity: 4096,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
        }
    }
}

struct EngineInner {
    config: EngineConfig,
    pool: Pool,
    results: ResultCache,
    analyses: Arc<AnalysisCache>,
    stats: ServerStats,
    obs: Obs,
    queue_wait_us: Histogram,
    service_us: Histogram,
    shutting_down: AtomicBool,
}

/// The shared request engine (cheaply cloneable handle).
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Build an engine and spawn its worker pool.
    pub fn new(config: EngineConfig) -> Engine {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let obs = Obs::aggregating();
        let results = ResultCache::new(config.result_cache_capacity);
        results.attach_metrics(&obs.metrics);
        let analyses = Arc::new(AnalysisCache::with_capacity(config.analysis_cache_capacity));
        analyses.attach_metrics(&obs.metrics);
        Engine {
            inner: Arc::new(EngineInner {
                pool: Pool::new(workers),
                results,
                analyses,
                stats: ServerStats::new(&obs.metrics),
                queue_wait_us: obs
                    .metrics
                    .histogram("mao_request_queue_wait_us", US_BUCKETS),
                service_us: obs.metrics.histogram("mao_request_service_us", US_BUCKETS),
                obs,
                shutting_down: AtomicBool::new(false),
                config,
            }),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// Service counters (shared with the transport layer).
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// Consolidated point-in-time view of the whole service: request
    /// counters, result/analysis/layout caches, relaxation totals, pass
    /// timings, and span totals — the one source for the `stats` response,
    /// benchmarks, and tests.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.inner.stats.snapshot(
            self.inner.results.stats(),
            self.inner.analyses.stats(),
            mao::relax_totals(),
            self.inner.obs.recorder.totals(),
        )
    }

    /// Render the metrics registry (plus scrape-time gauges and the
    /// process-wide relaxation totals) as Prometheus text exposition.
    pub fn metrics_text(&self) -> String {
        let mut out = PromText::new();
        self.inner.obs.metrics.render_into(&mut out);
        let relax = mao::relax_totals();
        for (family, value) in [
            ("mao_relax_layouts_total", relax.layouts),
            ("mao_relax_patches_total", relax.patches),
            ("mao_relax_iterations_total", relax.iterations),
            ("mao_relax_rechecks_total", relax.rechecks),
            ("mao_relax_fragments_total", relax.fragments),
        ] {
            out.counter_family(family, &[(&[][..], value)]);
        }
        out.gauge("mao_uptime_seconds", self.inner.stats.uptime_s());
        out.gauge("mao_requests_in_flight", self.inner.stats.in_flight());
        out.gauge("mao_result_cache_len", self.inner.results.len());
        out.finish()
    }

    /// Has a shutdown been requested (SIGTERM or `shutdown` request)?
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Begin draining: refuse new optimize work.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Close the worker pool after queued jobs finish.
    pub fn join_workers(&self) {
        self.inner.pool.shutdown();
    }

    /// Serve one request.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Optimize(req) => self.optimize(req),
            Request::Stats => {
                self.inner.stats.record_admin();
                Response::Stats(self.snapshot().to_json())
            }
            Request::Metrics => {
                self.inner.stats.record_admin();
                Response::Metrics(self.metrics_text())
            }
            Request::Ping => {
                self.inner.stats.record_admin();
                Response::Pong
            }
            Request::Shutdown => {
                self.inner.stats.record_admin();
                self.begin_shutdown();
                Response::ShutdownAck
            }
        }
    }

    /// Serve one optimize request (cache → pool → timeout).
    fn optimize(&self, req: OptimizeRequest) -> Response {
        if self.is_shutting_down() {
            return Response::error(ErrorKind::ShuttingDown, "server is draining");
        }
        if req.asm.len() > self.inner.config.max_request_bytes {
            return Response::error(
                ErrorKind::TooLarge,
                format!(
                    "request of {} bytes exceeds the {}-byte limit",
                    req.asm.len(),
                    self.inner.config.max_request_bytes
                ),
            );
        }
        self.inner.stats.begin_request();
        let response = self.optimize_inner(req);
        self.inner
            .stats
            .end_request(matches!(response, Response::Optimized { .. }));
        response
    }

    fn optimize_inner(&self, req: OptimizeRequest) -> Response {
        let started = Instant::now();
        let key = request_key(&req.asm, &req.passes);
        if req.use_cache {
            if let Some(cached) = self.inner.results.get(key) {
                // Serve the stored result verbatim except for the trace:
                // an empty trace is the visible proof that nothing re-ran.
                let mut outcome = (*cached).clone();
                outcome.trace.clear();
                return Response::Optimized {
                    outcome,
                    cache: CacheOutcome::Hit,
                    timings: Timings {
                        parse_us: 0,
                        optimize_us: 0,
                        total_us: started.elapsed().as_micros() as u64,
                    },
                };
            }
        }

        let timeout_ms = req.timeout_ms.unwrap_or(self.inner.config.timeout_ms);
        let (tx, rx) = sync_channel::<Result<(OptimizeOutcome, Timings), Response>>(1);
        let engine = self.clone();
        let use_cache = req.use_cache;
        let submitted_at = Instant::now();
        let submitted = self.inner.pool.submit(Box::new(move || {
            engine
                .inner
                .queue_wait_us
                .observe(submitted_at.elapsed().as_micros() as u64);
            let serviced_at = Instant::now();
            let result = engine.compute(&req);
            engine
                .inner
                .service_us
                .observe(serviced_at.elapsed().as_micros() as u64);
            if let Ok((outcome, _)) = &result {
                // Even if the requester has timed out and gone, the work is
                // done — cache it so the retry is free.
                if use_cache {
                    engine.inner.results.insert(
                        request_key(&req.asm, &req.passes),
                        Arc::new(outcome.clone()),
                    );
                }
            }
            let _ = tx.send(result);
        }));
        if submitted.is_err() {
            return Response::error(ErrorKind::ShuttingDown, "worker pool is shut down");
        }

        let result = if timeout_ms == 0 {
            rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
        } else {
            rx.recv_timeout(Duration::from_millis(timeout_ms))
        };
        match result {
            Ok(Ok((outcome, mut timings))) => {
                timings.total_us = started.elapsed().as_micros() as u64;
                Response::Optimized {
                    outcome,
                    cache: if use_cache {
                        CacheOutcome::Miss
                    } else {
                        CacheOutcome::Bypass
                    },
                    timings,
                }
            }
            Ok(Err(error_response)) => error_response,
            Err(RecvTimeoutError::Timeout) => {
                self.inner.stats.record_timeout();
                Response::error(
                    ErrorKind::Timeout,
                    format!("request exceeded its {timeout_ms} ms budget"),
                )
            }
            Err(RecvTimeoutError::Disconnected) => {
                Response::error(ErrorKind::Panic, "worker disappeared mid-request")
            }
        }
    }

    /// Parse + optimize one unit on the current (worker) thread, with panic
    /// isolation. Returns the outcome or a ready-made error response.
    fn compute(&self, req: &OptimizeRequest) -> Result<(OptimizeOutcome, Timings), Response> {
        let jobs = req.jobs.unwrap_or(self.inner.config.jobs);
        let mut request_span = Span::enter(&self.inner.obs.recorder, "request", "optimize");
        request_span.arg("bytes", req.asm.len());
        let attempt = catch_unwind(AssertUnwindSafe(
            || -> Result<(OptimizeOutcome, Timings), Response> {
                let t0 = Instant::now();
                let mut unit = MaoUnit::parse(&req.asm)
                    .map_err(|e| Response::error(ErrorKind::Parse, e.to_string()))?;
                let parse_us = t0.elapsed().as_micros() as u64;
                let invocations = parse_invocations(&req.passes)
                    .map_err(|e| Response::error(ErrorKind::BadRequest, e.to_string()))?;
                let t1 = Instant::now();
                let report = run_pipeline_observed(
                    &mut unit,
                    &invocations,
                    None,
                    &PipelineConfig { jobs },
                    &self.inner.analyses,
                    &self.inner.obs,
                )
                .map_err(|e| Response::error(ErrorKind::Pass, e.to_string()))?;
                let optimize_us = t1.elapsed().as_micros() as u64;
                self.inner.stats.record_pass_timings(&report.timings_us);
                Ok((
                    OptimizeOutcome {
                        asm: unit.emit(),
                        passes: report
                            .passes
                            .iter()
                            .map(|(name, stats)| {
                                (name.clone(), stats.transformations, stats.matches)
                            })
                            .collect(),
                        timings_us: report.timings_us,
                        trace: report.trace,
                    },
                    Timings {
                        parse_us,
                        optimize_us,
                        total_us: 0,
                    },
                ))
            },
        ));
        match attempt {
            Ok(inner) => inner,
            Err(panic) => {
                self.inner.stats.record_panic();
                // Anything the panicking pass half-built in the shared
                // analysis cache is suspect; drop it all.
                self.inner.analyses.clear();
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(Response::error(
                    ErrorKind::Panic,
                    format!("pass panicked: {message}"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "\t.type\tf, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L1\n\taddl $3, %eax\n\taddl $4, %eax\n.L1:\n\tret\n";

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        })
    }

    fn optimize(asm: &str, passes: &str) -> Request {
        Request::Optimize(OptimizeRequest {
            asm: asm.into(),
            passes: passes.into(),
            jobs: None,
            timeout_ms: None,
            use_cache: true,
        })
    }

    #[test]
    fn optimize_matches_direct_pipeline() {
        let engine = engine();
        let response = engine.handle(optimize(INPUT, "REDTEST:ADDADD"));
        let Response::Optimized { outcome, cache, .. } = response else {
            panic!("expected success");
        };
        assert_eq!(cache, CacheOutcome::Miss);
        let mut unit = MaoUnit::parse(INPUT).unwrap();
        let invs = parse_invocations("REDTEST:ADDADD").unwrap();
        mao::pass::run_pipeline(&mut unit, &invs, None).unwrap();
        assert_eq!(
            outcome.asm,
            unit.emit(),
            "service output must be byte-identical"
        );
        assert!(outcome.total_transformations() > 0);
    }

    #[test]
    fn repeat_request_hits_cache() {
        let engine = engine();
        let first = engine.handle(optimize(INPUT, "REDTEST"));
        let second = engine.handle(optimize(INPUT, "REDTEST"));
        let (
            Response::Optimized { outcome: a, .. },
            Response::Optimized {
                outcome: b, cache, ..
            },
        ) = (first, second)
        else {
            panic!("both must succeed");
        };
        assert_eq!(cache, CacheOutcome::Hit);
        assert_eq!(a.asm, b.asm);
        assert!(b.trace.is_empty(), "cached responses carry no fresh trace");
    }

    #[test]
    fn panic_is_isolated_and_service_continues() {
        let engine = engine();
        let boom = engine.handle(optimize("nop\n", "PANIC"));
        match boom {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Panic);
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
        // The daemon (and its workers) keep serving.
        let next = engine.handle(optimize(INPUT, "REDTEST"));
        assert!(matches!(next, Response::Optimized { .. }));
    }

    #[test]
    fn timeout_returns_structured_error() {
        let engine = engine();
        let response = engine.handle(Request::Optimize(OptimizeRequest {
            asm: "nop\n".into(),
            passes: "PANIC=sleep_ms[2000],func[nosuch]".into(),
            jobs: None,
            timeout_ms: Some(50),
            use_cache: false,
        }));
        match response {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn oversized_request_rejected() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            max_request_bytes: 16,
            ..EngineConfig::default()
        });
        let response = engine.handle(optimize("nop\n; this is way beyond sixteen bytes\n", ""));
        match response {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::TooLarge),
            other => panic!("expected too_large, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_drains() {
        let engine = engine();
        assert!(matches!(
            engine.handle(Request::Shutdown),
            Response::ShutdownAck
        ));
        let refused = engine.handle(optimize(INPUT, "REDTEST"));
        match refused {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ShuttingDown),
            other => panic!("expected shutting_down, got {other:?}"),
        }
    }

    #[test]
    fn stats_snapshot_tracks_requests() {
        let engine = engine();
        let _ = engine.handle(optimize(INPUT, "REDTEST"));
        let _ = engine.handle(optimize(INPUT, "REDTEST")); // cache hit
        let Response::Stats(snap) = engine.handle(Request::Stats) else {
            panic!("expected stats");
        };
        let requests = snap.get("requests").unwrap();
        assert_eq!(requests.get("ok").unwrap().as_u64(), Some(2));
        let cache = snap.get("result_cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(
            snap.get("schema_version").unwrap().as_u64(),
            Some(crate::stats::STATS_SCHEMA_VERSION)
        );
        // The aggregating recorder folded per-request and per-pass spans.
        let spans = snap.get("spans").unwrap().as_arr().unwrap();
        let request_total = spans
            .iter()
            .find(|s| s.get("cat").unwrap().as_str() == Some("request"))
            .expect("request span total present");
        assert_eq!(request_total.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_request_renders_prometheus_text() {
        let engine = engine();
        let _ = engine.handle(optimize(INPUT, "REDTEST"));
        let Response::Metrics(text) = engine.handle(Request::Metrics) else {
            panic!("expected metrics");
        };
        mao::obs::prom::validate(&text).expect("exposition text validates");
        assert!(text.contains("# TYPE mao_requests_total counter"), "{text}");
        assert!(text.contains("mao_uptime_seconds"), "{text}");
    }

    #[test]
    fn parse_error_carries_line_and_text() {
        let engine = engine();
        let response = engine.handle(optimize("nop\nfrobnicate %eax\n", ""));
        match response {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Parse);
                assert!(message.contains("line 2"), "{message}");
                assert!(message.contains("frobnicate"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
