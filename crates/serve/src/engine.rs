//! The request engine: caching, admission, sharded dispatch, isolation.
//!
//! [`Engine`] is the transport-independent core of `maod`. The event-driven
//! socket server, the stdin/stdout batch mode, and the tests all feed it
//! [`Request`]s and receive [`Response`]s. Four layers wrap every optimize
//! request:
//!
//! 1. **Caching** — a content-addressed tiered [`ResultCache`] keyed by
//!    `hash(asm, passes)`: memory hits skip everything, disk hits re-read a
//!    verified entry from the persistent store (so restarts begin warm) and
//!    promote it to memory. Below it, each *shard* owns a private
//!    [`mao::AnalysisCache`], so a repeated function body skips
//!    CFG/dataflow construction even when the whole-request cache misses —
//!    without any cross-shard lock contention.
//! 2. **Admission control** — compute work enters a bounded pending set.
//!    Past the configured high-water mark the engine sheds load with an
//!    explicit [`ErrorKind::Busy`] response instead of queueing without
//!    bound; `offered = accepted + shed` always reconciles, so nothing is
//!    dropped silently.
//! 3. **Robustness** — requests run on the shard pool under
//!    `catch_unwind`; a panicking pass yields a structured `panic` error
//!    (and flushes only that shard's analysis cache) while the daemon
//!    keeps serving. Each request has a wall-clock budget; on expiry the
//!    caller gets a `timeout` error and the abandoned computation finishes
//!    in the background — if it succeeds, its result still lands in the
//!    cache for next time. Oversized inputs are rejected up front.
//! 4. **Observability** — the engine owns an aggregating [`Obs`] bundle:
//!    every request is a span, queue-wait and service time feed
//!    histograms, every cache mirrors its counters into the registry
//!    (per-shard analysis caches as `{shard="N"}` series), and the
//!    pipeline runs under [`run_pipeline_observed`]. The `stats` request
//!    renders a consolidated [`StatsSnapshot`]; the `metrics` request
//!    renders the registry as Prometheus text.
//!
//! Dispatch is asynchronous at the core: [`Engine::handle_async`] answers
//! inline where it can (admin, cache hits, rejections) and otherwise
//! enqueues the request on its content-hash shard, returning a [`Ticket`]
//! the transport uses to enforce the deadline. The synchronous
//! [`Engine::handle`] used by batch mode and tests is a thin wrapper that
//! parks on a channel.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mao::isa::IsaId;
use mao::obs::{Histogram, Obs, PromText, Span, US_BUCKETS};
use mao::pass::{parse_invocations, run_pipeline_observed, PipelineConfig};
use mao::{CacheStats, MaoUnit};

use crate::disk_cache::{DiskCache, DiskCacheConfig};
use crate::layout_disk::DiskLayoutStore;
use crate::pool::{ShardCtx, ShardPool};
use crate::protocol::{
    CacheOutcome, ErrorKind, OptimizeOutcome, OptimizeRequest, Request, Response, Timings,
    DEFAULT_MAX_REQUEST_BYTES, DEFAULT_TIMEOUT_MS,
};
use crate::result_cache::{request_key, CacheTier, ResultCache};
use crate::snapshot_store::SnapshotStore;
use crate::stats::{FrontendStats, ServerStats, ShardStats, StatsSnapshot};

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker shards, each owning its own analysis cache (0 = one per
    /// available core). Requests are partitioned by content hash.
    pub shards: usize,
    /// Default `--jobs` for function-level passes inside one request
    /// (0 = auto). The per-request `options.jobs` overrides it.
    pub jobs: usize,
    /// Default per-request wall-clock budget in milliseconds (0 = none).
    pub timeout_ms: u64,
    /// Result-cache memory-tier capacity in entries (0 = unbounded).
    pub result_cache_capacity: usize,
    /// Per-shard analysis-cache capacity in functions (0 = unbounded).
    pub analysis_cache_capacity: usize,
    /// Maximum request size in bytes (frames and batch lines).
    pub max_request_bytes: usize,
    /// Admission-control high-water mark: compute requests pending (queued
    /// or in service) beyond which new arrivals are shed with `BUSY`
    /// (0 = unbounded).
    pub max_pending: usize,
    /// Persistent result-cache directory (None = memory tier only).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Persistent-tier byte budget (0 = unbounded).
    pub cache_max_bytes: u64,
    /// fsync persistent-tier writes.
    pub cache_fsync: bool,
    /// Close connections idle longer than this, in milliseconds
    /// (0 = never; used by the socket transport, carried here so every
    /// front end shares one config).
    pub idle_timeout_ms: u64,
    /// Persistent front-end snapshot directory: parsed units are stored as
    /// binary IR snapshots keyed by input content hash, so repeated inputs
    /// skip text parsing entirely (None = parse every request).
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Snapshot-store byte budget (0 = unbounded).
    pub snapshot_max_bytes: u64,
    /// `.mpt` cost table to install as the process-global cost model before
    /// any pipeline runs (None = keep the builtin hand-set table). A table
    /// that fails to load — corrupt, truncated, version-skewed — is a
    /// startup error: the daemon refuses to serve rather than silently
    /// planning with different numbers than the operator asked for.
    pub cost_model: Option<std::path::PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            shards: 0,
            jobs: 1,
            timeout_ms: DEFAULT_TIMEOUT_MS,
            result_cache_capacity: 1024,
            analysis_cache_capacity: 4096,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            max_pending: 256,
            cache_dir: None,
            cache_max_bytes: 0,
            cache_fsync: false,
            idle_timeout_ms: 300_000,
            snapshot_dir: None,
            snapshot_max_bytes: 0,
            cost_model: None,
        }
    }
}

/// A dispatched request's deadline handle. The transport that owns the
/// response path calls [`Engine::expire`] with it when the deadline
/// passes; whichever side (worker completion or expiry) flips the
/// `answered` flag first wins, so the requester sees exactly one response.
pub struct Ticket {
    answered: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Ticket {
    /// When this request times out (None = no budget).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// The exactly-once response path for one dispatched request. Delivery
/// closes the request's accounting; if the responder is dropped without
/// delivering (a job discarded during pool shutdown), it reports the
/// failure instead of leaving the requester hanging.
struct Responder {
    answered: Arc<AtomicBool>,
    stats_ok_closed: bool,
    engine: Engine,
    respond: Option<Box<dyn FnOnce(Response) + Send>>,
}

impl Responder {
    fn deliver(mut self, response: Response) {
        if self.answered.swap(true, Ordering::SeqCst) {
            // Expired (or otherwise answered) first; the computation's
            // side effects (cache population) are still valuable, but the
            // requester has already been told.
            self.respond = None;
            return;
        }
        self.close_stats(matches!(response, Response::Optimized { .. }));
        if let Some(respond) = self.respond.take() {
            respond(response);
        }
    }

    fn close_stats(&mut self, ok: bool) {
        if !self.stats_ok_closed {
            self.stats_ok_closed = true;
            self.engine.inner.stats.end_request(ok);
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if let Some(respond) = self.respond.take() {
            if !self.answered.swap(true, Ordering::SeqCst) {
                self.close_stats(false);
                respond(Response::error(
                    ErrorKind::ShuttingDown,
                    "request dropped during shutdown",
                ));
            }
        }
    }
}

struct EngineInner {
    config: EngineConfig,
    shards: usize,
    pool: ShardPool,
    results: ResultCache,
    /// Front-end snapshot tier (None = parse every request).
    snapshots: Option<SnapshotStore>,
    /// Persistent layout tier handle, kept for stats (the shards hold their
    /// own `Arc` via `AnalysisCache::set_layout_store`).
    layouts: Option<Arc<DiskLayoutStore>>,
    /// `mao_frontend_snapshot_{hits,misses}_total`.
    snapshot_hits: mao::obs::Counter,
    snapshot_misses: mao::obs::Counter,
    /// Cumulative text-parse wall time across requests, microseconds.
    parse_us_total: AtomicU64,
    stats: ServerStats,
    obs: Obs,
    queue_wait_us: Histogram,
    service_us: Histogram,
    /// Compute requests admitted but not yet finished (admission gauge).
    pending: AtomicU64,
    /// Per-shard served-request counters (`mao_shard_requests_total`).
    shard_requests: Vec<mao::obs::Counter>,
    shutting_down: AtomicBool,
}

/// The shared request engine (cheaply cloneable handle).
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Build an engine and spawn its shard pool. Panics if the persistent
    /// cache directory cannot be opened — use [`Engine::build`] for a
    /// recoverable error.
    pub fn new(config: EngineConfig) -> Engine {
        Engine::build(config).expect("engine construction failed")
    }

    /// Build an engine, reporting persistent-cache setup failures.
    pub fn build(config: EngineConfig) -> Result<Engine, String> {
        let shards = if config.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.shards
        };
        let obs = Obs::aggregating();
        // Install the measured cost table before any shard can run a pass:
        // a table the loader rejects must never reach the provider.
        if let Some(path) = &config.cost_model {
            let model = mao_x86::cost::CostModel::load_mpt(path)
                .map_err(|e| format!("cannot load cost model {}: {e}", path.display()))?;
            mao_x86::cost::install(Arc::new(model));
        }
        // Info-style series: value 1, provenance in the labels, so a scrape
        // can alert when a daemon is not planning with the expected table.
        let model = mao_x86::cost::current();
        let fingerprint = format!("{:016x}", model.fingerprint());
        obs.metrics
            .counter_with(
                "mao_cost_model_info",
                &[
                    ("name", model.name.as_str()),
                    ("source", model.provenance.source.as_str()),
                    ("fingerprint", fingerprint.as_str()),
                ],
            )
            .inc();
        let disk = match &config.cache_dir {
            Some(dir) => Some(
                DiskCache::open(DiskCacheConfig {
                    dir: dir.clone(),
                    max_bytes: config.cache_max_bytes,
                    fsync: config.cache_fsync,
                })
                .map_err(|e| format!("cannot open cache dir {}: {e}", dir.display()))?,
            ),
            None => None,
        };
        let results = ResultCache::with_disk(config.result_cache_capacity, disk);
        results.attach_metrics(&obs.metrics);
        // The layout tier rides along with the result cache directory:
        // solved branch-relaxation layouts persist under `<cache_dir>/layout`
        // so restarts skip fixpoint solves the way they skip whole requests.
        let layouts = match &config.cache_dir {
            Some(dir) => {
                let store = DiskLayoutStore::open_dir(dir.join("layout"), config.cache_max_bytes)
                    .map_err(|e| {
                    format!(
                        "cannot open layout dir {}: {e}",
                        dir.join("layout").display()
                    )
                })?;
                store.attach_metrics(&obs.metrics);
                Some(Arc::new(store))
            }
            None => None,
        };
        let snapshots = match &config.snapshot_dir {
            Some(dir) => {
                let store = SnapshotStore::open(dir, config.snapshot_max_bytes)
                    .map_err(|e| format!("cannot open snapshot dir {}: {e}", dir.display()))?;
                store.attach_metrics(&obs.metrics);
                Some(store)
            }
            None => None,
        };
        let pool = ShardPool::new(shards, config.analysis_cache_capacity);
        let mut shard_requests = Vec::with_capacity(shards);
        for shard in 0..shards {
            let label = shard.to_string();
            pool.ctx(shard)
                .analyses
                .attach_metrics_labeled(&obs.metrics, &[("shard", &label)]);
            if let Some(layouts) = &layouts {
                pool.ctx(shard)
                    .analyses
                    .set_layout_store(layouts.clone() as Arc<dyn mao::LayoutStore>);
            }
            shard_requests.push(
                obs.metrics
                    .counter_with("mao_shard_requests_total", &[("shard", &label)]),
            );
        }
        Ok(Engine {
            inner: Arc::new(EngineInner {
                shards,
                pool,
                results,
                snapshots,
                layouts,
                snapshot_hits: obs.metrics.counter("mao_frontend_snapshot_hits_total"),
                snapshot_misses: obs.metrics.counter("mao_frontend_snapshot_misses_total"),
                parse_us_total: AtomicU64::new(0),
                stats: ServerStats::new(&obs.metrics),
                queue_wait_us: obs
                    .metrics
                    .histogram("mao_request_queue_wait_us", US_BUCKETS),
                service_us: obs.metrics.histogram("mao_request_service_us", US_BUCKETS),
                obs,
                pending: AtomicU64::new(0),
                shard_requests,
                shutting_down: AtomicBool::new(false),
                config,
            }),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.inner.shards
    }

    /// Service counters (shared with the transport layer).
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// Compute requests currently admitted (queued or in service) — the
    /// admission-control gauge.
    pub fn pending(&self) -> u64 {
        self.inner.pending.load(Ordering::SeqCst)
    }

    /// Consolidated point-in-time view of the whole service: request and
    /// admission counters, result-cache tiers, per-shard analysis caches,
    /// relaxation totals, pass timings, and span totals — the one source
    /// for the `stats` response, benchmarks, and tests.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut aggregate = CacheStats::default();
        let mut per_shard = Vec::with_capacity(self.inner.shards);
        for shard in 0..self.inner.shards {
            let analyses = self.inner.pool.ctx(shard).analyses.stats();
            aggregate.hits += analyses.hits;
            aggregate.misses += analyses.misses;
            aggregate.evictions += analyses.evictions;
            aggregate.layout_hits += analyses.layout_hits;
            aggregate.layout_misses += analyses.layout_misses;
            aggregate.layout_disk_hits += analyses.layout_disk_hits;
            aggregate.layout_disk_misses += analyses.layout_disk_misses;
            per_shard.push(ShardStats {
                shard,
                requests: self.inner.shard_requests[shard].get(),
                analysis_cache: analyses,
            });
        }
        let (interner_symbols, interner_bytes) = mao_asm::Sym::stats();
        let (snapshot_bytes, snapshot_entries) = self
            .inner
            .snapshots
            .as_ref()
            .map(|s| {
                let stats = s.stats();
                (stats.bytes, stats.entries)
            })
            .unwrap_or((0, 0));
        let frontend = FrontendStats {
            parse_us: self.inner.parse_us_total.load(Ordering::Relaxed),
            snapshot_hits: self.inner.snapshot_hits.get(),
            snapshot_misses: self.inner.snapshot_misses.get(),
            snapshot_bytes,
            snapshot_entries,
            interner_symbols: interner_symbols as u64,
            interner_bytes: interner_bytes as u64,
        };
        self.inner.stats.snapshot(
            self.inner.results.stats(),
            aggregate,
            per_shard,
            self.pending(),
            mao::relax_totals(),
            self.inner.obs.recorder.totals(),
            frontend,
        )
    }

    /// Render the metrics registry (plus scrape-time gauges and the
    /// process-wide relaxation totals) as Prometheus text exposition.
    pub fn metrics_text(&self) -> String {
        let mut out = PromText::new();
        self.inner.obs.metrics.render_into(&mut out);
        let relax = mao::relax_totals();
        for (family, value) in [
            ("mao_relax_layouts_total", relax.layouts),
            ("mao_relax_patches_total", relax.patches),
            ("mao_relax_iterations_total", relax.iterations),
            ("mao_relax_rechecks_total", relax.rechecks),
            ("mao_relax_fragments_total", relax.fragments),
        ] {
            out.counter_family(family, &[(&[][..], value)]);
        }
        out.gauge("mao_uptime_seconds", self.inner.stats.uptime_s());
        out.gauge("mao_requests_in_flight", self.inner.stats.in_flight());
        out.gauge("mao_requests_pending", self.pending());
        out.gauge("mao_result_cache_len", self.inner.results.len());
        if let Some(disk) = self.inner.results.disk() {
            let d = disk.stats();
            out.gauge("mao_result_cache_disk_bytes", d.bytes);
            out.gauge("mao_result_cache_disk_entries", d.entries);
        }
        if let Some(layouts) = &self.inner.layouts {
            let l = layouts.stats();
            out.gauge("mao_layout_store_disk_bytes", l.bytes);
            out.gauge("mao_layout_store_disk_entries", l.entries);
        }
        if let Some(snapshots) = &self.inner.snapshots {
            let s = snapshots.stats();
            out.gauge("mao_frontend_snapshot_store_bytes", s.bytes);
            out.gauge("mao_frontend_snapshot_store_entries", s.entries);
        }
        let (symbols, bytes) = mao_asm::Sym::stats();
        out.gauge("mao_frontend_interner_symbols", symbols as u64);
        out.gauge("mao_frontend_interner_bytes", bytes as u64);
        out.finish()
    }

    /// Has a shutdown been requested (SIGTERM or `shutdown` request)?
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Begin draining: refuse new optimize work.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Close the worker pool after queued jobs finish.
    pub fn join_workers(&self) {
        self.inner.pool.shutdown();
    }

    /// Serve one request synchronously. Batch mode and tests use this; the
    /// socket transport uses [`Engine::handle_async`] so the event loop
    /// never blocks on compute.
    pub fn handle(&self, request: Request) -> Response {
        let (tx, rx) = sync_channel::<Response>(1);
        let ticket = self.handle_async(request, move |response| {
            let _ = tx.send(response);
        });
        match ticket {
            None => rx
                .recv()
                .expect("inline responses are delivered before handle_async returns"),
            Some(ticket) => {
                let result = match ticket.deadline() {
                    None => rx.recv().map_err(|_| ()),
                    Some(deadline) => {
                        let budget = deadline.saturating_duration_since(Instant::now());
                        rx.recv_timeout(budget).map_err(|_| ())
                    }
                };
                match result {
                    Ok(response) => response,
                    Err(()) => match self.expire(&ticket) {
                        Some(timeout_response) => timeout_response,
                        // The worker answered in the race window (or the
                        // job was dropped at shutdown and the Responder
                        // reported it); the channel has the response.
                        None => rx.recv().unwrap_or_else(|_| {
                            Response::error(ErrorKind::Panic, "worker disappeared mid-request")
                        }),
                    },
                }
            }
        }
    }

    /// Serve one request, delivering the response through `respond`
    /// exactly once — inline (admin, cache hits, rejections, sheds) or
    /// later from a shard worker. Returns a [`Ticket`] when the request
    /// was dispatched to a shard; the caller owns deadline enforcement via
    /// [`Engine::expire`].
    pub fn handle_async(
        &self,
        request: Request,
        respond: impl FnOnce(Response) + Send + 'static,
    ) -> Option<Ticket> {
        match request {
            Request::Optimize(req) => self.optimize_async(req, Box::new(respond)),
            Request::Stats => {
                self.inner.stats.record_admin();
                respond(Response::Stats(self.snapshot().to_json()));
                None
            }
            Request::Metrics => {
                self.inner.stats.record_admin();
                respond(Response::Metrics(self.metrics_text()));
                None
            }
            Request::Ping => {
                self.inner.stats.record_admin();
                respond(Response::Pong);
                None
            }
            Request::Shutdown => {
                self.inner.stats.record_admin();
                self.begin_shutdown();
                respond(Response::ShutdownAck);
                None
            }
        }
    }

    /// A dispatched request's deadline passed: claim the response slot. On
    /// a win, returns the timeout error (recorded in the counters) for the
    /// caller to deliver; `None` means the worker answered first and there
    /// is nothing to do.
    pub fn expire(&self, ticket: &Ticket) -> Option<Response> {
        if ticket.answered.swap(true, Ordering::SeqCst) {
            return None;
        }
        self.inner.stats.record_timeout();
        self.inner.stats.end_request(false);
        Some(Response::error(
            ErrorKind::Timeout,
            "request exceeded its wall-clock budget",
        ))
    }

    /// Serve one optimize request (cache → admission → shard → respond).
    fn optimize_async(
        &self,
        req: OptimizeRequest,
        respond: Box<dyn FnOnce(Response) + Send>,
    ) -> Option<Ticket> {
        if self.is_shutting_down() {
            respond(Response::error(
                ErrorKind::ShuttingDown,
                "server is draining",
            ));
            return None;
        }
        if req.asm.len() > self.inner.config.max_request_bytes {
            respond(Response::error(
                ErrorKind::TooLarge,
                format!(
                    "request of {} bytes exceeds the {}-byte limit",
                    req.asm.len(),
                    self.inner.config.max_request_bytes
                ),
            ));
            return None;
        }

        self.inner.stats.begin_request();
        let started = Instant::now();
        let answered = Arc::new(AtomicBool::new(false));
        let responder = Responder {
            answered: answered.clone(),
            stats_ok_closed: false,
            engine: self.clone(),
            respond: Some(respond),
        };

        self.inner.stats.record_isa(req.isa);
        let key = request_key(&req.asm, &req.passes, req.isa);
        if req.use_cache {
            if let Some((cached, tier)) = self.inner.results.get(key) {
                // Serve the stored result verbatim except for the trace:
                // an empty trace is the visible proof that nothing re-ran.
                let mut outcome = (*cached).clone();
                outcome.trace.clear();
                responder.deliver(Response::Optimized {
                    outcome,
                    cache: match tier {
                        CacheTier::Memory => CacheOutcome::Hit,
                        CacheTier::Disk => CacheOutcome::DiskHit,
                    },
                    timings: Timings {
                        parse_us: 0,
                        optimize_us: 0,
                        total_us: started.elapsed().as_micros() as u64,
                    },
                });
                return None;
            }
        }

        // Admission control: a bounded pending set. `offered` counts every
        // compute attempt; `accepted + shed == offered` reconciles exactly,
        // so shed load is visible, never silent.
        self.inner.stats.record_offered();
        let max_pending = self.inner.config.max_pending;
        let pending_now = self.inner.pending.fetch_add(1, Ordering::SeqCst) + 1;
        if max_pending > 0 && pending_now as usize > max_pending {
            self.inner.pending.fetch_sub(1, Ordering::SeqCst);
            self.inner.stats.record_shed();
            responder.deliver(Response::error(
                ErrorKind::Busy,
                format!(
                    "{} requests already pending (high-water mark {max_pending}); \
                     retry after a backoff",
                    pending_now - 1
                ),
            ));
            return None;
        }
        self.inner.stats.record_accepted();

        let timeout_ms = req.timeout_ms.unwrap_or(self.inner.config.timeout_ms);
        let deadline = if timeout_ms == 0 {
            None
        } else {
            Some(Instant::now() + Duration::from_millis(timeout_ms))
        };
        let ticket = Ticket { answered, deadline };

        let engine = self.clone();
        let use_cache = req.use_cache;
        let submitted_at = Instant::now();
        let shard = key.shard(self.inner.shards);
        let job = Box::new(move |ctx: &ShardCtx| {
            let inner = &engine.inner;
            inner.pending.fetch_sub(1, Ordering::SeqCst);
            inner.shard_requests[ctx.index].inc();
            inner
                .queue_wait_us
                .observe(submitted_at.elapsed().as_micros() as u64);
            let serviced_at = Instant::now();
            let result = engine.compute(&req, ctx);
            inner
                .service_us
                .observe(serviced_at.elapsed().as_micros() as u64);
            if let Ok((outcome, _)) = &result {
                // Even if the requester has timed out and gone, the work is
                // done — cache it so the retry is free.
                if use_cache {
                    inner.results.insert(
                        request_key(&req.asm, &req.passes, req.isa),
                        Arc::new(outcome.clone()),
                    );
                }
            }
            let response = match result {
                Ok((outcome, mut timings)) => {
                    timings.total_us = started.elapsed().as_micros() as u64;
                    Response::Optimized {
                        outcome,
                        cache: if use_cache {
                            CacheOutcome::Miss
                        } else {
                            CacheOutcome::Bypass
                        },
                        timings,
                    }
                }
                Err(error_response) => error_response,
            };
            responder.deliver(response);
        });
        if self.inner.pool.submit(shard, job).is_err() {
            // Shutdown raced us: the job (and its Responder) was dropped,
            // which already delivered a shutting-down error and settled the
            // pending counter is ours to fix.
            self.inner.pending.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(ticket)
    }

    /// The request front end: produce a [`MaoUnit`] from request text,
    /// preferring a stored binary IR snapshot (keyed by input content hash)
    /// over text parsing when a snapshot store is configured. Misses parse
    /// — in parallel when `jobs > 1` — and backfill the store, so the next
    /// request carrying the same bytes skips the parser entirely.
    fn front_end(&self, asm: &str, jobs: usize, isa: IsaId) -> Result<MaoUnit, Response> {
        let inner = &self.inner;
        let key = match &inner.snapshots {
            Some(snapshots) => {
                // The ISA folds into the store key: the same text parsed
                // under different dialects yields different entry lists.
                let key = SnapshotStore::key_of(asm) ^ (u128::from(isa.tag()) << 120);
                let mut span = Span::enter(&inner.obs.recorder, "frontend", "snapshot_load");
                if let Some(entries) = snapshots.load_key(key) {
                    span.arg("entries", entries.len());
                    inner.snapshot_hits.inc();
                    return Ok(MaoUnit::from_entries_isa(entries, isa));
                }
                inner.snapshot_misses.inc();
                Some(key)
            }
            None => None,
        };
        let t0 = Instant::now();
        let unit = {
            let mut span = Span::enter(&inner.obs.recorder, "frontend", "parse");
            span.arg("bytes", asm.len());
            MaoUnit::parse_with_jobs_isa(asm, jobs, isa)
                .map_err(|e| Response::error(ErrorKind::Parse, e.to_string()))?
        };
        inner
            .parse_us_total
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        if let (Some(snapshots), Some(key)) = (&inner.snapshots, key) {
            snapshots.put(key, unit.entries());
        }
        Ok(unit)
    }

    /// Parse + optimize one unit on the current (shard) thread, with panic
    /// isolation. Returns the outcome or a ready-made error response.
    fn compute(
        &self,
        req: &OptimizeRequest,
        ctx: &ShardCtx,
    ) -> Result<(OptimizeOutcome, Timings), Response> {
        let jobs = req.jobs.unwrap_or(self.inner.config.jobs);
        let mut request_span = Span::enter(&self.inner.obs.recorder, "request", "optimize");
        request_span.arg("bytes", req.asm.len());
        let attempt = catch_unwind(AssertUnwindSafe(
            || -> Result<(OptimizeOutcome, Timings), Response> {
                let t0 = Instant::now();
                let mut unit = self.front_end(&req.asm, jobs, req.isa)?;
                let parse_us = t0.elapsed().as_micros() as u64;
                let invocations = parse_invocations(&req.passes)
                    .map_err(|e| Response::error(ErrorKind::BadRequest, e.to_string()))?;
                let t1 = Instant::now();
                let report = run_pipeline_observed(
                    &mut unit,
                    &invocations,
                    None,
                    &PipelineConfig { jobs },
                    &ctx.analyses,
                    &self.inner.obs,
                )
                .map_err(|e| Response::error(ErrorKind::Pass, e.to_string()))?;
                let optimize_us = t1.elapsed().as_micros() as u64;
                self.inner.stats.record_pass_timings(&report.timings_us);
                Ok((
                    OptimizeOutcome {
                        asm: unit.emit(),
                        passes: report
                            .passes
                            .iter()
                            .map(|(name, stats)| {
                                (name.clone(), stats.transformations, stats.matches)
                            })
                            .collect(),
                        timings_us: report.timings_us,
                        trace: report.trace,
                    },
                    Timings {
                        parse_us,
                        optimize_us,
                        total_us: 0,
                    },
                ))
            },
        ));
        match attempt {
            Ok(inner) => inner,
            Err(panic) => {
                self.inner.stats.record_panic();
                // Anything the panicking pass half-built in this shard's
                // analysis cache is suspect; drop it. Other shards are
                // untouched — that is the point of sharding.
                ctx.analyses.clear();
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(Response::error(
                    ErrorKind::Panic,
                    format!("pass panicked: {message}"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "\t.type\tf, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L1\n\taddl $3, %eax\n\taddl $4, %eax\n.L1:\n\tret\n";

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        })
    }

    fn optimize(asm: &str, passes: &str) -> Request {
        Request::Optimize(OptimizeRequest {
            asm: asm.into(),
            passes: passes.into(),
            jobs: None,
            timeout_ms: None,
            use_cache: true,
            isa: mao::isa::IsaId::X86_64,
        })
    }

    #[test]
    fn optimize_matches_direct_pipeline() {
        let engine = engine();
        let response = engine.handle(optimize(INPUT, "REDTEST:ADDADD"));
        let Response::Optimized { outcome, cache, .. } = response else {
            panic!("expected success");
        };
        assert_eq!(cache, CacheOutcome::Miss);
        let mut unit = MaoUnit::parse(INPUT).unwrap();
        let invs = parse_invocations("REDTEST:ADDADD").unwrap();
        mao::pass::run_pipeline(&mut unit, &invs, None).unwrap();
        assert_eq!(
            outcome.asm,
            unit.emit(),
            "service output must be byte-identical"
        );
        assert!(outcome.total_transformations() > 0);
    }

    #[test]
    fn repeat_request_hits_cache() {
        let engine = engine();
        let first = engine.handle(optimize(INPUT, "REDTEST"));
        let second = engine.handle(optimize(INPUT, "REDTEST"));
        let (
            Response::Optimized { outcome: a, .. },
            Response::Optimized {
                outcome: b, cache, ..
            },
        ) = (first, second)
        else {
            panic!("both must succeed");
        };
        assert_eq!(cache, CacheOutcome::Hit);
        assert_eq!(a.asm, b.asm);
        assert!(b.trace.is_empty(), "cached responses carry no fresh trace");
    }

    #[test]
    fn panic_is_isolated_and_service_continues() {
        let engine = engine();
        let boom = engine.handle(optimize("nop\n", "PANIC"));
        match boom {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Panic);
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
        // The daemon (and its shards) keep serving.
        let next = engine.handle(optimize(INPUT, "REDTEST"));
        assert!(matches!(next, Response::Optimized { .. }));
    }

    #[test]
    fn timeout_returns_structured_error() {
        let engine = engine();
        let response = engine.handle(Request::Optimize(OptimizeRequest {
            asm: "nop\n".into(),
            passes: "PANIC=sleep_ms[2000],func[nosuch]".into(),
            jobs: None,
            timeout_ms: Some(50),
            use_cache: false,
            isa: mao::isa::IsaId::X86_64,
        }));
        match response {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn oversized_request_rejected() {
        let engine = Engine::new(EngineConfig {
            shards: 1,
            max_request_bytes: 16,
            ..EngineConfig::default()
        });
        let response = engine.handle(optimize("nop\n; this is way beyond sixteen bytes\n", ""));
        match response {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::TooLarge),
            other => panic!("expected too_large, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_drains() {
        let engine = engine();
        assert!(matches!(
            engine.handle(Request::Shutdown),
            Response::ShutdownAck
        ));
        let refused = engine.handle(optimize(INPUT, "REDTEST"));
        match refused {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ShuttingDown),
            other => panic!("expected shutting_down, got {other:?}"),
        }
    }

    #[test]
    fn same_key_same_shard_distinct_keys_spread() {
        let k1 = request_key(INPUT, "REDTEST", mao::isa::IsaId::X86_64);
        assert_eq!(k1.shard(4), k1.shard(4), "deterministic");
        // With enough distinct keys, more than one shard is used.
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|i| {
                request_key(
                    &format!("{INPUT}# {i}\n"),
                    "REDTEST",
                    mao::isa::IsaId::X86_64,
                )
                .shard(4)
            })
            .collect();
        assert!(hit.len() > 1, "content hashing spreads shards: {hit:?}");
    }

    #[test]
    fn per_request_isa_selects_the_aarch64_pipeline() {
        let engine = engine();
        let a64 = "\t.type\tf, @function\nf:\n\tnop\n\tadd x0, x0, #1\n\tret\n";
        let request = |passes: &str| {
            Request::Optimize(OptimizeRequest {
                asm: a64.to_string(),
                passes: passes.into(),
                jobs: None,
                timeout_ms: None,
                use_cache: true,
                isa: mao::isa::IsaId::Aarch64,
            })
        };
        // An ISA-neutral pass runs and the emitted text is aarch64 syntax.
        let Response::Optimized { outcome, .. } = engine.handle(request("NOPKILL")) else {
            panic!("expected aarch64 optimize to succeed");
        };
        assert!(
            !outcome.asm.contains("\tnop"),
            "nop removed: {}",
            outcome.asm
        );
        assert!(outcome.asm.contains("add\tx0, x0, #1"), "{}", outcome.asm);
        // An x86-only pass is a structured pass error, not a panic.
        match engine.handle(request("SCHED")) {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Pass);
                assert!(message.contains("aarch64"), "{message}");
            }
            other => panic!("expected pass error, got {other:?}"),
        }
        // The stats snapshot breaks requests down by ISA.
        let _ = engine.handle(optimize(INPUT, "REDTEST"));
        let Response::Stats(snap) = engine.handle(Request::Stats) else {
            panic!("expected stats");
        };
        let isa = snap.get("isa").unwrap();
        assert_eq!(isa.get("aarch64").unwrap().as_u64(), Some(2));
        assert_eq!(isa.get("x86-64").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn stats_snapshot_tracks_requests() {
        let engine = engine();
        let _ = engine.handle(optimize(INPUT, "REDTEST"));
        let _ = engine.handle(optimize(INPUT, "REDTEST")); // cache hit
        let Response::Stats(snap) = engine.handle(Request::Stats) else {
            panic!("expected stats");
        };
        let requests = snap.get("requests").unwrap();
        assert_eq!(requests.get("ok").unwrap().as_u64(), Some(2));
        let cache = snap.get("result_cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(
            snap.get("schema_version").unwrap().as_u64(),
            Some(crate::stats::STATS_SCHEMA_VERSION)
        );
        // Admission reconciles: one compute attempt, zero shed.
        let admission = snap.get("admission").unwrap();
        assert_eq!(admission.get("offered").unwrap().as_u64(), Some(1));
        assert_eq!(admission.get("accepted").unwrap().as_u64(), Some(1));
        assert_eq!(admission.get("shed").unwrap().as_u64(), Some(0));
        // Exactly one shard served the one computed request.
        let shards = snap.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards.len(), 2);
        let served: u64 = shards
            .iter()
            .map(|s| s.get("requests").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(served, 1);
        // The aggregating recorder folded per-request and per-pass spans.
        let spans = snap.get("spans").unwrap().as_arr().unwrap();
        let request_total = spans
            .iter()
            .find(|s| s.get("cat").unwrap().as_str() == Some("request"))
            .expect("request span total present");
        assert_eq!(request_total.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_request_renders_prometheus_text() {
        let engine = engine();
        let _ = engine.handle(optimize(INPUT, "REDTEST"));
        let Response::Metrics(text) = engine.handle(Request::Metrics) else {
            panic!("expected metrics");
        };
        mao::obs::prom::validate(&text).expect("exposition text validates");
        assert!(text.contains("# TYPE mao_requests_total counter"), "{text}");
        assert!(text.contains("mao_uptime_seconds"), "{text}");
        assert!(
            text.contains("mao_shard_requests_total{shard=\"0\"}"),
            "shard-labeled counters present: {text}"
        );
        assert!(
            text.contains("mao_analysis_cache_hits_total{shard=\"1\"}"),
            "per-shard analysis caches are distinct series: {text}"
        );
    }

    #[test]
    fn parse_error_carries_line_and_text() {
        let engine = engine();
        let response = engine.handle(optimize("nop\nfrobnicate %eax\n", ""));
        match response {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Parse);
                assert!(message.contains("line 2"), "{message}");
                assert!(message.contains("frobnicate"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mao-engine-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn optimize_uncached(asm: &str, passes: &str) -> Request {
        Request::Optimize(OptimizeRequest {
            asm: asm.into(),
            passes: passes.into(),
            jobs: None,
            timeout_ms: None,
            use_cache: false,
            isa: mao::isa::IsaId::X86_64,
        })
    }

    #[test]
    fn corrupt_cost_model_is_a_startup_error_not_an_install() {
        let dir = tempdir("badmpt");
        let path = dir.join("bad.mpt");
        std::fs::write(&path, b"not a parameter table").unwrap();
        let before = mao_x86::cost::current().fingerprint();
        let err = match Engine::build(EngineConfig {
            shards: 1,
            cost_model: Some(path),
            ..EngineConfig::default()
        }) {
            Ok(_) => panic!("corrupt table must not build an engine"),
            Err(e) => e,
        };
        assert!(err.contains("cannot load cost model"), "{err}");
        // The rejected table must never have reached the provider.
        assert_eq!(mao_x86::cost::current().fingerprint(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cost_model_table_loads_installs_and_reports_provenance() {
        let dir = tempdir("mpt");
        let path = dir.join("table.mpt");
        let mut model = mao_x86::cost::CostModel::core2();
        model.name = "engine-test-table".to_string();
        model.provenance.source = "probe/sim".to_string();
        model.provenance.seed = 17;
        model.write_mpt(&path).unwrap();
        let engine = Engine::build(EngineConfig {
            shards: 1,
            cost_model: Some(path),
            ..EngineConfig::default()
        })
        .unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.cost_model.name, "engine-test-table");
        assert_eq!(snap.cost_model.source, "probe/sim");
        assert_eq!(snap.cost_model.seed, 17);
        assert!(snap.cost_model.mnemonics > 0);
        // The info series carries the same provenance for scrapes.
        let text = engine.handle(Request::Metrics);
        let Response::Metrics(text) = text else {
            panic!("metrics response");
        };
        assert!(text.contains("mao_cost_model_info"), "{text}");
        assert!(text.contains("engine-test-table"), "{text}");
        // Put the builtin back: the provider is process-global and other
        // tests in this binary read it.
        mao_x86::cost::install_builtin();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_store_serves_second_engine_byte_identically() {
        let dir = tempdir("snap");
        let config = || EngineConfig {
            shards: 1,
            snapshot_dir: Some(dir.clone()),
            ..EngineConfig::default()
        };
        let first = Engine::build(config()).unwrap();
        let Response::Optimized { outcome: a, .. } =
            first.handle(optimize_uncached(INPUT, "REDTEST"))
        else {
            panic!("first engine must optimize");
        };
        let stats = first.snapshot().frontend;
        assert_eq!(stats.snapshot_hits, 0);
        assert_eq!(stats.snapshot_misses, 1);
        assert!(stats.snapshot_entries >= 1, "miss backfills the store");
        drop(first);

        // A fresh engine over the same directory front-loads the parsed IR
        // from the snapshot and must still emit byte-identical output.
        let second = Engine::build(config()).unwrap();
        let Response::Optimized { outcome: b, .. } =
            second.handle(optimize_uncached(INPUT, "REDTEST"))
        else {
            panic!("second engine must optimize");
        };
        let stats = second.snapshot().frontend;
        assert_eq!(stats.snapshot_hits, 1, "snapshot tier must serve the parse");
        assert_eq!(stats.snapshot_misses, 0);
        assert_eq!(a.asm, b.asm, "snapshot path must be byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn layout_disk_tier_survives_engine_restart() {
        let dir = tempdir("layout");
        let config = || EngineConfig {
            shards: 1,
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        };
        // BRALIGN consumes relaxation layouts through the analysis cache, so
        // the first solve lands in `<cache_dir>/layout`.
        let first = Engine::build(config()).unwrap();
        let Response::Optimized { outcome: a, .. } =
            first.handle(optimize_uncached(INPUT, "BRALIGN"))
        else {
            panic!("first engine must optimize");
        };
        let cache = first.snapshot().analysis_cache;
        assert!(
            cache.layout_disk_misses >= 1,
            "cold store misses: {cache:?}"
        );
        assert_eq!(cache.layout_disk_hits, 0);
        drop(first);

        let second = Engine::build(config()).unwrap();
        let Response::Optimized { outcome: b, .. } =
            second.handle(optimize_uncached(INPUT, "BRALIGN"))
        else {
            panic!("second engine must optimize");
        };
        let cache = second.snapshot().analysis_cache;
        assert!(
            cache.layout_disk_hits >= 1,
            "restarted engine loads the persisted layout: {cache:?}"
        );
        assert_eq!(a.asm, b.asm, "disk-loaded layout must not change output");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
