//! A fixed-size worker pool over a shared job queue.
//!
//! Optimization requests are CPU-bound, so the pool is sized to the
//! machine (or `--workers N`) and connections merely enqueue closures.
//! Jobs are expected to contain their own panic isolation (the engine
//! wraps each request in `catch_unwind`); as a second line of defense a
//! worker that *does* see a panic escape logs it and keeps serving.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed worker pool. Dropping the pool (or calling [`Pool::shutdown`])
/// lets workers finish queued jobs and exit.
pub struct Pool {
    tx: Mutex<Option<Sender<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawn `workers` threads (minimum 1).
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("maod-worker-{i}"))
                .spawn(move || worker_loop(rx))
                .expect("spawn worker thread");
            handles.push(handle);
        }
        Pool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
        }
    }

    /// Enqueue a job. Fails only after [`Pool::shutdown`].
    pub fn submit(&self, job: Job) -> Result<(), &'static str> {
        match self.tx.lock().unwrap().as_ref() {
            Some(tx) => tx.send(job).map_err(|_| "worker pool is gone"),
            None => Err("worker pool is shut down"),
        }
    }

    /// Close the queue and join every worker (queued jobs still run).
    pub fn shutdown(&self) {
        drop(self.tx.lock().unwrap().take());
        let current = std::thread::current().id();
        for handle in self.handles.lock().unwrap().drain(..) {
            // A job can own the last handle to the engine (and thus to this
            // pool): its drop then runs shutdown *on a worker thread*, and a
            // thread cannot join itself. Skip it — it exits on its own when
            // the loop sees the closed queue.
            if handle.thread().id() == current {
                continue;
            }
            let _ = handle.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Take the next job *without* holding the queue lock while running it.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        if outcome.is_err() {
            eprintln!("[maod] worker caught an unisolated panic; continuing");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::sync_channel;

    #[test]
    fn runs_jobs_on_multiple_workers() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = sync_channel(64);
        for _ in 0..64 {
            let counter = counter.clone();
            let done = done_tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = done.send(());
            }))
            .unwrap();
        }
        for _ in 0..64 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("job completed");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn survives_panicking_job() {
        let pool = Pool::new(1);
        let (done_tx, done_rx) = sync_channel(1);
        pool.submit(Box::new(|| panic!("boom"))).unwrap();
        pool.submit(Box::new(move || {
            let _ = done_tx.send(());
        }))
        .unwrap();
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker survived the panic");
    }

    /// Regression: when a job owns the last `Arc<Pool>`, the pool's drop
    /// runs on the worker thread. The self-join used to make std panic
    /// (`pthread_join` on the current thread); shutdown must skip it.
    #[test]
    fn dropping_the_last_pool_handle_on_a_worker_is_clean() {
        let pool = Arc::new(Pool::new(2));
        let job_pool = pool.clone();
        let (release_tx, release_rx) = sync_channel::<()>(0);
        let (done_tx, done_rx) = sync_channel::<bool>(1);
        pool.submit(Box::new(move || {
            release_rx.recv().unwrap(); // until main has dropped its Arc
            let panicked =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(job_pool))).is_err();
            let _ = done_tx.send(panicked);
        }))
        .unwrap();
        drop(pool);
        release_tx.send(()).unwrap();
        let panicked = done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker finished");
        assert!(!panicked, "worker-side pool drop must not panic");
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let pool = Pool::new(2);
        pool.shutdown();
        assert!(pool.submit(Box::new(|| {})).is_err());
    }
}
