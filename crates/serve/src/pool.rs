//! The sharded worker pool: N single-threaded shards, each owning its own
//! analysis state.
//!
//! Requests are partitioned by content hash ([`crate::RequestKey::shard`])
//! across shards. Each shard is one worker thread with a private job queue
//! and — crucially — a private [`AnalysisCache`]: cross-request reuse of
//! CFG/dataflow/layout state happens *within* a shard, so the hot path
//! never contends on a shared cache lock, and a panicking pass poisons at
//! most one shard's cache. The same key always lands on the same shard,
//! which is what makes per-shard caches effective: repeat traffic for a
//! unit finds its analyses exactly where the first request left them.
//!
//! Jobs are expected to contain their own panic isolation (the engine
//! wraps each request in `catch_unwind`); as a second line of defense a
//! shard that *does* see a panic escape logs it and keeps serving.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mao::AnalysisCache;

/// What a job runs against: the shard's index (for labeled metrics) and
/// its private analysis cache.
pub struct ShardCtx {
    /// Shard index in `0..shards`.
    pub index: usize,
    /// The shard's private analysis/layout cache.
    pub analyses: Arc<AnalysisCache>,
}

/// One queued unit of work.
pub type Job = Box<dyn FnOnce(&ShardCtx) + Send + 'static>;

struct Shard {
    tx: Mutex<Option<Sender<Job>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    ctx: Arc<ShardCtx>,
}

/// Fixed set of single-threaded shards. Dropping the pool (or calling
/// [`ShardPool::shutdown`]) lets every shard finish its queued jobs and
/// exit.
pub struct ShardPool {
    shards: Vec<Shard>,
}

impl ShardPool {
    /// Spawn `shards` worker shards (minimum 1), each with a private
    /// analysis cache bounded to `analysis_cache_capacity` functions
    /// (0 = unbounded).
    pub fn new(shards: usize, analysis_cache_capacity: usize) -> ShardPool {
        let shards = shards.max(1);
        let mut out = Vec::with_capacity(shards);
        for index in 0..shards {
            let (tx, rx) = channel::<Job>();
            let ctx = Arc::new(ShardCtx {
                index,
                analyses: Arc::new(AnalysisCache::with_capacity(analysis_cache_capacity)),
            });
            let worker_ctx = ctx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("maod-shard-{index}"))
                .spawn(move || shard_loop(rx, worker_ctx))
                .expect("spawn shard thread");
            out.push(Shard {
                tx: Mutex::new(Some(tx)),
                handle: Mutex::new(Some(handle)),
                ctx,
            });
        }
        ShardPool { shards: out }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard's context (its analysis cache), for stats and metrics
    /// attachment.
    pub fn ctx(&self, shard: usize) -> &ShardCtx {
        &self.shards[shard].ctx
    }

    /// Enqueue a job on `shard`. Fails only after [`ShardPool::shutdown`].
    pub fn submit(&self, shard: usize, job: Job) -> Result<(), &'static str> {
        let shard = &self.shards[shard % self.shards.len()];
        match shard.tx.lock().unwrap().as_ref() {
            Some(tx) => tx.send(job).map_err(|_| "shard worker is gone"),
            None => Err("worker pool is shut down"),
        }
    }

    /// Close every queue and join every shard (queued jobs still run).
    pub fn shutdown(&self) {
        for shard in &self.shards {
            drop(shard.tx.lock().unwrap().take());
        }
        let current = std::thread::current().id();
        for shard in &self.shards {
            let handle = shard.handle.lock().unwrap().take();
            if let Some(handle) = handle {
                // A job can own the last handle to the engine (and thus to
                // this pool): its drop then runs shutdown *on a shard
                // thread*, and a thread cannot join itself. Skip it — it
                // exits on its own when the loop sees the closed queue.
                if handle.thread().id() == current {
                    continue;
                }
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn shard_loop(rx: Receiver<Job>, ctx: Arc<ShardCtx>) {
    while let Ok(job) = rx.recv() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&ctx)));
        if outcome.is_err() {
            eprintln!("[maod] shard worker caught an unisolated panic; continuing");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::sync_channel;

    #[test]
    fn runs_jobs_across_shards() {
        let pool = ShardPool::new(4, 0);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = sync_channel(64);
        for i in 0..64 {
            let counter = counter.clone();
            let done = done_tx.clone();
            pool.submit(
                i % 4,
                Box::new(move |_ctx| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    let _ = done.send(());
                }),
            )
            .unwrap();
        }
        for _ in 0..64 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("job completed");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn shards_have_private_analysis_caches() {
        let pool = ShardPool::new(2, 0);
        assert!(!Arc::ptr_eq(&pool.ctx(0).analyses, &pool.ctx(1).analyses));
        let (done_tx, done_rx) = sync_channel(1);
        pool.submit(
            1,
            Box::new(move |ctx| {
                let _ = done_tx.send(ctx.index);
            }),
        )
        .unwrap();
        assert_eq!(
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .unwrap(),
            1,
            "job ran on the shard it was submitted to"
        );
    }

    #[test]
    fn survives_panicking_job() {
        let pool = ShardPool::new(1, 0);
        let (done_tx, done_rx) = sync_channel(1);
        pool.submit(0, Box::new(|_| panic!("boom"))).unwrap();
        pool.submit(
            0,
            Box::new(move |_| {
                let _ = done_tx.send(());
            }),
        )
        .unwrap();
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker survived the panic");
    }

    /// Regression: when a job owns the last `Arc<ShardPool>`, the pool's
    /// drop runs on the worker thread. The self-join used to make std panic
    /// (`pthread_join` on the current thread); shutdown must skip it.
    #[test]
    fn dropping_the_last_pool_handle_on_a_worker_is_clean() {
        let pool = Arc::new(ShardPool::new(2, 0));
        let job_pool = pool.clone();
        let (release_tx, release_rx) = sync_channel::<()>(0);
        let (done_tx, done_rx) = sync_channel::<bool>(1);
        pool.submit(
            0,
            Box::new(move |_| {
                release_rx.recv().unwrap(); // until main has dropped its Arc
                let panicked =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(job_pool)))
                        .is_err();
                let _ = done_tx.send(panicked);
            }),
        )
        .unwrap();
        drop(pool);
        release_tx.send(()).unwrap();
        let panicked = done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker finished");
        assert!(!panicked, "worker-side pool drop must not panic");
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let pool = ShardPool::new(2, 0);
        pool.shutdown();
        assert!(pool.submit(0, Box::new(|_| {})).is_err());
    }
}
