//! The wire protocol: request/response shapes and frame codec.
//!
//! Over a socket, every message is one *frame*: a 4-byte big-endian length
//! followed by that many bytes of UTF-8 JSON. In batch mode the same JSON
//! documents travel newline-delimited over stdin/stdout instead (one
//! request per line, one response per line), which composes with shell
//! pipes the way the original one-shot `mao` does.
//!
//! Requests:
//!
//! ```json
//! {"type":"optimize","asm":"...","passes":"REDTEST:DCE",
//!  "isa":"x86-64",
//!  "options":{"jobs":2,"timeout_ms":5000,"cache":true}}
//! {"type":"stats"}
//! {"type":"metrics"}
//! {"type":"ping"}
//! {"type":"shutdown"}
//! ```
//!
//! Responses carry `"status":"ok"` or `"status":"error"`; see
//! [`Response`] for the exact members. The `stats` response embeds
//! `schema_version` inside the stats object and the `metrics` response
//! carries it top-level next to the Prometheus text payload; both use
//! [`crate::stats::STATS_SCHEMA_VERSION`].

use std::io::{self, Read, Write};

use mao::isa::IsaId;

use crate::json::Json;
use crate::stats::STATS_SCHEMA_VERSION;

/// Default cap on a single request frame (16 MiB of assembly is far beyond
/// any real translation unit).
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Default per-request wall-clock timeout.
pub const DEFAULT_TIMEOUT_MS: u64 = 30_000;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Optimize a unit.
    Optimize(OptimizeRequest),
    /// Snapshot server statistics.
    Stats,
    /// Prometheus text exposition of the metrics registry.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Graceful drain-then-exit.
    Shutdown,
}

/// The `optimize` request payload.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Input assembly text.
    pub asm: String,
    /// `--mao=`-style pass string (e.g. `REDTEST:ADDADD`).
    pub passes: String,
    /// Worker threads for function-level passes (None = server default).
    pub jobs: Option<usize>,
    /// Per-request wall-clock timeout override.
    pub timeout_ms: Option<u64>,
    /// Consult/populate the result cache (default true).
    pub use_cache: bool,
    /// Instruction set the request's assembly targets (wire member `isa`,
    /// default `x86-64`). Selects the parser dialect, keys the caches, and
    /// gates which passes may run.
    pub isa: IsaId,
}

impl Request {
    /// Parse a request from its JSON text.
    pub fn from_json_text(text: &str) -> Result<Request, String> {
        let value = Json::parse(text).map_err(|e| e.to_string())?;
        Request::from_json(&value)
    }

    /// Parse a request from a JSON value.
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let ty = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "request needs a string `type` member".to_string())?;
        match ty {
            "optimize" => {
                let asm = value
                    .get("asm")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "optimize request needs a string `asm`".to_string())?
                    .to_string();
                let passes = value
                    .get("passes")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let isa = match value.get("isa").and_then(Json::as_str) {
                    None => IsaId::default(),
                    Some(name) => {
                        IsaId::from_name(name).ok_or_else(|| format!("unknown isa `{name}`"))?
                    }
                };
                let options = value.get("options");
                let get = |key: &str| options.and_then(|o| o.get(key));
                Ok(Request::Optimize(OptimizeRequest {
                    asm,
                    passes,
                    jobs: get("jobs").and_then(Json::as_u64).map(|n| n as usize),
                    timeout_ms: get("timeout_ms").and_then(Json::as_u64),
                    use_cache: get("cache").and_then(Json::as_bool).unwrap_or(true),
                    isa,
                }))
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Serialize to the wire JSON.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Optimize(req) => {
                let mut options = Vec::new();
                if let Some(jobs) = req.jobs {
                    options.push(("jobs".to_string(), Json::from(jobs)));
                }
                if let Some(t) = req.timeout_ms {
                    options.push(("timeout_ms".to_string(), Json::from(t)));
                }
                if !req.use_cache {
                    options.push(("cache".to_string(), Json::from(false)));
                }
                let mut pairs = vec![
                    ("type".to_string(), Json::from("optimize")),
                    ("asm".to_string(), Json::from(req.asm.clone())),
                    ("passes".to_string(), Json::from(req.passes.clone())),
                ];
                if req.isa != IsaId::default() {
                    pairs.push(("isa".to_string(), Json::from(req.isa.name())));
                }
                if !options.is_empty() {
                    pairs.push(("options".to_string(), Json::Obj(options)));
                }
                Json::Obj(pairs)
            }
            Request::Stats => Json::obj(vec![("type", Json::from("stats"))]),
            Request::Metrics => Json::obj(vec![("type", Json::from("metrics"))]),
            Request::Ping => Json::obj(vec![("type", Json::from("ping"))]),
            Request::Shutdown => Json::obj(vec![("type", Json::from("shutdown"))]),
        }
    }
}

/// Whether an optimize response was served from the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory cache tier; no optimization ran.
    Hit,
    /// Served from the persistent disk tier (and promoted to memory); no
    /// optimization ran, but the entry was read and verified from disk.
    DiskHit,
    /// Computed fresh and inserted into the cache.
    Miss,
    /// Caching disabled for this request.
    Bypass,
}

impl CacheOutcome {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::DiskHit => "hit_disk",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// Structured error classes a request can fail with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON or missing members.
    BadRequest,
    /// The assembly did not parse (message carries line and text).
    Parse,
    /// A pass reported an error.
    Pass,
    /// A pass panicked; the request was isolated and the daemon lives on.
    Panic,
    /// The request exceeded its wall-clock budget.
    Timeout,
    /// The request frame exceeded the size limit.
    TooLarge,
    /// Admission control shed this request: the pending-request queue is
    /// at its high-water mark. The request was *not* queued; retrying
    /// after a backoff is expected to succeed.
    Busy,
    /// The server is draining and refused new work.
    ShuttingDown,
}

impl ErrorKind {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Parse => "parse",
            ErrorKind::Pass => "pass",
            ErrorKind::Panic => "panic",
            ErrorKind::Timeout => "timeout",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::Busy => "busy",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }
}

/// Per-request wall-clock breakdown, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// Parsing the input assembly.
    pub parse_us: u64,
    /// Running the pass pipeline.
    pub optimize_us: u64,
    /// Whole request, service-side.
    pub total_us: u64,
}

/// A successful optimize result (also the cached representation).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeOutcome {
    /// Transformed assembly text.
    pub asm: String,
    /// Per-pass (name, transformations, matches).
    pub passes: Vec<(String, usize, usize)>,
    /// Per-pass wall-clock microseconds.
    pub timings_us: Vec<(String, u64)>,
    /// Pipeline trace lines.
    pub trace: Vec<String>,
}

impl OptimizeOutcome {
    /// Total transformations across passes.
    pub fn total_transformations(&self) -> usize {
        self.passes.iter().map(|(_, t, _)| t).sum()
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Optimization succeeded.
    Optimized {
        /// The result (fresh or cached).
        outcome: OptimizeOutcome,
        /// Cache disposition.
        cache: CacheOutcome,
        /// Request-level timings (zero parse/optimize on a hit).
        timings: Timings,
    },
    /// Stats snapshot (pre-rendered JSON object).
    Stats(Json),
    /// Prometheus text exposition of the metrics registry.
    Metrics(String),
    /// Ping answer.
    Pong,
    /// Shutdown acknowledged; the server drains and exits.
    ShutdownAck,
    /// Structured failure.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable message (parse errors carry line + text verbatim).
        message: String,
    },
}

impl Response {
    /// Build the error variant.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error {
            kind,
            message: message.into(),
        }
    }

    /// Serialize to the wire JSON.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Optimized {
                outcome,
                cache,
                timings,
            } => Json::obj(vec![
                ("status", Json::from("ok")),
                ("asm", Json::from(outcome.asm.clone())),
                ("cache", Json::from(cache.as_str())),
                (
                    "stats",
                    Json::obj(vec![
                        (
                            "passes",
                            Json::Arr(
                                outcome
                                    .passes
                                    .iter()
                                    .map(|(name, transformations, matches)| {
                                        Json::obj(vec![
                                            ("name", Json::from(name.clone())),
                                            ("transformations", Json::from(*transformations)),
                                            ("matches", Json::from(*matches)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "total_transformations",
                            Json::from(outcome.total_transformations()),
                        ),
                    ]),
                ),
                (
                    "trace",
                    Json::Arr(
                        outcome
                            .trace
                            .iter()
                            .map(|l| Json::from(l.clone()))
                            .collect(),
                    ),
                ),
                (
                    "timings",
                    Json::obj(vec![
                        ("parse_us", Json::from(timings.parse_us)),
                        ("optimize_us", Json::from(timings.optimize_us)),
                        ("total_us", Json::from(timings.total_us)),
                        (
                            "per_pass_us",
                            Json::Arr(
                                outcome
                                    .timings_us
                                    .iter()
                                    .map(|(name, us)| {
                                        Json::obj(vec![
                                            ("name", Json::from(name.clone())),
                                            ("us", Json::from(*us)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                ),
            ]),
            Response::Stats(stats) => {
                Json::obj(vec![("status", Json::from("ok")), ("stats", stats.clone())])
            }
            Response::Metrics(text) => Json::obj(vec![
                ("status", Json::from("ok")),
                ("schema_version", Json::from(STATS_SCHEMA_VERSION)),
                ("metrics", Json::from(text.clone())),
            ]),
            Response::Pong => Json::obj(vec![
                ("status", Json::from("ok")),
                ("pong", Json::from(true)),
            ]),
            Response::ShutdownAck => Json::obj(vec![
                ("status", Json::from("ok")),
                ("shutdown", Json::from(true)),
            ]),
            Response::Error { kind, message } => Json::obj(vec![
                ("status", Json::from("error")),
                (
                    "error",
                    Json::obj(vec![
                        ("kind", Json::from(kind.as_str())),
                        ("message", Json::from(message.clone())),
                    ]),
                ),
            ]),
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_json_text(&self) -> String {
        self.to_json().to_string()
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// What [`read_frame`] produced.
#[derive(Debug)]
pub enum Frame {
    /// A complete payload.
    Payload(Vec<u8>),
    /// The peer declared a frame beyond `max_len`; the body was drained and
    /// discarded so the connection stays usable.
    TooLarge(usize),
    /// Clean end of stream before a length prefix.
    Eof,
}

/// Read one length-prefixed frame, enforcing `max_len`.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(Frame::Eof),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_len {
        // Drain the declared body so the stream stays framed.
        let mut remaining = len as u64;
        let mut sink = [0u8; 8192];
        while remaining > 0 {
            let chunk = remaining.min(sink.len() as u64) as usize;
            r.read_exact(&mut sink[..chunk])?;
            remaining -= chunk as u64;
        }
        return Ok(Frame::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Frame::Payload(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::Optimize(OptimizeRequest {
            asm: "nop\n".into(),
            passes: "REDTEST:DCE".into(),
            jobs: Some(2),
            timeout_ms: Some(500),
            use_cache: false,
            isa: IsaId::Aarch64,
        });
        let text = req.to_json().to_string();
        assert!(text.contains(r#""isa":"aarch64""#));
        assert_eq!(Request::from_json_text(&text).unwrap(), req);
        for simple in [
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ] {
            let text = simple.to_json().to_string();
            assert_eq!(Request::from_json_text(&text).unwrap(), simple);
        }
    }

    #[test]
    fn optimize_defaults() {
        let req = Request::from_json_text(r#"{"type":"optimize","asm":"nop\n"}"#).unwrap();
        match req {
            Request::Optimize(o) => {
                assert_eq!(o.passes, "");
                assert!(o.use_cache);
                assert_eq!(o.jobs, None);
                assert_eq!(o.isa, IsaId::X86_64, "x86-64 is the wire default");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn isa_member_selects_the_target() {
        let req =
            Request::from_json_text(r#"{"type":"optimize","asm":"ret\n","isa":"arm64"}"#).unwrap();
        match req {
            Request::Optimize(o) => assert_eq!(o.isa, IsaId::Aarch64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(Request::from_json_text("[]").is_err());
        assert!(Request::from_json_text(r#"{"type":"frobnicate"}"#).is_err());
        assert!(Request::from_json_text(r#"{"type":"optimize"}"#).is_err());
        assert!(Request::from_json_text("not json").is_err());
        assert!(
            Request::from_json_text(r#"{"type":"optimize","asm":"","isa":"vax"}"#).is_err(),
            "unknown isa names are rejected up front"
        );
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, 1024).unwrap() {
            Frame::Payload(p) => assert_eq!(p, b"hello"),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut cursor, 1024).unwrap() {
            Frame::Payload(p) => assert!(p.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(read_frame(&mut cursor, 1024).unwrap(), Frame::Eof));
    }

    #[test]
    fn oversized_frame_is_drained() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b'x'; 100]).unwrap();
        write_frame(&mut buf, b"after").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, 10).unwrap() {
            Frame::TooLarge(n) => assert_eq!(n, 100),
            other => panic!("unexpected {other:?}"),
        }
        // The follow-up frame is still readable: the stream stayed framed.
        match read_frame(&mut cursor, 10).unwrap() {
            Frame::Payload(p) => assert_eq!(p, b"after"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_response_shape() {
        let r = Response::error(ErrorKind::Timeout, "too slow");
        let v = r.to_json();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        let e = v.get("error").unwrap();
        assert_eq!(e.get("kind").unwrap().as_str(), Some("timeout"));
        assert_eq!(e.get("message").unwrap().as_str(), Some("too slow"));
    }
}
