//! A minimal JSON value type with parser and writer.
//!
//! The build environment is offline and the workspace is std-only, so the
//! wire format is implemented here rather than pulled from serde. The
//! subset is exactly RFC 8259 minus some numeric edge cases: numbers are
//! held as `f64` (integers round-trip exactly up to 2^53, far beyond any
//! counter this service transmits), and object keys keep insertion order so
//! emitted responses are stable for tests and humans.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Objects keep insertion order (pairs, not a map) for stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as u64 (floor), if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object payload as a map view (last duplicate wins), if an object.
    pub fn as_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

/// Convenience conversions for building responses.
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null"); // NaN/inf have no JSON spelling
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(JsonError::at(*pos, "unexpected end of input"));
    };
    match b {
        b'n' => expect(bytes, pos, "null").map(|_| Json::Null),
        b't' => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        b'f' => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected `,` or `]`")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(JsonError::at(*pos, "expected `,` or `}`")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(JsonError::at(
            *pos,
            format!("unexpected byte 0x{other:02x}"),
        )),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid utf-8 in number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, format!("bad number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError::at(*pos, "unterminated string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError::at(*pos, "dangling escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let mut cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, format!("bad \\u escape `{hex}`")))?;
                        *pos += 4;
                        // Surrogate pair?
                        if (0xD800..0xDC00).contains(&cp) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                let lo_hex = bytes
                                    .get(*pos + 2..*pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| JsonError::at(*pos, "truncated surrogate"))?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|_| JsonError::at(*pos, "bad surrogate"))?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    *pos += 6;
                                }
                            }
                        }
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => {
                        return Err(JsonError::at(
                            *pos,
                            format!("unsupported escape `\\{}`", other as char),
                        ))
                    }
                }
            }
            _ => {
                // Consume one UTF-8 scalar.
                let len = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(JsonError::at(*pos, "invalid utf-8")),
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| JsonError::at(*pos, "invalid utf-8"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = Json::obj(vec![
            ("s", Json::from("hi\n\"there\"")),
            ("n", Json::from(42u64)),
            ("f", Json::from(1.5)),
            ("b", Json::from(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::from(1u64), Json::from("x")])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""\u0041\t\\\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\t\\é😀");
    }

    #[test]
    fn integers_exact() {
        let v = Json::parse("9007199254740991").unwrap();
        assert_eq!(v.to_string(), "9007199254740991");
        assert_eq!(v.as_u64(), Some(9007199254740991));
    }

    #[test]
    fn errors() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn control_chars_escaped_on_write() {
        let s = Json::Str("\u{1}".to_string()).to_string();
        assert_eq!(s, "\"\\u0001\"");
        assert_eq!(Json::parse(&s).unwrap().as_str().unwrap(), "\u{1}");
    }
}
