//! Persistent layout tier: solved branch-relaxation layouts on disk.
//!
//! Branch relaxation is the most expensive analysis the optimizer runs per
//! unit — an iterative address/size fixed point over every entry. The
//! in-memory slot in `mao`'s `AnalysisCache` already reuses layouts across
//! requests within one process; [`DiskLayoutStore`] extends that across
//! restarts and between instances sharing a cache directory, the same
//! promotion the result cache got from its disk tier.
//!
//! Each solved [`Layout`] is serialized as a self-verifying `.ml` frame
//! (magic, version, embedded unit-content key, FNV-1a checksum) and kept in
//! an [`ArtifactStore`] — atomic writes, validated evict-never-serve reads,
//! segmented LRU eviction, startup index. The store plugs into core via the
//! [`mao::LayoutStore`] trait; `Engine::build` wires one per daemon under
//! `<cache_dir>/layout`.
//!
//! The frame deliberately omits `Layout::metrics` (solver telemetry, not
//! layout): a loaded layout reports zeroed metrics and `agrees_with`
//! ignores them.

use std::io;

use mao::isa::IsaId;
use mao::relax::BranchForm;
use mao::Layout;

use crate::store::{ArtifactStore, StoreConfig, StoreStats};

/// Bumped whenever the frame encoding or the meaning of a stored layout
/// changes (e.g. relaxation semantics); other versions are evicted on
/// contact. Version 2 added the ISA tag after the unit-content key — a
/// layout solved for one instruction set must never be served for
/// another, and v1 frames (implicitly x86-64, pre-dating the tag) are
/// evicted like any other stale version.
pub const LAYOUT_FORMAT_VERSION: u32 = 2;

/// 8-byte file magic; trailing byte doubles as a format generation.
const MAGIC: &[u8; 8] = b"MAOLYT\0\x01";

/// Entry file extension.
const EXT: &str = "ml";

/// Hard cap on per-unit entry counts accepted at decode (matches the
/// snapshot codec's limit; a declared length past this is malformed, not an
/// allocation request).
const MAX_ENTRIES: usize = 1 << 28;

/// Serialize one layout to its on-disk frame.
pub fn encode_layout(key: u128, isa: IsaId, layout: &Layout) -> Vec<u8> {
    let n = layout.addr.len();
    let mut body = Vec::with_capacity(20 + n * 13 + 16);
    body.extend_from_slice(&key.to_le_bytes());
    body.extend_from_slice(&isa.tag().to_le_bytes());
    body.extend_from_slice(&(n as u64).to_le_bytes());
    for &addr in &layout.addr {
        body.extend_from_slice(&addr.to_le_bytes());
    }
    for &size in &layout.size {
        body.extend_from_slice(&size.to_le_bytes());
    }
    for &form in &layout.branch_form {
        body.push(match form {
            None => 0,
            Some(BranchForm::Rel8) => 1,
            Some(BranchForm::Rel32) => 2,
        });
    }
    body.extend_from_slice(&(layout.iterations as u64).to_le_bytes());

    let mut out = Vec::with_capacity(body.len() + 28);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&LAYOUT_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out
}

/// Decode and verify one frame for the unit-content key and ISA it claims
/// to store. Any structural problem — truncation, bad magic, stale
/// version, wrong key, **wrong ISA**, checksum mismatch, out-of-range form
/// byte — returns `None`; the caller treats the file as corrupt and evicts
/// it.
pub fn decode_layout(bytes: &[u8], expected_key: u128, expected_isa: IsaId) -> Option<Layout> {
    // Header: magic(8) version(4) body_len(8); trailer: checksum(8).
    if bytes.len() < 20 + 8 || &bytes[..8] != MAGIC {
        return None;
    }
    if u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != LAYOUT_FORMAT_VERSION {
        return None;
    }
    let body_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    if bytes.len() != 20 + body_len + 8 {
        return None;
    }
    let body = &bytes[20..20 + body_len];
    let checksum = u64::from_le_bytes(bytes[20 + body_len..].try_into().unwrap());
    if fnv1a(body) != checksum {
        return None;
    }
    if body.len() < 28 {
        return None;
    }
    if u128::from_le_bytes(body[..16].try_into().unwrap()) != expected_key {
        return None;
    }
    let isa_tag = u32::from_le_bytes(body[16..20].try_into().unwrap());
    if IsaId::from_tag(isa_tag) != Some(expected_isa) {
        return None;
    }
    let n = u64::from_le_bytes(body[20..28].try_into().unwrap()) as usize;
    if n > MAX_ENTRIES || body.len() != 28 + n * 8 + n * 4 + n + 8 {
        return None;
    }
    let mut pos = 28;
    let mut addr = Vec::with_capacity(n);
    for _ in 0..n {
        addr.push(u64::from_le_bytes(body[pos..pos + 8].try_into().unwrap()));
        pos += 8;
    }
    let mut size = Vec::with_capacity(n);
    for _ in 0..n {
        size.push(u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()));
        pos += 4;
    }
    let mut branch_form = Vec::with_capacity(n);
    for _ in 0..n {
        branch_form.push(match body[pos] {
            0 => None,
            1 => Some(BranchForm::Rel8),
            2 => Some(BranchForm::Rel32),
            _ => return None,
        });
        pos += 1;
    }
    let iterations = u64::from_le_bytes(body[pos..pos + 8].try_into().unwrap()) as usize;
    Some(Layout {
        addr,
        size,
        branch_form,
        iterations,
        metrics: Default::default(),
    })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The `.ml` codec over an [`ArtifactStore`], implementing
/// [`mao::LayoutStore`] so `AnalysisCache` consults it on memory-tier
/// misses. One instance is shared by every shard of a daemon (the store is
/// thread-safe).
#[derive(Debug)]
pub struct DiskLayoutStore {
    store: ArtifactStore,
}

impl DiskLayoutStore {
    /// Open (creating if needed) a layout store rooted at `config.dir`.
    pub fn open(config: StoreConfig) -> io::Result<DiskLayoutStore> {
        debug_assert_eq!(config.ext, EXT);
        Ok(DiskLayoutStore {
            store: ArtifactStore::open(config)?,
        })
    }

    /// Convenience: open under `dir` with a byte budget (0 = unbounded).
    pub fn open_dir(
        dir: impl Into<std::path::PathBuf>,
        max_bytes: u64,
    ) -> io::Result<DiskLayoutStore> {
        DiskLayoutStore::open(StoreConfig {
            dir: dir.into(),
            max_bytes,
            fsync: false,
            ext: EXT,
        })
    }

    /// Mirror counters as `mao_layout_store_disk_*_total`.
    pub fn attach_metrics(&self, metrics: &mao::obs::Metrics) {
        self.store.attach_metrics(metrics, "mao_layout_store_disk");
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }
}

impl mao::LayoutStore for DiskLayoutStore {
    fn load(&self, key: u128, isa: IsaId) -> Option<Layout> {
        let mut decoded = None;
        self.store.get_with(key, |bytes| {
            decoded = decode_layout(bytes, key, isa);
            decoded.is_some()
        })?;
        decoded
    }

    fn store(&self, key: u128, isa: IsaId, layout: &Layout) {
        self.store.put(key, &encode_layout(key, isa, layout));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mao::LayoutStore as _;
    use std::path::PathBuf;

    fn layout() -> Layout {
        Layout {
            addr: vec![0, 0, 2, 7],
            size: vec![0, 2, 5, 1],
            branch_form: vec![None, Some(BranchForm::Rel8), Some(BranchForm::Rel32), None],
            iterations: 3,
            metrics: Default::default(),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mao-layout-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn encode_decode_roundtrip() {
        let original = layout();
        let bytes = encode_layout(42, IsaId::X86_64, &original);
        let decoded = decode_layout(&bytes, 42, IsaId::X86_64).unwrap();
        assert!(decoded.agrees_with(&original));
    }

    #[test]
    fn truncation_corruption_and_skew_are_rejected() {
        let bytes = encode_layout(42, IsaId::X86_64, &layout());
        for cut in [0, 7, 19, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_layout(&bytes[..cut], 42, IsaId::X86_64).is_none(),
                "cut at {cut}"
            );
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(
            decode_layout(&flipped, 42, IsaId::X86_64).is_none(),
            "bit flip"
        );
        assert!(
            decode_layout(&bytes, 43, IsaId::X86_64).is_none(),
            "wrong key"
        );
        let mut stale = bytes.clone();
        stale[8] = 99; // version field
        assert!(
            decode_layout(&stale, 42, IsaId::X86_64).is_none(),
            "stale version"
        );
    }

    #[test]
    fn wrong_isa_frame_is_rejected_like_corruption() {
        // A layout solved for aarch64 must never be served for an x86-64
        // unit sharing the content key, and vice versa.
        let bytes = encode_layout(42, IsaId::Aarch64, &layout());
        assert!(decode_layout(&bytes, 42, IsaId::Aarch64).is_some());
        assert!(
            decode_layout(&bytes, 42, IsaId::X86_64).is_none(),
            "wrong isa"
        );
        // Same through the store: the mismatched frame is evicted on contact.
        let dir = tempdir("wrong-isa");
        let s = DiskLayoutStore::open_dir(&dir, 0).unwrap();
        s.store(9, IsaId::Aarch64, &layout());
        assert!(s.load(9, IsaId::X86_64).is_none());
        let path = dir.join(format!("{:032x}.ml", 9u128));
        assert!(!path.exists(), "wrong-ISA layout evicted, not served");
        assert_eq!(s.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_roundtrip_and_corrupt_eviction() {
        let dir = tempdir("store");
        let s = DiskLayoutStore::open_dir(&dir, 0).unwrap();
        assert!(s.load(7, IsaId::X86_64).is_none());
        s.store(7, IsaId::X86_64, &layout());
        assert!(s.load(7, IsaId::X86_64).unwrap().agrees_with(&layout()));
        // Corrupt the file on disk: the next load evicts, never serves.
        let path = dir.join(format!("{:032x}.ml", 7u128));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(s.load(7, IsaId::X86_64).is_none());
        assert!(!path.exists(), "corrupt layout deleted");
        assert_eq!(s.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
