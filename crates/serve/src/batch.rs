//! Pipe-based batch mode: newline-delimited JSON over stdin/stdout.
//!
//! `mao batch` reads one request per line, writes one response per line,
//! and exits at EOF (or on a `shutdown` request). It shares the exact
//! [`Engine`] the socket server uses — same caches, same isolation, same
//! counters — so a pipeline can be smoke-tested with a here-doc before
//! deploying the daemon.

use std::io::{self, BufRead, Write};

use crate::engine::Engine;
use crate::protocol::{ErrorKind, Request, Response};

/// Serve requests line-by-line until EOF or `shutdown`.
pub fn run_batch(engine: &Engine, input: impl BufRead, mut output: impl Write) -> io::Result<()> {
    let max = engine.config().max_request_bytes;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = if line.len() > max {
            Response::error(
                ErrorKind::TooLarge,
                format!(
                    "request line of {} bytes exceeds the {max}-byte limit",
                    line.len()
                ),
            )
        } else {
            match Request::from_json_text(&line) {
                Ok(request) => engine.handle(request),
                Err(message) => Response::error(ErrorKind::BadRequest, message),
            }
        };
        let stop = matches!(response, Response::ShutdownAck);
        writeln!(output, "{}", response.to_json_text())?;
        output.flush()?;
        if stop {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::json::Json;

    #[test]
    fn batch_round_trips_lines() {
        let engine = Engine::new(EngineConfig {
            shards: 1,
            ..EngineConfig::default()
        });
        let input = concat!(
            r#"{"type":"ping"}"#,
            "\n\n",
            r#"{"type":"optimize","asm":"nop\n","passes":""}"#,
            "\n",
            "not json\n",
            r#"{"type":"shutdown"}"#,
            "\n",
            r#"{"type":"ping"}"#,
            "\n",
        );
        let mut out = Vec::new();
        run_batch(&engine, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4, "shutdown stops the stream: {lines:?}");
        assert_eq!(
            Json::parse(lines[0])
                .unwrap()
                .get("pong")
                .and_then(Json::as_bool),
            Some(true)
        );
        let opt = Json::parse(lines[1]).unwrap();
        assert_eq!(opt.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(opt.get("asm").unwrap().as_str(), Some("\tnop\n"));
        let bad = Json::parse(lines[2]).unwrap();
        assert_eq!(bad.get("status").unwrap().as_str(), Some("error"));
        let ack = Json::parse(lines[3]).unwrap();
        assert_eq!(ack.get("shutdown").and_then(Json::as_bool), Some(true));
    }
}
