//! Client-side helpers: frame a request, read the response.

use std::io;
use std::time::Duration;

use crate::json::Json;
use crate::protocol::{read_frame, write_frame, Frame, Request};
use crate::server::{connect_with_io_timeout, connect_with_retry, Conn, Listen};

/// A connected client holding one stream; requests are served in order.
pub struct Client {
    conn: Box<dyn Conn>,
}

impl Client {
    /// Connect to a daemon, retrying briefly to cover startup races.
    pub fn connect(addr: &Listen) -> io::Result<Client> {
        Ok(Client {
            conn: connect_with_retry(addr, Duration::from_secs(5))?,
        })
    }

    /// Connect with socket read/write timeouts, so a wedged daemon
    /// surfaces as a `WouldBlock`/`TimedOut` error instead of hanging.
    /// Retries like [`Client::connect`] to cover startup races, but the
    /// retry budget is capped at the I/O timeout when one is given.
    pub fn connect_with_io_timeout(
        addr: &Listen,
        io_timeout: Option<Duration>,
    ) -> io::Result<Client> {
        let budget = io_timeout
            .unwrap_or(Duration::from_secs(5))
            .min(Duration::from_secs(5));
        let deadline = std::time::Instant::now() + budget;
        loop {
            match connect_with_io_timeout(addr, io_timeout) {
                Ok(conn) => return Ok(Client { conn }),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Send one request and read its response JSON.
    pub fn request(&mut self, request: &Request) -> io::Result<Json> {
        let payload = request.to_json().to_string();
        write_frame(&mut self.conn, payload.as_bytes())?;
        match read_frame(&mut self.conn, usize::MAX)? {
            Frame::Payload(bytes) => {
                let text = std::str::from_utf8(&bytes).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "response is not utf-8")
                })?;
                Json::parse(text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            Frame::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-request",
            )),
            Frame::TooLarge(_) => unreachable!("client imposes no response limit"),
        }
    }
}
