//! Front-end snapshot tier: binary IR snapshots keyed by input content.
//!
//! A snapshot (`mao_asm::snapshot`) is the parsed entry list of one
//! assembly unit in a compact binary form — loading one skips tokenizing,
//! operand parsing, and validation entirely. [`SnapshotStore`] keeps
//! snapshots in an [`ArtifactStore`] keyed by
//! [`mao_asm::snapshot::content_key`] of the *input text*, so any consumer
//! holding the same bytes (the daemon across restarts, repeated one-shot
//! `mao` runs pointed at a `--snapshot-dir`, a build system re-optimizing
//! an unchanged translation unit) hits without ever parsing.
//!
//! The `.msnap` files are verbatim [`mao_asm::snapshot::encode`] output —
//! byte-identical to what `mao --emit-snapshot` writes — so artifacts move
//! freely between the store and explicit snapshot files. The snapshot codec
//! is fully self-verifying (magic, version, embedded key, checksum);
//! corrupt, truncated, or version-skewed files fail decode and the store
//! evicts them without serving.

use std::io;
use std::path::PathBuf;

use mao_asm::snapshot;
use mao_asm::Entry;

use crate::store::{ArtifactStore, StoreConfig, StoreStats};

/// Entry file extension.
const EXT: &str = "msnap";

/// A content-addressed store of parsed-unit snapshots.
#[derive(Debug)]
pub struct SnapshotStore {
    store: ArtifactStore,
}

impl SnapshotStore {
    /// Open (creating if needed) a snapshot store under `dir` with a byte
    /// budget (0 = unbounded).
    pub fn open(dir: impl Into<PathBuf>, max_bytes: u64) -> io::Result<SnapshotStore> {
        Ok(SnapshotStore {
            store: ArtifactStore::open(StoreConfig {
                dir: dir.into(),
                max_bytes,
                fsync: false,
                ext: EXT,
            })?,
        })
    }

    /// The store key for `text` — the snapshot content key of the input.
    pub fn key_of(text: &str) -> u128 {
        snapshot::content_key(text)
    }

    /// Load the decoded entries for input `text`, if a valid snapshot is
    /// stored. Invalid snapshots are evicted, never served.
    pub fn load(&self, text: &str) -> Option<Vec<Entry>> {
        self.load_key(Self::key_of(text))
    }

    /// Like [`SnapshotStore::load`] with a precomputed key (callers that
    /// already hashed the input avoid a second pass over it).
    pub fn load_key(&self, key: u128) -> Option<Vec<Entry>> {
        let mut decoded = None;
        self.store.get_with(key, |bytes| {
            decoded = snapshot::decode(bytes, Some(key)).ok();
            decoded.is_some()
        })?;
        decoded
    }

    /// Encode and store a snapshot of `entries` parsed from input with
    /// content key `key`.
    pub fn put(&self, key: u128, entries: &[Entry]) {
        self.store.put(key, &snapshot::encode(entries, key));
    }

    /// Mirror counters as `mao_frontend_snapshot_store_*_total`.
    pub fn attach_metrics(&self, metrics: &mao::obs::Metrics) {
        self.store
            .attach_metrics(metrics, "mao_frontend_snapshot_store");
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str =
        "\t.text\nf:\n\tpush %rbp\n\tmov %rsp, %rbp\n\tjmp .L1\n.L1:\n\tpop %rbp\n\tret\n";

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mao-snapshot-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_roundtrips_parsed_entries() {
        let dir = tempdir("roundtrip");
        let s = SnapshotStore::open(&dir, 0).unwrap();
        let entries = mao_asm::parse(TEXT).unwrap();
        let key = SnapshotStore::key_of(TEXT);
        assert!(s.load(TEXT).is_none());
        s.put(key, &entries);
        assert_eq!(s.load(TEXT).unwrap(), entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stored_file_matches_emit_snapshot_output() {
        let dir = tempdir("verbatim");
        let s = SnapshotStore::open(&dir, 0).unwrap();
        let entries = mao_asm::parse(TEXT).unwrap();
        let key = SnapshotStore::key_of(TEXT);
        s.put(key, &entries);
        let on_disk = std::fs::read(dir.join(format!("{key:032x}.msnap"))).unwrap();
        assert_eq!(
            on_disk,
            snapshot::encode(&entries, key),
            ".msnap files are verbatim --emit-snapshot bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_truncated_and_skewed_snapshots_are_evicted_never_served() {
        let entries = mao_asm::parse(TEXT).unwrap();
        let key = SnapshotStore::key_of(TEXT);
        let good = snapshot::encode(&entries, key);
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("corrupt", {
                let mut b = good.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0xff;
                b
            }),
            ("truncated", good[..good.len() / 2].to_vec()),
            ("version-skew", {
                let mut b = good.clone();
                b[8] = 0x7f; // version field past the magic
                b
            }),
            ("wrong-key", snapshot::encode(&entries, key ^ 1)),
        ];
        for (tag, bytes) in cases {
            let dir = tempdir(&format!("bad-{tag}"));
            let s = SnapshotStore::open(&dir, 0).unwrap();
            let path = dir.join(format!("{key:032x}.msnap"));
            std::fs::write(&path, &bytes).unwrap();
            assert!(s.load(TEXT).is_none(), "{tag}: must not serve");
            assert!(!path.exists(), "{tag}: must evict the file");
            assert_eq!(s.stats().corrupt, 1, "{tag}: counted corrupt");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
