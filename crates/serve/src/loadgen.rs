//! Replay load generator: mixed hot/cold/malformed traffic with latency
//! gates.
//!
//! `mao loadgen` drives a running daemon the way a build farm would:
//! several concurrent connections, each pipelining length-prefixed frames
//! with a bounded number in flight. The traffic mix is deterministic (a
//! splitmix64 stream, no RNG dependency): a configurable share of
//! requests repeat a small hot set (result-cache hits after first touch),
//! a share are unique cold inputs (full compute), and a share are
//! malformed — invalid JSON or unparsable assembly — to prove the error
//! paths hold up under load.
//!
//! The report carries two views of latency: client-observed percentiles
//! (wall clock, send→response, including pipeline queueing) and
//! service-side p50/p99 estimated from the daemon's
//! `mao_request_service_us` histogram scraped after the run. Gates
//! (`--p50-limit-us`, `--p99-limit-us`) apply to the service-side numbers
//! so CI failures point at the engine, not at client-side scheduling
//! noise; a gate run also fails on any *unexpected* error (a malformed
//! request answered with anything but a structured error, or a
//! well-formed one answered with anything but success/BUSY).

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::protocol::{read_frame, write_frame, Frame, Request};
use crate::server::{connect_with_retry, Listen};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: Listen,
    /// Concurrent connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Frames in flight per connection (1 = strict request/response).
    pub pipeline_depth: usize,
    /// Distinct hot inputs (everything not cold/malformed cycles these).
    pub hot_keys: usize,
    /// Percent of requests with unique never-repeated inputs.
    pub cold_pct: u32,
    /// Percent of requests that are malformed (split between invalid
    /// JSON and unparsable assembly).
    pub malformed_pct: u32,
    /// Pass pipeline for well-formed requests.
    pub passes: String,
    /// Gate: service-side p50 must stay at or below this (microseconds).
    pub p50_limit_us: Option<u64>,
    /// Gate: service-side p99 must stay at or below this (microseconds).
    pub p99_limit_us: Option<u64>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: Listen::Unix(std::path::PathBuf::from("/tmp/maod.sock")),
            connections: 4,
            requests: 200,
            pipeline_depth: 8,
            hot_keys: 8,
            cold_pct: 20,
            malformed_pct: 5,
            passes: "REDTEST:ADDADD".to_string(),
            p50_limit_us: None,
            p99_limit_us: None,
        }
    }
}

/// What one run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests sent (== responses read on a clean run).
    pub sent: u64,
    /// Successful optimize responses.
    pub ok: u64,
    /// Result-cache memory-tier hits.
    pub cache_hits: u64,
    /// Result-cache disk-tier hits.
    pub cache_disk_hits: u64,
    /// Cache misses (fresh compute).
    pub cache_misses: u64,
    /// `BUSY` sheds (admission control working as designed).
    pub busy: u64,
    /// Malformed requests answered with the expected structured error.
    pub expected_errors: u64,
    /// Anything else — always a gate failure.
    pub unexpected_errors: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Client-observed percentiles (include pipeline queueing).
    pub client_p50_us: u64,
    /// Client-observed p99.
    pub client_p99_us: u64,
    /// Service-side percentiles from `mao_request_service_us`.
    pub service_p50_us: f64,
    /// Service-side p99.
    pub service_p99_us: f64,
    /// Gate verdicts; empty = pass.
    pub failures: Vec<String>,
}

impl LoadgenReport {
    /// Throughput over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.sent as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Render for `mao loadgen --json` and the bench scripts.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("sent", Json::from(self.sent)),
            ("ok", Json::from(self.ok)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_disk_hits", Json::from(self.cache_disk_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("busy", Json::from(self.busy)),
            ("expected_errors", Json::from(self.expected_errors)),
            ("unexpected_errors", Json::from(self.unexpected_errors)),
            ("elapsed_s", Json::from(self.elapsed_s)),
            ("throughput_rps", Json::from(self.throughput_rps())),
            ("client_p50_us", Json::from(self.client_p50_us)),
            ("client_p99_us", Json::from(self.client_p99_us)),
            ("service_p50_us", Json::from(self.service_p50_us)),
            ("service_p99_us", Json::from(self.service_p99_us)),
            (
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|f| Json::from(f.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Did every gate hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// splitmix64: deterministic, well-mixed, and dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The i-th request's wire payload and its expectation class.
#[derive(Clone, Copy, PartialEq)]
enum Expect {
    /// Well-formed: success or BUSY are acceptable.
    Ok,
    /// Malformed: a structured error is the *correct* answer.
    Error,
}

fn synthesize(index: u64, config: &LoadgenConfig) -> (Vec<u8>, Expect) {
    let roll = mix(index) % 100;
    if roll < config.malformed_pct as u64 {
        // Alternate protocol-level and assembly-level malformation.
        if mix(index ^ 0xbad) % 2 == 0 {
            return (b"{\"op\": \"optimize\", truncated".to_vec(), Expect::Error);
        }
        let request = Request::Optimize(crate::protocol::OptimizeRequest {
            asm: format!("nop\nfrobnicate %eax, {index}\n"),
            passes: config.passes.clone(),
            jobs: None,
            timeout_ms: None,
            use_cache: true,
            isa: mao::isa::IsaId::X86_64,
        });
        return (request.to_json().to_string().into_bytes(), Expect::Error);
    }
    let cold = roll < (config.malformed_pct + config.cold_pct) as u64;
    let variant = if cold {
        format!("cold_{index}")
    } else {
        format!("hot_{}", mix(index ^ 0x407) % config.hot_keys.max(1) as u64)
    };
    // A small function with folding and branch work so a miss costs real
    // pipeline time while a hit costs only the cache probe.
    let asm = format!(
        "# loadgen {variant}\n\t.type\tf, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L1\n\taddl $3, %eax\n\taddl $4, %eax\n.L1:\n\taddl $1, %ebx\n\taddl $2, %ebx\n\tret\n"
    );
    let request = Request::Optimize(crate::protocol::OptimizeRequest {
        asm,
        passes: config.passes.clone(),
        jobs: None,
        timeout_ms: None,
        use_cache: true,
        isa: mao::isa::IsaId::X86_64,
    });
    (request.to_json().to_string().into_bytes(), Expect::Ok)
}

#[derive(Default)]
struct Tally {
    report: LoadgenReport,
    latencies_us: Vec<u64>,
}

fn classify(response: &Json, expect: Expect, tally: &mut Tally) {
    let status = response.get("status").and_then(|s| s.as_str());
    match status {
        Some("ok") => {
            if expect == Expect::Error {
                tally.report.unexpected_errors += 1;
                return;
            }
            tally.report.ok += 1;
            match response.get("cache").and_then(|c| c.as_str()) {
                Some("hit") => tally.report.cache_hits += 1,
                Some("hit_disk") => tally.report.cache_disk_hits += 1,
                Some("miss") => tally.report.cache_misses += 1,
                _ => {}
            }
        }
        Some("error") => {
            let kind = response
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| k.as_str())
                .unwrap_or("");
            match (expect, kind) {
                // Admission shedding preempts parsing, so even a malformed
                // request can come back `busy` under flood.
                (_, "busy") => tally.report.busy += 1,
                (Expect::Error, "parse") | (Expect::Error, "bad_request") => {
                    tally.report.expected_errors += 1
                }
                _ => tally.report.unexpected_errors += 1,
            }
        }
        _ => tally.report.unexpected_errors += 1,
    }
}

/// One connection's worth of traffic: indices `[start, start + count)`,
/// pipelined `depth` deep.
fn drive_connection(
    config: &LoadgenConfig,
    start: u64,
    count: u64,
    tally: &mut Tally,
) -> io::Result<()> {
    let mut conn = connect_with_retry(&config.addr, Duration::from_secs(5))?;
    let depth = config.pipeline_depth.max(1) as u64;
    let mut next_send = start;
    let mut next_read = start;
    let end = start + count;
    let mut outstanding: std::collections::VecDeque<(Instant, Expect)> =
        std::collections::VecDeque::new();
    while next_read < end {
        while next_send < end && (outstanding.len() as u64) < depth {
            let (payload, expect) = synthesize(next_send, config);
            write_frame(&mut conn, &payload)?;
            outstanding.push_back((Instant::now(), expect));
            next_send += 1;
        }
        let Frame::Payload(bytes) = read_frame(&mut conn, usize::MAX)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-run",
            ));
        };
        let (sent_at, expect) = outstanding.pop_front().expect("response without request");
        tally
            .latencies_us
            .push(sent_at.elapsed().as_micros() as u64);
        tally.report.sent += 1;
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not utf-8"))?;
        let response = Json::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        classify(&response, expect, tally);
        next_read += 1;
    }
    Ok(())
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Estimate quantile `q` from Prometheus-style cumulative buckets
/// (`(upper_bound_us, cumulative_count)`, +Inf last) by linear
/// interpolation within the winning bucket.
pub fn histogram_quantile(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total = buckets.last().map(|(_, n)| *n).unwrap_or(0);
    if total == 0 {
        return 0.0;
    }
    let target = (q * total as f64).ceil().max(1.0) as u64;
    let mut lower_bound = 0.0;
    let mut lower_count = 0u64;
    for &(le, cumulative) in buckets {
        if cumulative >= target {
            if le.is_infinite() {
                return lower_bound; // best effort: everything overflowed
            }
            let in_bucket = (cumulative - lower_count) as f64;
            let needed = (target - lower_count) as f64;
            return lower_bound + (le - lower_bound) * (needed / in_bucket.max(1.0));
        }
        lower_bound = le;
        lower_count = cumulative;
    }
    lower_bound
}

/// Pull `family`'s cumulative buckets out of a Prometheus text scrape.
pub fn scrape_buckets(metrics_text: &str, family: &str) -> Vec<(f64, u64)> {
    let prefix = format!("{family}_bucket{{le=\"");
    let mut buckets = Vec::new();
    for line in metrics_text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else {
            continue;
        };
        let Some((le_text, rest)) = rest.split_once("\"}") else {
            continue;
        };
        let le = if le_text == "+Inf" {
            f64::INFINITY
        } else {
            le_text.parse().unwrap_or(f64::INFINITY)
        };
        if let Ok(count) = rest.trim().parse::<u64>() {
            buckets.push((le, count));
        }
    }
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    buckets
}

/// Scrape the daemon's metrics endpoint and return the raw exposition
/// text.
pub fn scrape_metrics(addr: &Listen) -> io::Result<String> {
    let mut conn = connect_with_retry(addr, Duration::from_secs(5))?;
    write_frame(&mut conn, Request::Metrics.to_json().to_string().as_bytes())?;
    let Frame::Payload(bytes) = read_frame(&mut conn, usize::MAX)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed during metrics scrape",
        ));
    };
    let text = std::str::from_utf8(&bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "scrape is not utf-8"))?;
    let json =
        Json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    json.get("metrics")
        .and_then(|m| m.as_str())
        .map(|s| s.to_string())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no metrics in scrape"))
}

/// Run the generator against a live daemon and evaluate the gates.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let config = Arc::new(config.clone());
    let started = Instant::now();
    let connections = config.connections.max(1) as u64;
    let per_conn = config.requests as u64 / connections;
    let remainder = config.requests as u64 % connections;
    let mut handles = Vec::new();
    let mut start = 0u64;
    for c in 0..connections {
        let count = per_conn + if c < remainder { 1 } else { 0 };
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            let mut tally = Tally::default();
            let result = drive_connection(&config, start, count, &mut tally);
            (tally, result)
        }));
        start += count;
    }
    let mut merged = Tally::default();
    let mut io_errors = Vec::new();
    for handle in handles {
        let (tally, result) = handle.join().expect("loadgen worker panicked");
        merged.report.sent += tally.report.sent;
        merged.report.ok += tally.report.ok;
        merged.report.cache_hits += tally.report.cache_hits;
        merged.report.cache_disk_hits += tally.report.cache_disk_hits;
        merged.report.cache_misses += tally.report.cache_misses;
        merged.report.busy += tally.report.busy;
        merged.report.expected_errors += tally.report.expected_errors;
        merged.report.unexpected_errors += tally.report.unexpected_errors;
        merged.latencies_us.extend(tally.latencies_us);
        if let Err(e) = result {
            io_errors.push(e.to_string());
        }
    }
    let mut report = merged.report;
    report.elapsed_s = started.elapsed().as_secs_f64();
    merged.latencies_us.sort_unstable();
    report.client_p50_us = percentile(&merged.latencies_us, 0.50);
    report.client_p99_us = percentile(&merged.latencies_us, 0.99);

    let metrics = scrape_metrics(&config.addr)?;
    let buckets = scrape_buckets(&metrics, "mao_request_service_us");
    report.service_p50_us = histogram_quantile(&buckets, 0.50);
    report.service_p99_us = histogram_quantile(&buckets, 0.99);

    for e in io_errors {
        report.failures.push(format!("io: {e}"));
    }
    if report.unexpected_errors > 0 {
        report
            .failures
            .push(format!("{} unexpected errors", report.unexpected_errors));
    }
    if let Some(limit) = config.p50_limit_us {
        if report.service_p50_us > limit as f64 {
            report.failures.push(format!(
                "service p50 {:.0}us exceeds limit {limit}us",
                report.service_p50_us
            ));
        }
    }
    if let Some(limit) = config.p99_limit_us {
        if report.service_p99_us > limit as f64 {
            report.failures.push(format!(
                "service p99 {:.0}us exceeds limit {limit}us",
                report.service_p99_us
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_mix_is_deterministic_and_mixed() {
        let config = LoadgenConfig::default();
        let first: Vec<(Vec<u8>, bool)> = (0..100)
            .map(|i| {
                let (p, e) = synthesize(i, &config);
                (p, e == Expect::Error)
            })
            .collect();
        let second: Vec<(Vec<u8>, bool)> = (0..100)
            .map(|i| {
                let (p, e) = synthesize(i, &config);
                (p, e == Expect::Error)
            })
            .collect();
        assert_eq!(first, second, "same index, same payload");
        let malformed = first.iter().filter(|(_, e)| *e).count();
        assert!(malformed > 0, "mix includes malformed traffic");
        assert!(malformed < 50, "malformed stays a minority: {malformed}");
    }

    #[test]
    fn histogram_quantile_interpolates() {
        // 100 observations: 50 in (0,100], 40 in (100,1000], 10 beyond.
        let buckets = vec![(100.0, 50), (1000.0, 90), (f64::INFINITY, 100)];
        let p50 = histogram_quantile(&buckets, 0.50);
        assert!((0.0..=100.0).contains(&p50), "{p50}");
        let p90 = histogram_quantile(&buckets, 0.90);
        assert!((100.0..=1000.0).contains(&p90), "{p90}");
        assert_eq!(histogram_quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn scrape_buckets_parses_exposition_lines() {
        let text = "# TYPE mao_request_service_us histogram\n\
                    mao_request_service_us_bucket{le=\"100\"} 5\n\
                    mao_request_service_us_bucket{le=\"1000\"} 9\n\
                    mao_request_service_us_bucket{le=\"+Inf\"} 10\n\
                    mao_request_service_us_count 10\n";
        let buckets = scrape_buckets(text, "mao_request_service_us");
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (100.0, 5));
        assert!(buckets[2].0.is_infinite());
    }
}
