//! The socket transport: listener, connections, graceful drain.
//!
//! `maod` listens on a Unix-domain socket (the default — build pipelines
//! are machine-local) or a TCP address. Each connection gets a thread that
//! reads length-prefixed request frames and writes response frames; the
//! actual optimization work is dispatched through the shared [`Engine`]'s
//! worker pool, so a slow request on one connection never blocks another
//! connection's requests.
//!
//! Shutdown is cooperative: a `shutdown` request or SIGTERM/SIGINT flips
//! the engine's drain flag; the accept loop stops taking connections,
//! in-service requests finish and their responses are written, then the
//! listener exits.

use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Engine;
use crate::protocol::{read_frame, write_frame, ErrorKind, Frame, Request, Response};

/// Where to listen / connect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP at this `host:port`.
    Tcp(String),
}

impl Listen {
    /// Parse `unix:/path`, `tcp:host:port`, or a bare path (unix).
    pub fn parse(s: &str) -> Result<Listen, String> {
        if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err("unix: needs a socket path".to_string());
            }
            Ok(Listen::Unix(PathBuf::from(rest)))
        } else if let Some(rest) = s.strip_prefix("tcp:") {
            if !rest.contains(':') {
                return Err(format!("tcp: needs host:port, got `{rest}`"));
            }
            Ok(Listen::Tcp(rest.to_string()))
        } else if s.is_empty() {
            Err("empty listen address".to_string())
        } else {
            Ok(Listen::Unix(PathBuf::from(s)))
        }
    }
}

impl std::fmt::Display for Listen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listen::Unix(p) => write!(f, "unix:{}", p.display()),
            Listen::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A bidirectional byte stream (unix or tcp).
pub trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// Connect to a listening daemon.
pub fn connect(addr: &Listen) -> io::Result<Box<dyn Conn>> {
    match addr {
        Listen::Unix(path) => Ok(Box::new(std::os::unix::net::UnixStream::connect(path)?)),
        Listen::Tcp(hostport) => Ok(Box::new(std::net::TcpStream::connect(hostport)?)),
    }
}

/// Connect, retrying until `budget` elapses (covers daemon startup races).
pub fn connect_with_retry(addr: &Listen, budget: Duration) -> io::Result<Box<dyn Conn>> {
    let deadline = std::time::Instant::now() + budget;
    loop {
        match connect(addr) {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the SIGTERM/SIGINT handler; polled by the accept loop.
    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Route SIGTERM (15) and SIGINT (2) to the drain flag. Uses libc's
    /// `signal` directly — std already links libc and the workspace is
    /// offline, so no signal crate.
    pub fn install() {
        unsafe {
            signal(15, on_term);
            signal(2, on_term);
        }
    }

    pub fn termed() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn termed() -> bool {
        false
    }
}

enum Listener {
    Unix(std::os::unix::net::UnixListener),
    Tcp(std::net::TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Box::new(stream))
            }
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true).ok();
                Ok(Box::new(stream))
            }
        }
    }
}

/// Run the daemon until drained. Returns after every accepted request has
/// been answered.
pub fn serve(engine: Engine, addr: &Listen) -> io::Result<()> {
    sig::install();
    let listener = match addr {
        Listen::Unix(path) => {
            if path.exists() {
                // A previous daemon's socket. If something is still
                // listening, refuse to fight over it; otherwise clean up.
                if std::os::unix::net::UnixStream::connect(path).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("another daemon is live on {}", path.display()),
                    ));
                }
                std::fs::remove_file(path)?;
            }
            let l = std::os::unix::net::UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l)
        }
        Listen::Tcp(hostport) => {
            let l = std::net::TcpListener::bind(hostport)?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };
    eprintln!("[maod] listening on {addr}");

    // Requests currently between frame-read and response-write, across all
    // connections; drain waits for this to reach zero so every accepted
    // request gets its response before the process exits.
    let active: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();

    loop {
        if sig::termed() {
            engine.begin_shutdown();
        }
        if engine.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok(conn) => {
                let engine = engine.clone();
                let active = active.clone();
                connections.push(std::thread::spawn(move || {
                    let _ = handle_connection(conn, engine, active);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("[maod] accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        connections.retain(|handle| !handle.is_finished());
    }

    // Drain: every request that made it past the frame reader finishes and
    // is answered. Connections idling in read_frame are abandoned — their
    // next request would be refused anyway.
    eprintln!(
        "[maod] draining ({} in flight)...",
        active.load(Ordering::SeqCst)
    );
    let drain_deadline = std::time::Instant::now() + Duration::from_secs(60);
    while active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    engine.join_workers();
    if let Listen::Unix(path) = addr {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("[maod] bye");
    Ok(())
}

fn handle_connection(
    mut conn: Box<dyn Conn>,
    engine: Engine,
    active: Arc<AtomicU64>,
) -> io::Result<()> {
    let max = engine.config().max_request_bytes;
    loop {
        let frame = match read_frame(&mut conn, max)? {
            Frame::Eof => return Ok(()),
            Frame::TooLarge(n) => {
                let response = Response::error(
                    ErrorKind::TooLarge,
                    format!("frame of {n} bytes exceeds the {max}-byte limit"),
                );
                write_frame(&mut conn, response.to_json_text().as_bytes())?;
                continue;
            }
            Frame::Payload(payload) => payload,
        };
        active.fetch_add(1, Ordering::SeqCst);
        let response = respond(&engine, &frame);
        let write_result = write_frame(&mut conn, response.to_json_text().as_bytes());
        active.fetch_sub(1, Ordering::SeqCst);
        write_result?;
    }
}

/// Decode and serve one request payload.
fn respond(engine: &Engine, payload: &[u8]) -> Response {
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => return Response::error(ErrorKind::BadRequest, "request is not utf-8"),
    };
    match Request::from_json_text(text) {
        Ok(request) => engine.handle(request),
        Err(message) => Response::error(ErrorKind::BadRequest, message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_parse_forms() {
        assert_eq!(
            Listen::parse("unix:/tmp/maod.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/maod.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7777").unwrap(),
            Listen::Tcp("127.0.0.1:7777".to_string())
        );
        assert_eq!(
            Listen::parse("/run/maod.sock").unwrap(),
            Listen::Unix(PathBuf::from("/run/maod.sock"))
        );
        assert!(Listen::parse("tcp:9999").is_err());
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("").is_err());
    }
}
