//! The socket transport: address parsing, listener setup, graceful drain.
//!
//! `maod` listens on a Unix-domain socket (the default — build pipelines
//! are machine-local) or a TCP address. On unix targets every connection
//! is multiplexed onto the event-driven [`crate::reactor`] loop:
//! `poll(2)` readiness, per-connection frame buffers, pipelined in-order
//! responses, idle timeouts. Compute is dispatched through the shared
//! [`Engine`]'s shard pool, so a slow request on one connection never
//! blocks another connection's requests. (Non-unix targets fall back to a
//! blocking thread-per-connection loop over TCP.)
//!
//! Shutdown is cooperative: a `shutdown` request or SIGTERM/SIGINT flips
//! the engine's drain flag; the loop stops taking connections, in-service
//! requests finish and their responses are written, then the listener
//! exits.

use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::time::Duration;

use crate::engine::Engine;

/// Where to listen / connect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP at this `host:port`.
    Tcp(String),
}

impl Listen {
    /// Parse `unix:/path`, `tcp:host:port`, or a bare path (unix).
    pub fn parse(s: &str) -> Result<Listen, String> {
        if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err("unix: needs a socket path".to_string());
            }
            Ok(Listen::Unix(PathBuf::from(rest)))
        } else if let Some(rest) = s.strip_prefix("tcp:") {
            if !rest.contains(':') {
                return Err(format!("tcp: needs host:port, got `{rest}`"));
            }
            Ok(Listen::Tcp(rest.to_string()))
        } else if s.is_empty() {
            Err("empty listen address".to_string())
        } else {
            Ok(Listen::Unix(PathBuf::from(s)))
        }
    }
}

impl std::fmt::Display for Listen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listen::Unix(p) => write!(f, "unix:{}", p.display()),
            Listen::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A bidirectional byte stream (unix or tcp).
pub trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// Connect to a listening daemon.
pub fn connect(addr: &Listen) -> io::Result<Box<dyn Conn>> {
    connect_with_io_timeout(addr, None)
}

/// Connect with read/write timeouts on the socket (None = block forever).
/// A stalled daemon then surfaces as a `WouldBlock`/`TimedOut` I/O error
/// instead of hanging the client.
pub fn connect_with_io_timeout(
    addr: &Listen,
    io_timeout: Option<Duration>,
) -> io::Result<Box<dyn Conn>> {
    match addr {
        Listen::Unix(path) => {
            let stream = std::os::unix::net::UnixStream::connect(path)?;
            stream.set_read_timeout(io_timeout)?;
            stream.set_write_timeout(io_timeout)?;
            Ok(Box::new(stream))
        }
        Listen::Tcp(hostport) => {
            let stream = std::net::TcpStream::connect(hostport)?;
            stream.set_read_timeout(io_timeout)?;
            stream.set_write_timeout(io_timeout)?;
            Ok(Box::new(stream))
        }
    }
}

/// Connect, retrying until `budget` elapses (covers daemon startup races).
pub fn connect_with_retry(addr: &Listen, budget: Duration) -> io::Result<Box<dyn Conn>> {
    let deadline = std::time::Instant::now() + budget;
    loop {
        match connect(addr) {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[cfg(unix)]
pub(crate) mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the SIGTERM/SIGINT handler; polled by the event loop.
    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Route SIGTERM (15) and SIGINT (2) to the drain flag. Uses libc's
    /// `signal` directly — std already links libc and the workspace is
    /// offline, so no signal crate.
    pub fn install() {
        unsafe {
            signal(15, on_term);
            signal(2, on_term);
        }
    }

    pub fn termed() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
pub(crate) mod sig {
    pub fn install() {}
    pub fn termed() -> bool {
        false
    }
}

/// Run the daemon until drained. Returns after every accepted request has
/// been answered.
#[cfg(unix)]
pub fn serve(engine: Engine, addr: &Listen) -> io::Result<()> {
    sig::install();
    let acceptor = match addr {
        Listen::Unix(path) => {
            if path.exists() {
                // A previous daemon's socket. If something is still
                // listening, refuse to fight over it; otherwise clean up.
                if std::os::unix::net::UnixStream::connect(path).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("another daemon is live on {}", path.display()),
                    ));
                }
                std::fs::remove_file(path)?;
            }
            let l = std::os::unix::net::UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            crate::reactor::Acceptor::Unix(l)
        }
        Listen::Tcp(hostport) => {
            let l = std::net::TcpListener::bind(hostport)?;
            l.set_nonblocking(true)?;
            crate::reactor::Acceptor::Tcp(l)
        }
    };
    eprintln!(
        "[maod] listening on {addr} ({} shards, cache {})",
        engine.shards(),
        match &engine.config().cache_dir {
            Some(dir) => format!("dir {}", dir.display()),
            None => "memory-only".to_string(),
        }
    );
    let result = crate::reactor::run(engine, acceptor);
    if let Listen::Unix(path) = addr {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("[maod] bye");
    result
}

/// Blocking thread-per-connection fallback for targets without `poll(2)`
/// (TCP only).
#[cfg(not(unix))]
pub fn serve(engine: Engine, addr: &Listen) -> io::Result<()> {
    use crate::protocol::{read_frame, write_frame, ErrorKind, Frame, Request, Response};

    sig::install();
    let listener = match addr {
        Listen::Tcp(hostport) => std::net::TcpListener::bind(hostport)?,
        Listen::Unix(_) => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets need a unix target; use tcp:host:port",
            ))
        }
    };
    listener.set_nonblocking(true)?;
    eprintln!("[maod] listening on {addr}");
    loop {
        if sig::termed() {
            engine.begin_shutdown();
        }
        if engine.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((mut conn, _)) => {
                let engine = engine.clone();
                std::thread::spawn(move || {
                    let max = engine.config().max_request_bytes;
                    loop {
                        let frame = match read_frame(&mut conn, max) {
                            Ok(Frame::Eof) | Err(_) => return,
                            Ok(Frame::TooLarge(n)) => {
                                let response = Response::error(
                                    ErrorKind::TooLarge,
                                    format!("frame of {n} bytes exceeds the {max}-byte limit"),
                                );
                                if write_frame(&mut conn, response.to_json_text().as_bytes())
                                    .is_err()
                                {
                                    return;
                                }
                                continue;
                            }
                            Ok(Frame::Payload(payload)) => payload,
                        };
                        let response = match std::str::from_utf8(&frame)
                            .map_err(|_| "request is not utf-8".to_string())
                            .and_then(Request::from_json_text)
                        {
                            Ok(request) => engine.handle(request),
                            Err(message) => Response::error(ErrorKind::BadRequest, message),
                        };
                        if write_frame(&mut conn, response.to_json_text().as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("[maod] accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    engine.join_workers();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_parse_forms() {
        assert_eq!(
            Listen::parse("unix:/tmp/maod.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/maod.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7777").unwrap(),
            Listen::Tcp("127.0.0.1:7777".to_string())
        );
        assert_eq!(
            Listen::parse("/run/maod.sock").unwrap(),
            Listen::Unix(PathBuf::from("/run/maod.sock"))
        );
        assert!(Listen::parse("tcp:9999").is_err());
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("").is_err());
    }
}
