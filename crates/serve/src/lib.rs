//! `maod` — MAO as a persistent optimization service.
//!
//! The paper positions MAO as an assembly→assembly filter inside build
//! pipelines (§2); the one-shot `mao` binary re-parses and re-analyzes
//! every unit from scratch on every invocation. This crate keeps the
//! optimizer resident: a daemon (`mao serve`) accepts optimization
//! requests over a Unix-domain or TCP socket using a length-prefixed JSON
//! protocol, dispatches them to a worker pool built on the parallel
//! function-level driver, and layers on a content-addressed result cache,
//! per-request isolation (panics, timeouts, size limits), and a `stats`
//! endpoint. `mao client` and `mao batch` are the matching front ends;
//! see DESIGN.md §"Service architecture" for the protocol.
//!
//! Module map:
//!
//! * [`json`] — minimal std-only JSON value/parser/writer (offline build,
//!   no serde).
//! * [`protocol`] — request/response shapes and the frame codec.
//! * [`result_cache`] — content-addressed tiered cache of whole-request
//!   results (memory LRU over an optional persistent tier).
//! * [`store`] — the generic content-addressed artifact store every
//!   persistent tier shares: atomic writes, validated evict-never-serve
//!   reads, segmented scan-resistant LRU eviction, and a compact index
//!   file so startup does not stat the whole directory.
//! * [`disk_cache`] — the persistent result tier: the self-verifying
//!   `.mc` frame codec over an [`store::ArtifactStore`].
//! * [`layout_disk`] — the persistent layout tier: solved branch-relaxation
//!   layouts as self-verifying `.ml` frames over an artifact store.
//! * [`snapshot_store`] — the front-end snapshot tier: binary IR snapshots
//!   (`mao_asm::snapshot`) keyed by input content hash, `.msnap` files
//!   byte-identical to `mao --emit-snapshot` output.
//! * [`engine`] — transport-independent request handling: caching,
//!   admission control, sharded dispatch, `catch_unwind` isolation,
//!   timeouts, stats.
//! * [`pool`] — the sharded worker pool; each shard owns its analysis
//!   cache.
//! * [`reactor`] — the event-driven connection layer: `poll(2)` readiness,
//!   per-connection frame buffers, pipelining, idle timeouts (unix only).
//! * [`server`] — listener setup, address parsing, SIGTERM drain.
//! * [`client`] — framing client used by `mao client`.
//! * [`batch`] — newline-delimited JSON over stdin/stdout.
//! * [`loadgen`] — replay load generator driving mixed hot/cold/malformed
//!   traffic with p50/p99 gates from the service histograms.
//! * [`stats`] — cumulative service counters and the consolidated
//!   [`StatsSnapshot`]; counters live in the engine's `mao_obs::Metrics`
//!   registry so the `metrics` request (Prometheus text) and the `stats`
//!   request (JSON) read the same cells.

pub mod batch;
pub mod client;
pub mod disk_cache;
pub mod engine;
pub mod json;
pub mod layout_disk;
pub mod loadgen;
pub mod pool;
pub mod protocol;
#[cfg(unix)]
pub mod reactor;
pub mod result_cache;
pub mod server;
pub mod snapshot_store;
pub mod stats;
pub mod store;

pub use batch::run_batch;
pub use client::Client;
pub use disk_cache::{DiskCache, DiskCacheConfig, DiskCacheStats, DISK_FORMAT_VERSION};
pub use engine::{Engine, EngineConfig};
pub use json::Json;
pub use layout_disk::DiskLayoutStore;
pub use protocol::{
    CacheOutcome, ErrorKind, OptimizeOutcome, OptimizeRequest, Request, Response, Timings,
};
pub use result_cache::{request_key, CacheTier, RequestKey, ResultCache, ResultCacheStats};
pub use server::{connect, serve, Listen};
pub use snapshot_store::SnapshotStore;
pub use stats::{
    AdmissionStats, CostModelStats, RequestCounters, ServerStats, ShardStats, StatsSnapshot,
    SuperoptStats, STATS_SCHEMA_VERSION,
};
pub use store::{ArtifactStore, StoreConfig, StoreStats};
