//! Generic content-addressed artifact store: one file per 128-bit key,
//! segmented scan-resistant LRU eviction, and a compact index file so a
//! restart does not stat the whole directory.
//!
//! [`ArtifactStore`] is the shared disk machinery under every persistent
//! tier in this repo — optimize results (`.mc`, [`crate::disk_cache`]),
//! solved layouts (`.ml`, [`crate::layout_disk`]), and front-end IR
//! snapshots (`.msnap`, [`crate::snapshot_store`]). Each kind brings its own
//! self-verifying payload codec (magic, version, embedded key, checksum);
//! the store handles the parts they all need identically:
//!
//! * **Atomic writes** — payloads land in a `.tmp-<pid>-<n>` sibling and are
//!   `rename(2)`d into place, so readers never observe a torn entry and
//!   racing instances last-write-win identical content.
//! * **Validated reads, evict-never-serve** — [`ArtifactStore::get_with`]
//!   runs the caller's verifier over the file bytes; on any failure the
//!   entry is deleted and counted as corrupt, never returned.
//! * **Segmented LRU (SLRU) eviction** — entries start in a *probation*
//!   segment; a re-access promotes to *protected* (capped at
//!   [`PROTECTED_SHARE`] of the byte budget, demoting its own oldest
//!   members back to probation). Victims come from probation first, so a
//!   one-pass cold scan — a batch build touching thousands of keys once —
//!   churns through probation without displacing the re-referenced working
//!   set. This replaces the whole-store LRU the result cache used through
//!   PR 7.
//! * **Index file** — `store.idx` persists `{key, bytes, stamp, segment}`
//!   rows so reopening a large store costs one small read instead of a
//!   directory walk + per-file stat. The index is an accounting cache, not
//!   a source of truth: a missing/corrupt/stale index falls back to the
//!   directory scan (mtime-seeded stamps, everything in probation), and a
//!   key missing from the index is still served straight off its file and
//!   re-adopted on first access. It is rewritten atomically every
//!   [`INDEX_PERSIST_EVERY`] mutations and on drop.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Index file name inside the store directory.
const INDEX_NAME: &str = "store.idx";
/// Index file magic.
const INDEX_MAGIC: &[u8; 8] = b"MAOIDX\0\x01";
/// Index format version.
const INDEX_VERSION: u32 = 1;
/// Rewrite the index after this many mutations (puts/evictions/promotions
/// are cheap; the rewrite is O(entries), so batch it).
const INDEX_PERSIST_EVERY: u32 = 64;
/// Fraction of the byte budget the protected segment may hold: 4/5.
const PROTECTED_SHARE: (u64, u64) = (4, 5);

/// Construction parameters for an [`ArtifactStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the entries (created if missing).
    pub dir: PathBuf,
    /// Total byte budget across entries (0 = unbounded).
    pub max_bytes: u64,
    /// Force file + directory syncs on every write.
    pub fsync: bool,
    /// Entry file extension (identifies the artifact kind, e.g. `"mc"`).
    pub ext: &'static str,
}

impl StoreConfig {
    /// Defaults: unbounded, no fsync.
    pub fn new(dir: impl Into<PathBuf>, ext: &'static str) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            max_bytes: 0,
            fsync: false,
            ext,
        }
    }
}

/// Counters, cumulative over this instance's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from disk (validator accepted).
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries deleted to respect the byte budget.
    pub evictions: u64,
    /// Corrupt/truncated/stale entries deleted instead of served.
    pub corrupt: u64,
    /// Bytes currently resident (as indexed by this instance).
    pub bytes: u64,
    /// Entries currently resident (as indexed by this instance).
    pub entries: u64,
    /// Bytes in the protected SLRU segment.
    pub protected_bytes: u64,
    /// Configured byte budget (0 = unbounded).
    pub max_bytes: u64,
    /// Did startup recover state from the index file (vs a directory scan)?
    pub opened_from_index: bool,
}

/// Registry mirrors of the counters (attached at most once).
struct StoreMetrics {
    hits: mao::obs::Counter,
    misses: mao::obs::Counter,
    insertions: mao::obs::Counter,
    evictions: mao::obs::Counter,
    corrupt: mao::obs::Counter,
}

struct IndexEntry {
    bytes: u64,
    /// Monotonic access stamp; seeded from mtime order on a scan startup.
    stamp: u64,
    /// SLRU segment: probation (false) or protected (true).
    protected: bool,
}

struct Index {
    map: HashMap<u128, IndexEntry>,
    clock: u64,
    total_bytes: u64,
    protected_bytes: u64,
    /// Mutations since the last index-file write.
    dirty: u32,
    opened_from_index: bool,
}

impl Index {
    /// Record an access (insert or refresh). New entries enter probation;
    /// `promote` moves an existing entry to the protected segment.
    fn touch(&mut self, key: u128, bytes: u64, promote: bool) {
        self.clock += 1;
        let stamp = self.clock;
        self.dirty += 1;
        match self.map.get_mut(&key) {
            Some(entry) => {
                self.total_bytes = self.total_bytes - entry.bytes + bytes;
                if entry.protected {
                    self.protected_bytes = self.protected_bytes - entry.bytes + bytes;
                } else if promote {
                    entry.protected = true;
                    self.protected_bytes += bytes;
                }
                entry.bytes = bytes;
                entry.stamp = stamp;
            }
            None => {
                self.total_bytes += bytes;
                self.map.insert(
                    key,
                    IndexEntry {
                        bytes,
                        stamp,
                        protected: false,
                    },
                );
            }
        }
    }

    /// Keep the protected segment within its share of the budget by
    /// demoting its oldest members back to probation (no deletion — they
    /// just become eviction candidates again).
    fn rebalance(&mut self, max_bytes: u64) {
        if max_bytes == 0 {
            return;
        }
        let cap = max_bytes * PROTECTED_SHARE.0 / PROTECTED_SHARE.1;
        while self.protected_bytes > cap {
            let Some(oldest) = self
                .map
                .iter()
                .filter(|(_, e)| e.protected)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            else {
                break;
            };
            let entry = self.map.get_mut(&oldest).expect("key just found");
            entry.protected = false;
            self.protected_bytes -= entry.bytes;
            self.dirty += 1;
        }
    }

    /// Drop a key from the index (file already gone or going).
    fn forget(&mut self, key: u128) {
        if let Some(entry) = self.map.remove(&key) {
            self.total_bytes -= entry.bytes;
            if entry.protected {
                self.protected_bytes -= entry.bytes;
            }
            self.dirty += 1;
        }
    }

    /// Select and forget victims until `total_bytes <= budget`: oldest
    /// probation entries first, oldest protected entries only once
    /// probation is exhausted. The just-written `keep` key is never chosen
    /// — a single entry larger than the budget stays resident rather than
    /// thrashing.
    fn evict_plan(&mut self, budget: u64, keep: u128) -> Vec<u128> {
        let mut victims = Vec::new();
        while self.total_bytes > budget {
            let victim = self
                .map
                .iter()
                .filter(|(k, e)| **k != keep && !e.protected)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .or_else(|| {
                    self.map
                        .iter()
                        .filter(|(k, _)| **k != keep)
                        .min_by_key(|(_, e)| e.stamp)
                        .map(|(k, _)| *k)
                });
            let Some(victim) = victim else { break };
            self.forget(victim);
            victims.push(victim);
        }
        victims
    }
}

/// The store. Thread-safe; cheap operations hold a short index lock, file
/// I/O runs outside it where possible.
pub struct ArtifactStore {
    config: StoreConfig,
    index: Mutex<Index>,
    tmp_counter: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    metrics: OnceLock<StoreMetrics>,
}

impl ArtifactStore {
    /// Open (creating if needed) the store directory. State comes from the
    /// index file when present and valid; otherwise from a directory scan.
    pub fn open(config: StoreConfig) -> io::Result<ArtifactStore> {
        std::fs::create_dir_all(&config.dir)?;
        let index = match read_index(&config.dir.join(INDEX_NAME)) {
            Some(rows) => {
                let mut map = HashMap::with_capacity(rows.len());
                let mut total_bytes = 0u64;
                let mut protected_bytes = 0u64;
                let mut clock = 0u64;
                for (key, entry) in rows {
                    total_bytes += entry.bytes;
                    if entry.protected {
                        protected_bytes += entry.bytes;
                    }
                    clock = clock.max(entry.stamp);
                    map.insert(key, entry);
                }
                Index {
                    map,
                    clock,
                    total_bytes,
                    protected_bytes,
                    dirty: 0,
                    opened_from_index: true,
                }
            }
            None => scan_directory(&config)?,
        };
        Ok(ArtifactStore {
            index: Mutex::new(index),
            config,
            tmp_counter: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            metrics: OnceLock::new(),
        })
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Mirror the counters into `metrics` as `{prefix}_{hits,misses,
    /// insertions,evictions,corrupt}_total`. First attachment wins.
    pub fn attach_metrics(&self, metrics: &mao::obs::Metrics, prefix: &str) {
        let _ = self.metrics.set(StoreMetrics {
            hits: metrics.counter(&format!("{prefix}_hits_total")),
            misses: metrics.counter(&format!("{prefix}_misses_total")),
            insertions: metrics.counter(&format!("{prefix}_insertions_total")),
            evictions: metrics.counter(&format!("{prefix}_evictions_total")),
            corrupt: metrics.counter(&format!("{prefix}_corrupt_total")),
        });
    }

    /// Path of `key`'s entry file.
    pub fn path_of(&self, key: u128) -> PathBuf {
        self.config
            .dir
            .join(format!("{key:032x}.{}", self.config.ext))
    }

    /// Look up an entry. `validate` receives the file bytes and returns
    /// whether they decode as a sound artifact for `key`; on `false` the
    /// file is deleted and counted corrupt — evicted, never served. A hit
    /// refreshes (and promotes) the entry's SLRU position.
    pub fn get_with(&self, key: u128, validate: impl FnOnce(&[u8]) -> bool) -> Option<Vec<u8>> {
        let path = self.path_of(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                // Not present — or present under another instance and
                // vanished mid-read; either way a miss.
                self.count_miss();
                self.note_mutation(|index| index.forget(key));
                return None;
            }
        };
        if validate(&bytes) {
            self.note_mutation(|index| {
                index.touch(key, bytes.len() as u64, true);
                index.rebalance(self.config.max_bytes);
            });
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.hits.inc();
            }
            Some(bytes)
        } else {
            // Truncated, corrupted, stale version, or wrong key.
            let _ = std::fs::remove_file(&path);
            self.note_mutation(|index| index.forget(key));
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.corrupt.inc();
            }
            self.count_miss();
            None
        }
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.misses.inc();
        }
    }

    /// Write an entry (atomic tmp+rename), then evict past the byte budget.
    /// Write errors are swallowed — the disk tier is an accelerator, not a
    /// source of truth — but accounting stays exact for what was written.
    pub fn put(&self, key: u128, bytes: &[u8]) {
        let tmp = self.config.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let final_path = self.path_of(key);
        let written = (|| -> io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            if self.config.fsync {
                file.sync_all()?;
            }
            drop(file);
            std::fs::rename(&tmp, &final_path)?;
            if self.config.fsync {
                if let Ok(dir) = std::fs::File::open(&self.config.dir) {
                    let _ = dir.sync_all();
                }
            }
            Ok(())
        })();
        if written.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.insertions.inc();
        }
        let victims: Vec<u128> = {
            let mut index = self.index.lock().unwrap();
            index.touch(key, bytes.len() as u64, false);
            let victims = if self.config.max_bytes == 0 {
                Vec::new()
            } else {
                index.evict_plan(self.config.max_bytes, key)
            };
            self.maybe_persist(&mut index);
            victims
        };
        for victim in victims {
            let _ = std::fs::remove_file(self.path_of(victim));
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.evictions.inc();
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        let index = self.index.lock().unwrap();
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes: index.total_bytes,
            entries: index.map.len() as u64,
            protected_bytes: index.protected_bytes,
            max_bytes: self.config.max_bytes,
            opened_from_index: index.opened_from_index,
        }
    }

    /// Write the index file now (atomic tmp+rename). Also runs on drop and
    /// automatically every [`INDEX_PERSIST_EVERY`] mutations.
    pub fn persist_index(&self) -> io::Result<()> {
        let mut index = self.index.lock().unwrap();
        self.write_index(&index)?;
        index.dirty = 0;
        Ok(())
    }

    /// Run `f` under the index lock and persist if the mutation budget is
    /// spent.
    fn note_mutation(&self, f: impl FnOnce(&mut Index)) {
        let mut index = self.index.lock().unwrap();
        f(&mut index);
        self.maybe_persist(&mut index);
    }

    fn maybe_persist(&self, index: &mut Index) {
        if index.dirty >= INDEX_PERSIST_EVERY {
            if self.write_index(index).is_ok() {
                index.dirty = 0;
            }
        }
    }

    fn write_index(&self, index: &Index) -> io::Result<()> {
        let mut body = Vec::with_capacity(index.map.len() * 33 + 16);
        body.extend_from_slice(&(index.map.len() as u64).to_le_bytes());
        for (key, entry) in &index.map {
            body.extend_from_slice(&key.to_le_bytes());
            body.extend_from_slice(&entry.bytes.to_le_bytes());
            body.extend_from_slice(&entry.stamp.to_le_bytes());
            body.push(u8::from(entry.protected));
        }
        let mut out = Vec::with_capacity(body.len() + 24);
        out.extend_from_slice(INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        let tmp = self.config.dir.join(format!(
            ".tmp-idx-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> io::Result<()> {
            std::fs::write(&tmp, &out)?;
            std::fs::rename(&tmp, self.config.dir.join(INDEX_NAME))
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("dir", &self.config.dir)
            .field("ext", &self.config.ext)
            .finish_non_exhaustive()
    }
}

impl Drop for ArtifactStore {
    fn drop(&mut self) {
        let dirty = self.index.lock().map(|i| i.dirty > 0).unwrap_or(false);
        if dirty {
            let _ = self.persist_index();
        }
    }
}

/// Parse the index file; `None` on any structural problem (the caller falls
/// back to a directory scan — the index is never trusted over reality
/// anyway, since gets read the entry files themselves).
fn read_index(path: &Path) -> Option<Vec<(u128, IndexEntry)>> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < 12 + 8 + 8 || &bytes[..8] != INDEX_MAGIC {
        return None;
    }
    if u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != INDEX_VERSION {
        return None;
    }
    let body = &bytes[12..bytes.len() - 8];
    let checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a64(body) != checksum {
        return None;
    }
    let count = u64::from_le_bytes(body[..8].try_into().unwrap()) as usize;
    let rows = &body[8..];
    if rows.len() != count.checked_mul(33)? {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for row in rows.chunks_exact(33) {
        out.push((
            u128::from_le_bytes(row[..16].try_into().unwrap()),
            IndexEntry {
                bytes: u64::from_le_bytes(row[16..24].try_into().unwrap()),
                stamp: u64::from_le_bytes(row[24..32].try_into().unwrap()),
                protected: row[32] != 0,
            },
        ));
    }
    Some(out)
}

/// Fallback startup: walk the directory, seed stamps from mtime order, put
/// everything in probation, and clean up abandoned tmp files.
fn scan_directory(config: &StoreConfig) -> io::Result<Index> {
    let suffix = format!(".{}", config.ext);
    let mut entries: Vec<(u128, u64, std::time::SystemTime)> = Vec::new();
    for entry in std::fs::read_dir(&config.dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with(".tmp-") {
            // A crashed writer's leftover; safe to delete once clearly
            // abandoned (in-progress writes are milliseconds old).
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .map(|age| age.as_secs() > 300)
                .unwrap_or(false);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
            continue;
        }
        let Some(key) = name
            .strip_suffix(&suffix)
            .filter(|hex| hex.len() == 32)
            .and_then(|hex| u128::from_str_radix(hex, 16).ok())
        else {
            continue;
        };
        let Ok(meta) = entry.metadata() else { continue };
        let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
        entries.push((key, meta.len(), mtime));
    }
    // Oldest files get the lowest stamps.
    entries.sort_by_key(|(_, _, mtime)| *mtime);
    let mut map = HashMap::with_capacity(entries.len());
    let mut total_bytes = 0u64;
    for (clock, (key, bytes, _)) in entries.iter().enumerate() {
        total_bytes += bytes;
        map.insert(
            *key,
            IndexEntry {
                bytes: *bytes,
                stamp: clock as u64 + 1,
                protected: false,
            },
        );
    }
    Ok(Index {
        clock: map.len() as u64,
        map,
        total_bytes,
        protected_bytes: 0,
        dirty: 0,
        opened_from_index: false,
    })
}

/// Byte-wise FNV-1a (index file only; entry payloads checksum themselves).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mao-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn store(dir: &Path, max_bytes: u64) -> ArtifactStore {
        ArtifactStore::open(StoreConfig {
            dir: dir.to_path_buf(),
            max_bytes,
            fsync: false,
            ext: "art",
        })
        .unwrap()
    }

    /// Fixed-size payload so byte budgets translate into entry counts.
    fn payload(tag: u8) -> Vec<u8> {
        vec![tag; 100]
    }

    #[test]
    fn put_get_roundtrip_and_validation() {
        let dir = tempdir("roundtrip");
        let s = store(&dir, 0);
        assert!(s.get_with(7, |_| true).is_none());
        s.put(7, &payload(1));
        assert_eq!(s.get_with(7, |_| true).unwrap(), payload(1));
        let stats = s.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_validation_evicts_never_serves() {
        let dir = tempdir("reject");
        let s = store(&dir, 0);
        s.put(7, &payload(1));
        assert!(s.get_with(7, |_| false).is_none());
        assert!(!s.path_of(7).exists(), "rejected entry deleted");
        assert!(s.get_with(7, |_| true).is_none(), "gone for good");
        let stats = s.stats();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slru_scan_does_not_displace_working_set() {
        let dir = tempdir("slru");
        // Budget: 4 entries. Working set: keys 1 and 2, re-referenced so
        // they sit in the protected segment.
        let s = store(&dir, 420);
        s.put(1, &payload(1));
        s.put(2, &payload(2));
        assert!(s.get_with(1, |_| true).is_some()); // promote
        assert!(s.get_with(2, |_| true).is_some()); // promote
                                                    // One-pass cold scan: six keys touched once each. Under plain LRU
                                                    // this would flush keys 1 and 2; under SLRU the scan churns through
                                                    // probation only.
        for key in 10..16 {
            s.put(key, &payload(key as u8));
        }
        assert!(
            s.get_with(1, |_| true).is_some(),
            "protected entry 1 survived the scan"
        );
        assert!(
            s.get_with(2, |_| true).is_some(),
            "protected entry 2 survived the scan"
        );
        assert!(s.stats().evictions >= 4, "scan evicted scan entries");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn protected_segment_is_capped() {
        let dir = tempdir("cap");
        // Budget 500 bytes -> protected cap 400. Promote five 100-byte
        // entries; the cap forces at least one demotion.
        let s = store(&dir, 500);
        for key in 1..=5 {
            s.put(key, &payload(key as u8));
            assert!(s.get_with(key, |_| true).is_some());
        }
        let stats = s.stats();
        assert!(
            stats.protected_bytes <= 400,
            "protected {} > cap 400",
            stats.protected_bytes
        );
        assert_eq!(stats.entries, 5, "demotion does not delete");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_prefers_probation() {
        let dir = tempdir("prefer");
        let s = store(&dir, 300);
        s.put(1, &payload(1));
        assert!(s.get_with(1, |_| true).is_some()); // 1 -> protected
        s.put(2, &payload(2)); // probation, older
        s.put(3, &payload(3)); // probation, newer
        s.put(4, &payload(4)); // over budget: evict probation-oldest = 2
        assert!(s.get_with(2, |_| true).is_none(), "probation LRU evicted");
        assert!(s.get_with(1, |_| true).is_some(), "protected survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_file_restores_state_without_scan() {
        let dir = tempdir("index");
        {
            let s = store(&dir, 0);
            s.put(1, &payload(1));
            s.put(2, &payload(2));
            assert!(s.get_with(1, |_| true).is_some()); // protect 1
        } // drop persists the index
        assert!(dir.join(INDEX_NAME).exists());
        // Plant an alien entry file the index does not know about: a
        // scan-based startup would count it, an index-based one must not.
        std::fs::write(dir.join(format!("{:032x}.art", 99u128)), payload(9)).unwrap();
        let s = store(&dir, 0);
        let stats = s.stats();
        assert!(stats.opened_from_index);
        assert_eq!(stats.entries, 2, "index state, not a directory scan");
        assert_eq!(stats.protected_bytes, 100, "segment survived restart");
        // The alien file is still *served* on access (index is accounting,
        // not truth) and adopted into the index.
        assert!(s.get_with(99, |_| true).is_some());
        assert_eq!(s.stats().entries, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_falls_back_to_scan() {
        let dir = tempdir("idx-corrupt");
        {
            let s = store(&dir, 0);
            s.put(1, &payload(1));
            s.put(2, &payload(2));
        }
        let idx = dir.join(INDEX_NAME);
        let mut bytes = std::fs::read(&idx).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&idx, &bytes).unwrap();
        let s = store(&dir, 0);
        let stats = s.stats();
        assert!(!stats.opened_from_index, "fell back to the scan");
        assert_eq!(stats.entries, 2, "scan found both entries");
        assert!(s.get_with(1, |_| true).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_scans_and_seeds_from_mtime() {
        let dir = tempdir("idx-missing");
        {
            let s = store(&dir, 0);
            s.put(1, &payload(1));
        }
        std::fs::remove_file(dir.join(INDEX_NAME)).unwrap();
        let s = store(&dir, 0);
        assert!(!s.stats().opened_from_index);
        assert_eq!(s.stats().entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_instances_share_a_directory() {
        let dir = tempdir("share");
        let a = store(&dir, 0);
        let b = store(&dir, 0);
        a.put(5, &payload(5));
        // B never wrote this key but reads A's entry.
        assert_eq!(b.get_with(5, |_| true).unwrap(), payload(5));
        assert_eq!(b.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
