//! End-to-end telemetry through the service: the `metrics` request must
//! serve valid Prometheus text whose counters move with real traffic, the
//! `stats` response must carry the schema version, and the Chrome-trace
//! export must parse as the JSON shape `chrome://tracing` expects.

use mao::obs::{prom, Obs, Span};
use mao_serve::engine::{Engine, EngineConfig};
use mao_serve::json::Json;
use mao_serve::protocol::{OptimizeRequest, Request, Response};
use mao_serve::STATS_SCHEMA_VERSION;

const INPUT: &str = "\t.type\tf, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L1\n\taddl $3, %eax\n\taddl $4, %eax\n.L1:\n\tret\n";

fn engine() -> Engine {
    Engine::new(EngineConfig {
        shards: 2,
        ..EngineConfig::default()
    })
}

fn optimize(asm: &str) -> Request {
    Request::Optimize(OptimizeRequest {
        asm: asm.into(),
        passes: "REDTEST:ADDADD".into(),
        jobs: None,
        timeout_ms: None,
        use_cache: true,
        isa: mao::isa::IsaId::X86_64,
    })
}

fn metrics_text(engine: &Engine) -> String {
    match engine.handle(Request::Metrics) {
        Response::Metrics(text) => text,
        other => panic!("expected metrics response, got {other:?}"),
    }
}

/// Extract the unlabeled sample value of `family` from exposition text.
fn sample(text: &str, family: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(&format!("{family} ")))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn metrics_are_valid_prometheus_and_track_cache_traffic() {
    let engine = engine();
    let cold = metrics_text(&engine);
    prom::validate(&cold).expect("cold scrape validates");
    assert_eq!(sample(&cold, "mao_result_cache_hits_total"), Some(0));

    let _ = engine.handle(optimize(INPUT)); // miss
    let _ = engine.handle(optimize(INPUT)); // hit
    let warm = metrics_text(&engine);
    prom::validate(&warm).expect("warm scrape validates");
    assert_eq!(sample(&warm, "mao_result_cache_hits_total"), Some(1));
    assert_eq!(sample(&warm, "mao_result_cache_misses_total"), Some(1));
    assert_eq!(sample(&warm, "mao_functions_processed_total"), Some(2));
    assert!(
        warm.contains("# TYPE mao_request_service_us histogram"),
        "{warm}"
    );
    assert!(
        warm.contains("mao_pass_invocations_total{pass=\"REDTEST\"} 1"),
        "{warm}"
    );
    assert!(warm.contains("mao_uptime_seconds"), "{warm}");
}

#[test]
fn metrics_response_json_carries_schema_version() {
    let engine = engine();
    let json = engine.handle(Request::Metrics).to_json();
    assert_eq!(json.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        json.get("schema_version").unwrap().as_u64(),
        Some(STATS_SCHEMA_VERSION)
    );
    // The payload round-trips through the JSON layer intact.
    let text = json.get("metrics").unwrap().as_str().unwrap();
    prom::validate(text).expect("payload survives JSON transport");
}

#[test]
fn stats_snapshot_carries_schema_version_and_spans() {
    let engine = engine();
    let _ = engine.handle(optimize(INPUT));
    let snap = engine.snapshot();
    assert_eq!(snap.schema_version, STATS_SCHEMA_VERSION);
    assert_eq!(snap.requests.ok, 1);
    assert!(
        snap.span_totals
            .iter()
            .any(|t| t.cat == "request" && t.count == 1),
        "{:?}",
        snap.span_totals
    );
    assert!(snap.span_totals.iter().any(|t| t.cat == "pass"));
    // Rendered and typed views agree.
    let json = snap.to_json();
    assert_eq!(
        json.get("requests").unwrap().get("ok").unwrap().as_u64(),
        Some(1)
    );
}

#[test]
fn chrome_trace_export_is_wellformed_json() {
    let obs = Obs::recording();
    {
        let mut outer = Span::enter(&obs.recorder, "pass", "DCE");
        outer.counter("transformations", 2);
        let _inner = Span::enter(&obs.recorder, "function", "f");
    }
    let trace = Json::parse(&obs.recorder.chrome_trace_json()).expect("chrome trace parses");
    let events = trace.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), 2);
    for event in events {
        assert_eq!(event.get("ph").unwrap().as_str(), Some("X"));
        for key in ["name", "cat", "ts", "dur", "pid", "tid"] {
            assert!(event.get(key).is_some(), "event missing `{key}`");
        }
    }
    assert!(events
        .iter()
        .any(|e| e.get("name").unwrap().as_str() == Some("DCE")
            && e.get("args").unwrap().get("transformations").is_some()));
}
