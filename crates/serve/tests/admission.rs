//! Integration tests of admission control: flooding a deliberately tiny
//! engine past its high-water mark must shed with structured `BUSY`
//! responses, keep the pending gauge bounded, and account for every
//! offered request (`offered = accepted + shed`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;

use mao_serve::engine::{Engine, EngineConfig};
use mao_serve::protocol::{ErrorKind, OptimizeRequest, Request, Response};

/// A request that holds its shard for `ms` milliseconds without panicking:
/// the PANIC fault-injection pass sleeps, then looks for a function that
/// does not exist.
fn slow_request(tag: usize, ms: u64) -> Request {
    Request::Optimize(OptimizeRequest {
        asm: format!("# admission {tag}\nnop\n"),
        passes: format!("PANIC=sleep_ms[{ms}],func[nosuch]"),
        jobs: None,
        timeout_ms: Some(0),
        use_cache: false,
        isa: mao::isa::IsaId::X86_64,
    })
}

fn flood(engine: &Engine, requests: usize, ms: u64) -> (u64, u64, u64) {
    let (tx, rx) = channel::<&'static str>();
    let peak_pending = AtomicU64::new(0);
    for i in 0..requests {
        let tx = tx.clone();
        let _ = engine.handle_async(slow_request(i, ms), move |response| {
            let kind = match response {
                Response::Optimized { .. } => "ok",
                Response::Error {
                    kind: ErrorKind::Busy,
                    ..
                } => "busy",
                _ => "other",
            };
            let _ = tx.send(kind);
        });
        peak_pending.fetch_max(engine.pending(), Ordering::SeqCst);
    }
    drop(tx);
    let (mut ok, mut busy, mut other) = (0u64, 0u64, 0u64);
    while let Ok(kind) = rx.recv() {
        match kind {
            "ok" => ok += 1,
            "busy" => busy += 1,
            _ => other += 1,
        }
    }
    assert_eq!(other, 0, "flood saw unexpected response kinds");
    let peak = peak_pending.load(Ordering::SeqCst);
    (ok, busy, peak)
}

#[test]
fn flood_past_high_water_sheds_busy_and_reconciles() {
    let max_pending = 4usize;
    let requests = 48usize;
    let engine = Engine::new(EngineConfig {
        shards: 1,
        max_pending,
        timeout_ms: 0,
        ..EngineConfig::default()
    });

    let (ok, busy, peak) = flood(&engine, requests, 25);
    assert_eq!(ok + busy, requests as u64, "every request was answered");
    assert!(busy > 0, "the burst must outrun a 4-deep queue");
    assert!(ok > 0, "admitted requests still complete");
    assert!(
        peak <= max_pending as u64,
        "pending gauge peaked at {peak}, above the {max_pending} mark"
    );

    let admission = engine.snapshot().admission;
    assert_eq!(
        admission.offered,
        admission.accepted + admission.shed,
        "admission counters must reconcile exactly: {admission:?}"
    );
    assert_eq!(admission.offered, requests as u64);
    assert_eq!(admission.shed, busy, "every shed is a BUSY response");
    assert_eq!(admission.accepted, ok, "every accept completed");
    assert_eq!(admission.pending, 0, "queue drains after the flood");
    engine.join_workers();
}

#[test]
fn zero_high_water_mark_disables_shedding() {
    let engine = Engine::new(EngineConfig {
        shards: 1,
        max_pending: 0,
        timeout_ms: 0,
        ..EngineConfig::default()
    });
    let (ok, busy, _) = flood(&engine, 16, 5);
    assert_eq!((ok, busy), (16, 0), "unbounded admission never sheds");
    let admission = engine.snapshot().admission;
    assert_eq!(admission.shed, 0);
    assert_eq!(admission.offered, admission.accepted);
    engine.join_workers();
}

#[test]
fn busy_response_is_structured_and_retryable() {
    let engine = Engine::new(EngineConfig {
        shards: 1,
        max_pending: 1,
        timeout_ms: 0,
        ..EngineConfig::default()
    });
    let (_, busy, _) = flood(&engine, 12, 25);
    assert!(busy > 0);

    // Once the flood drains, the same engine admits new work again: a shed
    // is a backpressure signal, not a failure state.
    let response = engine.handle(slow_request(999, 1));
    assert!(
        matches!(response, Response::Optimized { .. }),
        "engine recovers after shedding: {response:?}"
    );
    engine.join_workers();
}
