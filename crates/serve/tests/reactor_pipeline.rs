//! Socket-level tests of the event-driven connection layer: pipelined
//! frames on one connection come back in request order even when the
//! first request is the slowest, and idle connections are closed by the
//! reactor's timeout sweep.
#![cfg(unix)]

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use mao_serve::engine::{Engine, EngineConfig};
use mao_serve::json::Json;
use mao_serve::protocol::{read_frame, write_frame, Frame, OptimizeRequest, Request};
use mao_serve::server::{connect_with_retry, serve, Listen};

static NEXT_SOCKET: AtomicU32 = AtomicU32::new(0);

fn socket_path() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mao-reactor-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "maod-{}.sock",
        NEXT_SOCKET.fetch_add(1, Ordering::SeqCst)
    ))
}

fn start(config: EngineConfig) -> (Listen, std::thread::JoinHandle<std::io::Result<()>>) {
    let addr = Listen::Unix(socket_path());
    let engine = Engine::new(config);
    let server_addr = addr.clone();
    let handle = std::thread::spawn(move || serve(engine, &server_addr));
    (addr, handle)
}

fn send(conn: &mut impl std::io::Write, request: &Request) {
    let payload = request.to_json().to_string();
    write_frame(conn, payload.as_bytes()).expect("frame written");
}

fn recv(conn: &mut impl std::io::Read) -> Json {
    match read_frame(conn, usize::MAX).expect("frame read") {
        Frame::Payload(bytes) => Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap(),
        other => panic!("expected payload frame, got {other:?}"),
    }
}

/// A compute request that holds its shard for `ms` milliseconds.
fn slow_request(ms: u64) -> Request {
    Request::Optimize(OptimizeRequest {
        asm: "nop\n".to_string(),
        passes: format!("PANIC=sleep_ms[{ms}],func[nosuch]"),
        jobs: None,
        timeout_ms: Some(0),
        use_cache: false,
        isa: mao::isa::IsaId::X86_64,
    })
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    let (addr, server) = start(EngineConfig {
        shards: 1,
        ..EngineConfig::default()
    });
    let mut conn = connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");

    // Three frames written back-to-back before reading anything. The slow
    // compute request goes first; the inline-answerable pings behind it
    // must wait in the reorder buffer rather than overtaking.
    send(&mut conn, &slow_request(100));
    send(&mut conn, &Request::Ping);
    send(&mut conn, &Request::Ping);

    let first = recv(&mut conn);
    assert_eq!(first.get("status").unwrap().as_str(), Some("ok"));
    assert!(first.get("asm").is_some(), "slowest request answers first");
    for _ in 0..2 {
        let pong = recv(&mut conn);
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    }

    send(&mut conn, &Request::Shutdown);
    let ack = recv(&mut conn);
    assert_eq!(ack.get("shutdown").and_then(Json::as_bool), Some(true));
    drop(conn);
    server.join().unwrap().expect("server drains cleanly");
    if let Listen::Unix(path) = &addr {
        assert!(!path.exists(), "socket removed on shutdown");
    }
}

#[test]
fn idle_connections_are_closed_by_the_reactor() {
    let (addr, server) = start(EngineConfig {
        shards: 1,
        idle_timeout_ms: 200,
        ..EngineConfig::default()
    });
    let mut idle = connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");

    // A request proves the connection is live, then it goes quiet.
    send(&mut idle, &Request::Ping);
    let pong = recv(&mut idle);
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    // Well past the idle budget, the server has hung up: the next read
    // sees EOF rather than blocking forever.
    std::thread::sleep(Duration::from_millis(700));
    match read_frame(&mut idle, usize::MAX).expect("read after idle close") {
        Frame::Eof => {}
        other => panic!("expected EOF from idle close, got {other:?}"),
    }

    // A fresh connection still works: the sweep culled one connection,
    // not the listener.
    let mut fresh = connect_with_retry(&addr, Duration::from_secs(5)).expect("reconnect");
    send(&mut fresh, &Request::Shutdown);
    let ack = recv(&mut fresh);
    assert_eq!(ack.get("shutdown").and_then(Json::as_bool), Some(true));
    drop(fresh);
    server.join().unwrap().expect("server drains cleanly");
}
