//! Integration tests of the persistent result-cache tier through the full
//! engine: a restart over the same cache directory begins warm and serves
//! byte-identical results from disk, corrupted entries are evicted instead
//! of served, and two live instances can share one directory.

use std::sync::atomic::{AtomicU32, Ordering};

use mao_serve::engine::{Engine, EngineConfig};
use mao_serve::protocol::{CacheOutcome, OptimizeRequest, Request, Response};

const INPUT: &str = "\t.type\tf, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L1\n\taddl $3, %eax\n\taddl $4, %eax\n.L1:\n\tret\n";
const PASSES: &str = "REDTEST:ADDADD:DCE";

static NEXT_DIR: AtomicU32 = AtomicU32::new(0);

fn cache_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mao-pcache-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine_on(dir: &std::path::Path) -> Engine {
    Engine::new(EngineConfig {
        shards: 1,
        cache_dir: Some(dir.to_path_buf()),
        ..EngineConfig::default()
    })
}

fn optimize(asm: &str) -> Request {
    Request::Optimize(OptimizeRequest {
        asm: asm.to_string(),
        passes: PASSES.to_string(),
        jobs: None,
        timeout_ms: None,
        use_cache: true,
        isa: mao::isa::IsaId::X86_64,
    })
}

fn expect_optimized(response: Response) -> (mao_serve::OptimizeOutcome, CacheOutcome) {
    match response {
        Response::Optimized { outcome, cache, .. } => (outcome, cache),
        other => panic!("expected optimized response, got {other:?}"),
    }
}

/// The single `.mc` entry file a one-request engine leaves behind.
fn sole_entry(dir: &std::path::Path) -> std::path::PathBuf {
    let entries: Vec<_> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "mc"))
        .collect();
    assert_eq!(
        entries.len(),
        1,
        "expected one cache entry, saw {entries:?}"
    );
    entries[0].clone()
}

#[test]
fn restart_begins_warm_and_serves_byte_identical_results() {
    let dir = cache_dir();

    // First life: compute and persist.
    let first = engine_on(&dir);
    let (cold, outcome) = expect_optimized(first.handle(optimize(INPUT)));
    assert_eq!(outcome, CacheOutcome::Miss);
    first.join_workers();
    drop(first);
    assert!(sole_entry(&dir).exists(), "entry persisted across shutdown");

    // Second life over the same directory: the very first request is a
    // disk hit, byte-identical, with no re-optimization trace.
    let second = engine_on(&dir);
    let (warm, outcome) = expect_optimized(second.handle(optimize(INPUT)));
    assert_eq!(outcome, CacheOutcome::DiskHit);
    assert_eq!(
        warm.asm, cold.asm,
        "disk tier must round-trip bytes exactly"
    );
    assert_eq!(warm.passes, cold.passes);
    assert!(warm.trace.is_empty(), "disk hits must not carry a trace");

    // The hit promoted the entry to memory: the next lookup stays there.
    let (_, outcome) = expect_optimized(second.handle(optimize(INPUT)));
    assert_eq!(outcome, CacheOutcome::Hit);

    let snap = second.snapshot();
    let disk = snap.result_cache.disk.expect("disk tier is configured");
    assert_eq!((disk.hits, disk.misses), (1, 0));
    assert_eq!(
        snap.result_cache.hits, 1,
        "memory tier saw the promoted hit"
    );
    second.join_workers();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entry_is_evicted_not_served() {
    let dir = cache_dir();
    let first = engine_on(&dir);
    let (cold, _) = expect_optimized(first.handle(optimize(INPUT)));
    first.join_workers();
    drop(first);

    // Flip bytes in the middle of the entry: the checksum must catch it.
    let entry = sole_entry(&dir);
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes[mid + 1] ^= 0xff;
    std::fs::write(&entry, &bytes).unwrap();

    // The restarted engine must not serve the damaged entry: the request
    // recomputes (a miss), still yielding the correct assembly.
    let second = engine_on(&dir);
    let (recomputed, outcome) = expect_optimized(second.handle(optimize(INPUT)));
    assert_eq!(outcome, CacheOutcome::Miss);
    assert_eq!(recomputed.asm, cold.asm);
    let disk = second.snapshot().result_cache.disk.unwrap();
    assert!(disk.corrupt >= 1, "corruption must be counted: {disk:?}");
    second.join_workers();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_evicted_not_served() {
    let dir = cache_dir();
    let first = engine_on(&dir);
    let _ = expect_optimized(first.handle(optimize(INPUT)));
    first.join_workers();
    drop(first);

    let entry = sole_entry(&dir);
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 3]).unwrap();

    let second = engine_on(&dir);
    let (_, outcome) = expect_optimized(second.handle(optimize(INPUT)));
    assert_eq!(outcome, CacheOutcome::Miss);
    assert!(second.snapshot().result_cache.disk.unwrap().corrupt >= 1);
    second.join_workers();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_live_instances_share_one_cache_directory() {
    let dir = cache_dir();
    let writer = engine_on(&dir);
    let reader = engine_on(&dir);

    let (original, outcome) = expect_optimized(writer.handle(optimize(INPUT)));
    assert_eq!(outcome, CacheOutcome::Miss);

    // The second instance never saw the request, but finds the entry the
    // first one persisted.
    let (shared, outcome) = expect_optimized(reader.handle(optimize(INPUT)));
    assert_eq!(outcome, CacheOutcome::DiskHit);
    assert_eq!(shared.asm, original.asm);

    writer.join_workers();
    reader.join_workers();
    let _ = std::fs::remove_dir_all(&dir);
}
