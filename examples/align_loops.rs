//! Fix a decode-line-crossing loop with the alignment passes and watch the
//! front-end counters change — the §III.C story end to end.
//!
//! ```sh
//! cargo run --release --example align_loops
//! ```

use mao::pass::{parse_invocations, run_pipeline};
use mao::relax::relax;
use mao::MaoUnit;
use mao_corpus::kernels::eon_short_loop;
use mao_sim::{simulate, SimOptions, UarchConfig};

fn main() {
    let config = UarchConfig::core2();
    // The 252.eon short loop, deliberately placed across a 16-byte line
    // (3 bytes of padding shift it off the boundary).
    let workload = eon_short_loop(3, 8, 50_000);
    let mut unit = MaoUnit::parse(&workload.asm).expect("kernel parses");

    // Show the placement the way MAO sees it: relaxation assigns addresses.
    let layout = relax(&unit).expect("relaxes");
    let loop_start = unit.find_label(".Lloop").expect("label exists");
    println!(
        "loop starts at offset {:#x} (crosses a 16-byte line: {})",
        layout.addr[loop_start],
        layout.addr[loop_start] % 16 != 0
    );

    let before = simulate(
        &unit,
        &workload.entry,
        &workload.args,
        &config,
        &SimOptions::default(),
    )
    .expect("runs");
    println!(
        "before LOOP16: {} cycles, {} decode lines fetched",
        before.pmu.cycles, before.pmu.decode_lines_fetched
    );

    let report = run_pipeline(
        &mut unit,
        &parse_invocations("LOOP16").expect("valid"),
        None,
    )
    .expect("LOOP16 runs");
    println!(
        "LOOP16 aligned {} loop(s); emitted assembly now contains `.p2align 4,,15`",
        report.total_transformations()
    );

    let after = simulate(
        &unit,
        &workload.entry,
        &workload.args,
        &config,
        &SimOptions::default(),
    )
    .expect("runs");
    println!(
        "after LOOP16:  {} cycles, {} decode lines fetched",
        after.pmu.cycles, after.pmu.decode_lines_fetched
    );
    assert_eq!(before.ret, after.ret);
    assert!(after.pmu.decode_lines_fetched < before.pmu.decode_lines_fetched);
    println!(
        "speedup: {:+.1}%",
        (before.pmu.cycles as f64 - after.pmu.cycles as f64) / before.pmu.cycles as f64 * 100.0
    );
}
