//! Quickstart: parse compiler-emitted assembly, run MAO passes, emit.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This is the library equivalent of the paper's command line
//! `mao --mao=REDTEST:ADDADD:ASM=o[out.s] in.s`.

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;

const INPUT: &str = r#"
	.text
	.globl	compute
	.type	compute, @function
compute:
	# GCC 4.3-style inefficiencies the paper catalogues in §III.B:
	andl	$255, %eax
	mov	%eax, %eax          # redundant zero-extension
	subl	$16, %r15d
	testl	%r15d, %r15d        # redundant test
	je	.Ldone
	movq	24(%rsp), %rdx
	movq	24(%rsp), %rcx      # redundant memory access
	addq	$8, %rdi
	addq	$8, %rdi            # foldable add/add
.Ldone:
	ret
	.size	compute, .-compute
"#;

fn main() {
    // READ: parsing is itself a pass, run first by default (§III.A).
    let mut unit = MaoUnit::parse(INPUT).expect("input parses");

    // Order the optimization passes exactly like the --mao= option string.
    let invocations =
        parse_invocations("REDZEXT:REDTEST:REDMOV:ADDADD").expect("pass string is valid");
    let report = run_pipeline(&mut unit, &invocations, None).expect("passes run");

    for (pass, stats) in &report.passes {
        println!(
            "{pass:<8} {} transformation(s), {} match(es)",
            stats.transformations, stats.matches
        );
    }

    // ASM: emit the optimized assembly.
    println!("\n--- optimized assembly ---\n{}", unit.emit());

    assert_eq!(report.total_transformations(), 4);
    assert!(!unit.emit().contains("testl"));
    assert!(unit.emit().contains("addq $16, %rdi"));
}
