//! Hardware-sample profile feedback: map PMU samples to instructions,
//! build an edge profile, and find the hot path — §II's profile-annotation
//! story plus the paper's stated future work (edge profiles after Chen).
//!
//! ```sh
//! cargo run --release --example profile_feedback
//! ```

use mao::cfg::Cfg;
use mao::edgeprof::edge_profile;
use mao::profile::{Profile, Site};
use mao::MaoUnit;
use mao_sim::{Machine, Program, Step, Timing, UarchConfig};

const PROGRAM: &str = r#"
	.type	classify, @function
classify:
	movl $200000, %ecx
	xorl %eax, %eax
.Lnext:
	movl %ecx, %edx
	andl $7, %edx
	cmpl $0, %edx
	je .Lrare
	addl $1, %eax
	jmp .Ljoin
.Lrare:
	addl $100, %eax
.Ljoin:
	subl $1, %ecx
	jne .Lnext
	ret
	.size	classify, .-classify
"#;

fn main() {
    let unit = MaoUnit::parse(PROGRAM).expect("parses");
    let program = Program::load(&unit).expect("loads");
    let config = UarchConfig::core2();

    // Run with the timing model, sampling "CPU_CYCLES" every 97 retirements
    // — the oprofile-style sampling §II describes ("samples can be directly
    // mapped to individual instructions" because MAO knows the sizes).
    let function = unit.find_function("classify").expect("function exists");
    let ordinal: std::collections::HashMap<usize, usize> = function
        .entry_ids()
        .filter(|&id| unit.insn(id).is_some())
        .enumerate()
        .map(|(ord, id)| (id, ord))
        .collect();

    let mut machine = Machine::new(&program, "classify", &[]).expect("init");
    let mut timing = Timing::new(&config);
    let mut profile = Profile::new();
    let mut retired = 0u64;
    loop {
        match machine.step(&program).expect("runs") {
            Step::Executed(info) => {
                let insn = program.unit.insn(info.entry).expect("insn");
                timing.retire(insn, &info);
                retired += 1;
                if retired % 97 == 0 {
                    let site = Site::new("classify", ordinal[&info.entry]);
                    profile.add_event("CPU_CYCLES", site, 1);
                }
            }
            Step::Finished(ret) => {
                println!("program result: {ret}, {retired} instructions retired");
                break;
            }
        }
    }
    println!(
        "collected {} samples across {} sites",
        profile.event_total("CPU_CYCLES"),
        profile.events["CPU_CYCLES"].len()
    );

    // Build the edge profile and report the branch bias.
    let cfg = Cfg::build(&unit, &function);
    let ep = edge_profile(&unit, &function, &cfg, &profile, "CPU_CYCLES");
    let rare_block = cfg
        .block_of(unit.find_label(".Lrare").expect("label") + 1)
        .expect("block");
    let cond_block = cfg
        .block_of(unit.find_label(".Lnext").expect("label") + 1)
        .expect("block");
    let p_rare = ep.taken_probability(cond_block, rare_block);
    println!("estimated P(je taken -> .Lrare) = {p_rare:.3}   (ground truth: 1/8 = 0.125)");
    println!(
        "hottest block: {} (the loop body, as expected)",
        ep.hottest_block().expect("nonempty")
    );
    assert!(
        (p_rare - 0.125).abs() < 0.08,
        "sampled bias is close to truth"
    );
}
